//! Transaction crosstalk (§6, §7.5).
//!
//! Concurrent transactions interfere through lock contention. Whodunit
//! measures, for every lock-acquire that had to wait, *how long* the
//! waiter waited and *which transaction* held the lock, and aggregates
//! the waits per ordered pair `(waiting transaction, holding
//! transaction)` as well as per waiting transaction.
//!
//! The recorder keeps the paper's "dictionary of lock objects" mapping
//! each lock to the transaction context currently holding it in
//! exclusive mode; shared holders are tracked as a set so a writer
//! waiting behind readers is attributed too (the paper's MyISAM case has
//! the reverse as the headline, but both directions occur in TPC-W).

use crate::context::CtxId;
use crate::ids::{LockId, LockMode, ThreadId};
use std::collections::HashMap;

/// Aggregated waiting-time statistics for one ordered context pair or
/// one waiter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WaitStats {
    /// Number of waits recorded.
    pub count: u64,
    /// Total cycles waited.
    pub total_wait: u64,
}

impl WaitStats {
    /// Mean wait in cycles (0 for no observations).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_wait as f64 / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct LockHolders {
    exclusive: Option<(ThreadId, CtxId)>,
    shared: HashMap<ThreadId, CtxId>,
}

/// Records transaction crosstalk from lock acquire/release hooks.
#[derive(Debug, Default)]
pub struct CrosstalkRecorder {
    holders: HashMap<LockId, LockHolders>,
    /// Ordered pair (waiter context, holder context) → stats.
    pairs: HashMap<(CtxId, CtxId), WaitStats>,
    /// Waiter context → stats, counting *all* acquires of that context
    /// (including uncontended ones) so means match Table 1's
    /// "mean crosstalk wait per transaction".
    waiters: HashMap<CtxId, WaitStats>,
}

impl CrosstalkRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Called when `t` (executing context `ctx`) acquired `lock` after
    /// waiting `waited` cycles.
    ///
    /// `holder_hint` names the context that held the lock when the wait
    /// began (captured by [`CrosstalkRecorder::holder_of`] at request
    /// time); waits with no identifiable holder still count toward the
    /// waiter's aggregate.
    pub fn acquired(
        &mut self,
        t: ThreadId,
        ctx: CtxId,
        lock: LockId,
        mode: LockMode,
        waited: u64,
        holder_hint: Option<CtxId>,
    ) {
        let w = self.waiters.entry(ctx).or_default();
        w.count += 1;
        w.total_wait += waited;
        if waited > 0 {
            if let Some(holder) = holder_hint {
                let p = self.pairs.entry((ctx, holder)).or_default();
                p.count += 1;
                p.total_wait += waited;
            }
        }
        let h = self.holders.entry(lock).or_default();
        match mode {
            LockMode::Exclusive => h.exclusive = Some((t, ctx)),
            LockMode::Shared => {
                h.shared.insert(t, ctx);
            }
        }
    }

    /// Called when `t` released `lock`.
    pub fn released(&mut self, t: ThreadId, lock: LockId) {
        if let Some(h) = self.holders.get_mut(&lock) {
            if matches!(h.exclusive, Some((ht, _)) if ht == t) {
                h.exclusive = None;
            }
            h.shared.remove(&t);
        }
    }

    /// The context blamed for a wait on `lock` right now: the exclusive
    /// holder if any, otherwise an arbitrary-but-deterministic shared
    /// holder (the one with the smallest thread id).
    pub fn holder_of(&self, lock: LockId) -> Option<CtxId> {
        let h = self.holders.get(&lock)?;
        if let Some((_, ctx)) = h.exclusive {
            return Some(ctx);
        }
        h.shared
            .iter()
            .min_by_key(|(t, _)| **t)
            .map(|(_, ctx)| *ctx)
    }

    /// Per-waiter aggregate stats (all acquires of that context).
    pub fn waiter_stats(&self, ctx: CtxId) -> WaitStats {
        self.waiters.get(&ctx).copied().unwrap_or_default()
    }

    /// Stats for the ordered pair `(waiter, holder)`.
    pub fn pair_stats(&self, waiter: CtxId, holder: CtxId) -> WaitStats {
        self.pairs
            .get(&(waiter, holder))
            .copied()
            .unwrap_or_default()
    }

    /// Produces a deterministic, sorted report of all pairs and waiters.
    pub fn report(&self) -> CrosstalkReport {
        let mut pairs: Vec<_> = self.pairs.iter().map(|(&(w, h), &s)| (w, h, s)).collect();
        pairs.sort_by_key(|&(w, h, _)| (w, h));
        let mut waiters: Vec<_> = self.waiters.iter().map(|(&w, &s)| (w, s)).collect();
        waiters.sort_by_key(|&(w, _)| w);
        CrosstalkReport { pairs, waiters }
    }
}

/// Sorted crosstalk aggregates for presentation.
#[derive(Clone, Debug, Default)]
pub struct CrosstalkReport {
    /// `(waiter ctx, holder ctx, stats)` sorted by ids.
    pub pairs: Vec<(CtxId, CtxId, WaitStats)>,
    /// `(waiter ctx, stats)` sorted by id.
    pub waiters: Vec<(CtxId, WaitStats)>,
}

/// A transaction in the stitched, cross-stage crosstalk view: the
/// `(stage index, context index)` its origin walk resolved to.
pub type OriginKey = (usize, u32);

/// Cross-stage crosstalk aggregates, keyed by *origin* transactions.
///
/// Per-stage dumps record crosstalk between stage-local context
/// indices; the analysis pipeline resolves each side through the
/// stitched origin walk and sums the waits per ordered origin pair, so
/// contention shows up against the transaction entry points users
/// recognize (Table 1's view, but across every tier at once).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrosstalkMatrix {
    /// `(waiter origin, holder origin, stats)` sorted by keys.
    pub pairs: Vec<(OriginKey, OriginKey, WaitStats)>,
    /// `(waiter origin, stats)` sorted by key.
    pub waiters: Vec<(OriginKey, WaitStats)>,
}

impl CrosstalkMatrix {
    /// Assembles a matrix from disjoint partial matrices (one per
    /// dictionary shard of the pipeline).
    ///
    /// Parts are sharded by waiter origin, so no key appears in two
    /// parts and concatenation plus one sort is a lossless merge; the
    /// sort makes the result independent of part order.
    pub fn from_parts(parts: impl IntoIterator<Item = CrosstalkMatrix>) -> Self {
        let mut m = CrosstalkMatrix::default();
        for p in parts {
            m.pairs.extend(p.pairs);
            m.waiters.extend(p.waiters);
        }
        m.pairs.sort_by_key(|&(w, h, _)| (w, h));
        m.waiters.sort_by_key(|&(w, _)| w);
        m
    }

    /// Adds one resolved pair observation.
    pub fn add_pair(&mut self, waiter: OriginKey, holder: OriginKey, s: WaitStats) {
        match self.pairs.iter_mut().find(|(w, h, _)| *w == waiter && *h == holder) {
            Some((_, _, acc)) => {
                acc.count += s.count;
                acc.total_wait += s.total_wait;
            }
            None => self.pairs.push((waiter, holder, s)),
        }
    }

    /// Adds one resolved waiter observation.
    pub fn add_waiter(&mut self, waiter: OriginKey, s: WaitStats) {
        match self.waiters.iter_mut().find(|(w, _)| *w == waiter) {
            Some((_, acc)) => {
                acc.count += s.count;
                acc.total_wait += s.total_wait;
            }
            None => self.waiters.push((waiter, s)),
        }
    }

    /// Renders the matrix as deterministic text; `label` names an
    /// origin (stage, context) for display.
    pub fn render(&self, label: &dyn Fn(usize, u32) -> String) -> String {
        let mut out = String::new();
        out.push_str("crosstalk matrix (waiter <- holder):\n");
        for &((ws, wc), (hs, hc), s) in &self.pairs {
            out.push_str(&format!(
                "  {}  <-  {}  waits {} total {} mean {:.1}\n",
                label(ws, wc),
                label(hs, hc),
                s.count,
                s.total_wait,
                s.mean()
            ));
        }
        out.push_str("waiters:\n");
        for &((ws, wc), s) in &self.waiters {
            out.push_str(&format!(
                "  {}  acquires {} total {} mean {:.1}\n",
                label(ws, wc),
                s.count,
                s.total_wait,
                s.mean()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TA: ThreadId = ThreadId(1);
    const TB: ThreadId = ThreadId(2);
    const CA: CtxId = CtxId(10);
    const CB: CtxId = CtxId(11);
    const L: LockId = LockId(5);

    #[test]
    fn wait_is_attributed_to_exclusive_holder() {
        let mut r = CrosstalkRecorder::new();
        r.acquired(TA, CA, L, LockMode::Exclusive, 0, None);
        let hint = r.holder_of(L);
        assert_eq!(hint, Some(CA));
        r.released(TA, L);
        r.acquired(TB, CB, L, LockMode::Exclusive, 500, hint);
        let p = r.pair_stats(CB, CA);
        assert_eq!(p.count, 1);
        assert_eq!(p.total_wait, 500);
        assert_eq!(r.pair_stats(CA, CB), WaitStats::default());
    }

    #[test]
    fn mean_counts_uncontended_acquires() {
        // Table 1 reports the mean over *all* instances of a
        // transaction type, so uncontended acquires dilute the mean.
        let mut r = CrosstalkRecorder::new();
        r.acquired(TB, CB, L, LockMode::Exclusive, 300, Some(CA));
        r.released(TB, L);
        r.acquired(TB, CB, L, LockMode::Exclusive, 0, None);
        let w = r.waiter_stats(CB);
        assert_eq!(w.count, 2);
        assert_eq!(w.total_wait, 300);
        assert!((w.mean() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn shared_holders_are_blamed_deterministically() {
        let mut r = CrosstalkRecorder::new();
        r.acquired(TB, CB, L, LockMode::Shared, 0, None);
        r.acquired(TA, CA, L, LockMode::Shared, 0, None);
        // Smallest thread id wins: TA holds CA.
        assert_eq!(r.holder_of(L), Some(CA));
        r.released(TA, L);
        assert_eq!(r.holder_of(L), Some(CB));
        r.released(TB, L);
        assert_eq!(r.holder_of(L), None);
    }

    #[test]
    fn exclusive_holder_takes_priority_over_shared() {
        let mut r = CrosstalkRecorder::new();
        r.acquired(TA, CA, L, LockMode::Shared, 0, None);
        r.acquired(TB, CB, L, LockMode::Exclusive, 0, None);
        assert_eq!(r.holder_of(L), Some(CB));
    }

    #[test]
    fn report_is_sorted() {
        let mut r = CrosstalkRecorder::new();
        r.acquired(TB, CB, L, LockMode::Exclusive, 10, Some(CA));
        r.released(TB, L);
        r.acquired(TA, CA, L, LockMode::Exclusive, 20, Some(CB));
        let rep = r.report();
        assert_eq!(rep.pairs.len(), 2);
        assert!(rep.pairs[0].0 <= rep.pairs[1].0);
        assert_eq!(rep.waiters.len(), 2);
    }

    #[test]
    fn matrix_from_parts_is_order_insensitive() {
        let s = WaitStats {
            count: 2,
            total_wait: 100,
        };
        let mut a = CrosstalkMatrix::default();
        a.add_pair((0, 1), (2, 3), s);
        a.add_waiter((0, 1), s);
        let mut b = CrosstalkMatrix::default();
        b.add_pair((1, 0), (2, 3), s);
        b.add_waiter((1, 0), s);
        let ab = CrosstalkMatrix::from_parts([a.clone(), b.clone()]);
        let ba = CrosstalkMatrix::from_parts([b, a]);
        assert_eq!(ab, ba);
        assert_eq!(ab.pairs.len(), 2);
        let text = ab.render(&|s, c| format!("s{s}c{c}"));
        assert!(text.contains("s0c1  <-  s2c3"), "{text}");
    }

    #[test]
    fn matrix_accumulates_repeated_keys() {
        let s = WaitStats {
            count: 1,
            total_wait: 10,
        };
        let mut m = CrosstalkMatrix::default();
        m.add_pair((0, 0), (1, 1), s);
        m.add_pair((0, 0), (1, 1), s);
        assert_eq!(m.pairs.len(), 1);
        assert_eq!(m.pairs[0].2.count, 2);
        assert_eq!(m.pairs[0].2.total_wait, 20);
    }

    #[test]
    fn zero_wait_records_no_pair() {
        let mut r = CrosstalkRecorder::new();
        r.acquired(TB, CB, L, LockMode::Exclusive, 0, Some(CA));
        assert_eq!(r.pair_stats(CB, CA), WaitStats::default());
    }
}
