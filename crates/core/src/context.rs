//! Transaction contexts (§2, §4.1).
//!
//! A transaction context is the complete execution history of a request
//! through the stages of a multi-tier application: the call paths and
//! handler/stage sequences of every stage it crossed, concatenated in
//! execution order. Contexts are interned into [`CtxId`]s so the rest of
//! the profiler (dictionaries, CCT registries, crosstalk pairs) can use
//! cheap integer keys.
//!
//! Two normalization rules from §4.1 apply when a handler or stage frame
//! is appended:
//!
//! 1. **Collapse**: consecutive occurrences of the same handler (a
//!    handler rescheduled until its I/O completes) are collapsed into
//!    one occurrence.
//! 2. **Loop pruning**: when appending a handler that already occurs in
//!    the trailing handler sequence (e.g. `read, write, read, write, …`
//!    on a persistent connection), the suffix that closes the loop is
//!    pruned: `[accept, read, write] + read → [accept, read]`.

use crate::frame::FrameId;
use crate::synopsis::SynChain;
use std::fmt;
use std::sync::Arc;

/// An interned transaction context.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CtxId(pub u32);

impl CtxId {
    /// The root (empty) context: a transaction that has not crossed any
    /// produce/consume point yet.
    pub const ROOT: CtxId = CtxId(0);
}

impl fmt::Display for CtxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctx{}", self.0)
    }
}

/// One element of a transaction context.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ContextAtom {
    /// An event handler or SEDA stage executed for the transaction.
    Frame(FrameId),
    /// A call path captured at a produce point (shared-memory produce or
    /// message send). `Arc` (not `Rc`) so context values can cross the
    /// analysis pipeline's worker-pool threads.
    Path(Arc<[FrameId]>),
    /// A synopsis chain received from another process; it stands for the
    /// entire upstream history, which only the stitcher can expand.
    Remote(SynChain),
}

/// Normalization policy applied when appending handler/stage frames.
#[derive(Clone, Copy, Debug)]
pub struct ContextPolicy {
    /// Collapse consecutive occurrences of the same frame (§4.1).
    pub collapse_consecutive: bool,
    /// Prune suffixes that close a loop in the frame sequence (§4.1).
    ///
    /// The paper notes this is "not strictly necessary for profiling"
    /// and that the full context may be useful for debugging; turning
    /// this off keeps complete histories.
    pub prune_loops: bool,
}

impl Default for ContextPolicy {
    fn default() -> Self {
        ContextPolicy {
            collapse_consecutive: true,
            prune_loops: true,
        }
    }
}

impl ContextPolicy {
    /// The debugging policy: keep complete, unpruned histories.
    pub fn full_history() -> Self {
        ContextPolicy {
            collapse_consecutive: false,
            prune_loops: false,
        }
    }
}

/// An owned transaction context value (a sequence of atoms).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct TransactionContext(pub Vec<ContextAtom>);

impl TransactionContext {
    /// The empty context.
    pub fn root() -> Self {
        TransactionContext(Vec::new())
    }

    /// The atoms of this context.
    pub fn atoms(&self) -> &[ContextAtom] {
        &self.0
    }

    /// Appends a handler/stage frame under `policy`, applying the §4.1
    /// collapse and loop-pruning rules to the trailing frame run.
    pub fn append_frame(&self, frame: FrameId, policy: ContextPolicy) -> Self {
        let mut atoms = self.0.clone();
        // The window of trailing `Frame` atoms that normalization may
        // inspect; pruning never reaches across a `Path` or `Remote`
        // atom because those mark a different stage's history.
        let run_start = atoms
            .iter()
            .rposition(|a| !matches!(a, ContextAtom::Frame(_)))
            .map(|i| i + 1)
            .unwrap_or(0);
        if policy.collapse_consecutive {
            if let Some(ContextAtom::Frame(last)) = atoms.last() {
                if *last == frame {
                    return TransactionContext(atoms);
                }
            }
        }
        if policy.prune_loops {
            let pos = atoms[run_start..]
                .iter()
                .position(|a| matches!(a, ContextAtom::Frame(f) if *f == frame));
            if let Some(p) = pos {
                atoms.truncate(run_start + p + 1);
                return TransactionContext(atoms);
            }
        }
        atoms.push(ContextAtom::Frame(frame));
        TransactionContext(atoms)
    }

    /// Appends a call path captured at a produce point.
    pub fn append_path(&self, path: &[FrameId]) -> Self {
        let mut atoms = self.0.clone();
        atoms.push(ContextAtom::Path(path.into()));
        TransactionContext(atoms)
    }

    /// Builds a context that stands for a remote upstream history.
    pub fn from_remote(chain: SynChain) -> Self {
        TransactionContext(vec![ContextAtom::Remote(chain)])
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether this is the root (empty) context.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// A stable FNV-1a hash of the context value.
    ///
    /// This is the *location hash* that routes a value to its shard in
    /// a [`ShardedContextTable`]. It must stay a pure function of the
    /// atom sequence — never of interning order, table state, or the
    /// std `Hasher` (whose keys are unspecified across releases) — so
    /// that sharded runs place every value deterministically.
    pub fn stable_hash(&self) -> u64 {
        let mut h = crate::hash::Fnv64::new();
        for a in &self.0 {
            match a {
                ContextAtom::Frame(f) => {
                    h.write_u64(1);
                    h.write_u64(f.0 as u64);
                }
                ContextAtom::Path(p) => {
                    h.write_u64(2);
                    h.write_u64(p.len() as u64);
                    for f in p.iter() {
                        h.write_u64(f.0 as u64);
                    }
                }
                ContextAtom::Remote(c) => {
                    h.write_u64(3);
                    h.write_u64(c.0.len() as u64);
                    for s in &c.0 {
                        h.write_u64(s.0);
                    }
                }
            }
        }
        h.finish()
    }
}

/// One slot of a [`ValueIndex`]: the value's stable hash plus its arena
/// id biased by one so the zeroed slot means "empty".
#[derive(Debug, Clone, Copy, Default)]
struct IndexSlot {
    hash: u64,
    idp1: u32,
}

/// Open-addressed index from [`TransactionContext::stable_hash`] into an
/// id-ordered value arena.
///
/// The intern tables below used to keep a second `HashMap` from the
/// *full context value* to its id — a complete copy of every chain just
/// to answer "seen before?". This index stores only `(hash, id)` pairs;
/// the arena itself is the single owner of each value, and a probe
/// compares against the arena entry only when the 64-bit hashes match.
/// Linear probing over a power-of-two table; values are never removed.
#[derive(Debug, Clone, Default)]
struct ValueIndex {
    slots: Vec<IndexSlot>,
    len: usize,
}

impl ValueIndex {
    /// Looks up the arena id of `value` (whose stable hash is `hash`).
    fn get(&self, values: &[TransactionContext], hash: u64, value: &TransactionContext) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let s = self.slots[i];
            if s.idp1 == 0 {
                return None;
            }
            if s.hash == hash && values[(s.idp1 - 1) as usize] == *value {
                return Some(s.idp1 - 1);
            }
            i = (i + 1) & mask;
        }
    }

    /// Records `hash → id`. The caller has already established the value
    /// is absent (ids are dense and minted once per distinct value).
    fn insert(&mut self, hash: u64, id: u32) {
        if self.slots.len() * 7 <= (self.len + 1) * 8 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        while self.slots[i].idp1 != 0 {
            i = (i + 1) & mask;
        }
        self.slots[i] = IndexSlot { hash, idp1: id + 1 };
        self.len += 1;
    }

    /// Doubles the table, re-placing every occupied slot. Stored hashes
    /// make this a straight re-probe — no value re-hashing.
    fn grow(&mut self) {
        let cap = (self.slots.len() * 2).max(16);
        let old = std::mem::replace(&mut self.slots, vec![IndexSlot::default(); cap]);
        let mask = cap - 1;
        for s in old {
            if s.idp1 == 0 {
                continue;
            }
            let mut i = (s.hash as usize) & mask;
            while self.slots[i].idp1 != 0 {
                i = (i + 1) & mask;
            }
            self.slots[i] = s;
        }
    }
}

/// Intern table for transaction contexts.
///
/// [`CtxId::ROOT`] is always present and maps to the empty context.
///
/// # Examples
///
/// The §4.1 loop-pruning rule on a persistent connection's handler
/// sequence:
///
/// ```
/// use whodunit_core::context::{ContextTable, CtxId};
/// use whodunit_core::frame::FrameId;
///
/// let mut t = ContextTable::default();
/// let (accept, read, write) = (FrameId(0), FrameId(1), FrameId(2));
/// let c = t.append_frame(CtxId::ROOT, accept);
/// let c = t.append_frame(c, read);
/// let after_read = c;
/// let c = t.append_frame(c, write);
/// // The next read on the same connection closes a loop and prunes:
/// assert_eq!(t.append_frame(c, read), after_read);
/// ```
#[derive(Debug)]
pub struct ContextTable {
    index: ValueIndex,
    values: Vec<TransactionContext>,
    policy: ContextPolicy,
}

impl Default for ContextTable {
    fn default() -> Self {
        Self::new(ContextPolicy::default())
    }
}

impl ContextTable {
    /// Creates a table with the given normalization policy.
    pub fn new(policy: ContextPolicy) -> Self {
        let root = TransactionContext::root();
        let mut index = ValueIndex::default();
        index.insert(root.stable_hash(), CtxId::ROOT.0);
        ContextTable {
            index,
            values: vec![root],
            policy,
        }
    }

    /// The normalization policy in force.
    pub fn policy(&self) -> ContextPolicy {
        self.policy
    }

    /// Interns an owned context value. The value is moved into the
    /// arena on first sight — never cloned.
    pub fn intern(&mut self, value: TransactionContext) -> CtxId {
        let hash = value.stable_hash();
        if let Some(id) = self.index.get(&self.values, hash, &value) {
            return CtxId(id);
        }
        let id = u32::try_from(self.values.len()).expect("more than u32::MAX transaction contexts");
        self.index.insert(hash, id);
        self.values.push(value);
        CtxId(id)
    }

    /// Returns the value of an interned context.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn value(&self, id: CtxId) -> &TransactionContext {
        &self.values[id.0 as usize]
    }

    /// Interns `ctx + frame` under the table's policy (§4.1).
    pub fn append_frame(&mut self, ctx: CtxId, frame: FrameId) -> CtxId {
        let v = self.value(ctx).append_frame(frame, self.policy);
        self.intern(v)
    }

    /// Interns `ctx + path` (a produce-point call path).
    pub fn append_path(&mut self, ctx: CtxId, path: &[FrameId]) -> CtxId {
        let v = self.value(ctx).append_path(path);
        self.intern(v)
    }

    /// Interns the context standing for a received remote chain.
    pub fn from_remote(&mut self, chain: SynChain) -> CtxId {
        let v = TransactionContext::from_remote(chain);
        self.intern(v)
    }

    /// Number of interned contexts (including the root).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether only the root context exists.
    pub fn is_empty(&self) -> bool {
        self.values.len() <= 1
    }

    /// Iterates over all interned contexts in id order.
    pub fn iter(&self) -> impl Iterator<Item = (CtxId, &TransactionContext)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (CtxId(i as u32), v))
    }
}

/// A context id minted by a [`ShardedContextTable`]: the owning shard
/// in the high 32 bits, the shard-local index in the low 32.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ShardedCtxId(pub u64);

impl ShardedCtxId {
    /// Packs a shard index and a shard-local index.
    pub fn new(shard: u32, local: u32) -> Self {
        ShardedCtxId(((shard as u64) << 32) | local as u64)
    }

    /// The shard that owns this context.
    pub fn shard(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The index within the owning shard.
    pub fn local(self) -> u32 {
        self.0 as u32
    }
}

impl fmt::Display for ShardedCtxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctx{}.{}", self.shard(), self.local())
    }
}

/// One shard of a [`ShardedContextTable`]: a self-contained intern
/// table whose ids are local to the shard.
///
/// Shards are plain data (`Send`), so each worker of the analysis
/// pipeline can populate its own shards privately and hand them back
/// for assembly — no global table, no locks.
#[derive(Debug, Default, Clone)]
pub struct ContextShard {
    index: ValueIndex,
    values: Vec<TransactionContext>,
}

/// Shard equality is *value* equality: two shards holding the same
/// values in the same local order are the same dictionary, whatever the
/// incidental layout of their hash indices (capacity, probe positions).
impl PartialEq for ContextShard {
    fn eq(&self, other: &Self) -> bool {
        self.values == other.values
    }
}

impl ContextShard {
    /// Interns a value, returning its shard-local index.
    pub fn intern_local(&mut self, value: TransactionContext) -> u32 {
        let hash = value.stable_hash();
        self.intern_local_hashed(hash, value)
    }

    /// [`Self::intern_local`] with the stable hash already computed —
    /// the sharded table routes on the same hash and passes it down so
    /// each value is hashed exactly once per intern.
    fn intern_local_hashed(&mut self, hash: u64, value: TransactionContext) -> u32 {
        if let Some(i) = self.index.get(&self.values, hash, &value) {
            return i;
        }
        let i = u32::try_from(self.values.len()).expect("more than u32::MAX contexts in a shard");
        self.index.insert(hash, i);
        self.values.push(value);
        i
    }

    /// Looks up a value's shard-local index without interning.
    pub fn get_local(&self, value: &TransactionContext) -> Option<u32> {
        self.index.get(&self.values, value.stable_hash(), value)
    }

    /// The value at a shard-local index, if present.
    pub fn value_local(&self, local: u32) -> Option<&TransactionContext> {
        self.values.get(local as usize)
    }

    /// Number of values interned into this shard.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the shard holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates values in shard-local insertion order.
    pub fn iter_local(&self) -> impl Iterator<Item = (u32, &TransactionContext)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (i as u32, v))
    }
}

/// A context dictionary sharded by location hash
/// ([`TransactionContext::stable_hash`]).
///
/// Each value is owned by exactly one shard — the one its stable hash
/// selects — so two shards can never mint different ids for the same
/// value, and parallel workers minting into disjoint shards can never
/// mint duplicates. Ids ([`ShardedCtxId`]) embed the owning shard, so
/// they stay valid however the shards are later reassembled.
///
/// Determinism rules (see DESIGN.md §9):
///
/// - the shard of a value depends only on the value and the shard
///   count, never on insertion order or worker count;
/// - shard-local ids depend only on the order values are interned
///   *into that shard*, which the pipeline fixes by scanning inputs in
///   (stage, context) order;
/// - [`ShardedContextTable::from_parts`] is order-insensitive: parts
///   are placed by shard index, so any permutation of the same parts
///   assembles the same table.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedContextTable {
    shards: Vec<ContextShard>,
}

impl ShardedContextTable {
    /// Creates an empty table with `shards` shards (at least 1).
    pub fn new(shards: usize) -> Self {
        ShardedContextTable {
            shards: vec![ContextShard::default(); shards.max(1)],
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a value belongs to: its location hash mod the shard
    /// count.
    pub fn shard_of(&self, value: &TransactionContext) -> usize {
        (value.stable_hash() % self.shards.len() as u64) as usize
    }

    /// Interns a value into its owning shard. The stable hash is
    /// computed once and reused for both shard routing and the
    /// shard-local index probe.
    pub fn intern(&mut self, value: TransactionContext) -> ShardedCtxId {
        let hash = value.stable_hash();
        let s = (hash % self.shards.len() as u64) as usize;
        let local = self.shards[s].intern_local_hashed(hash, value);
        ShardedCtxId::new(s as u32, local)
    }

    /// Looks up a value without interning.
    pub fn get(&self, value: &TransactionContext) -> Option<ShardedCtxId> {
        let hash = value.stable_hash();
        let s = (hash % self.shards.len() as u64) as usize;
        self.shards[s]
            .index
            .get(&self.shards[s].values, hash, value)
            .map(|l| ShardedCtxId::new(s as u32, l))
    }

    /// The value of an id minted by this table, if in range.
    pub fn value(&self, id: ShardedCtxId) -> Option<&TransactionContext> {
        self.shards
            .get(id.shard() as usize)
            .and_then(|s| s.value_local(id.local()))
    }

    /// Total values across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Whether no value has been interned.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Read access to one shard.
    pub fn shard(&self, i: usize) -> &ContextShard {
        &self.shards[i]
    }

    /// Assembles a table from independently built shards. `parts` are
    /// `(shard index, shard)` pairs in **any** order; missing indices
    /// become empty shards. Order-insensitivity is what lets pipeline
    /// workers finish in any order without affecting the result.
    ///
    /// # Panics
    ///
    /// Panics if a shard index is out of range or supplied twice — both
    /// are pipeline bugs, not data faults.
    pub fn from_parts(shards: usize, parts: impl IntoIterator<Item = (usize, ContextShard)>) -> Self {
        let n = shards.max(1);
        let mut table = ShardedContextTable::new(n);
        let mut seen = vec![false; n];
        for (i, part) in parts {
            assert!(i < n, "shard index {i} out of range ({n} shards)");
            assert!(!seen[i], "shard {i} supplied twice");
            seen[i] = true;
            table.shards[i] = part;
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synopsis::Synopsis;

    fn fid(n: u32) -> FrameId {
        FrameId(n)
    }

    #[test]
    fn root_is_interned_as_zero() {
        let t = ContextTable::default();
        assert_eq!(t.value(CtxId::ROOT), &TransactionContext::root());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn append_frame_builds_sequences() {
        let mut t = ContextTable::default();
        let a = t.append_frame(CtxId::ROOT, fid(1));
        let ab = t.append_frame(a, fid(2));
        assert_ne!(a, ab);
        assert_eq!(
            t.value(ab).atoms(),
            &[ContextAtom::Frame(fid(1)), ContextAtom::Frame(fid(2))]
        );
    }

    #[test]
    fn interning_is_stable() {
        let mut t = ContextTable::default();
        let a1 = t.append_frame(CtxId::ROOT, fid(1));
        let a2 = t.append_frame(CtxId::ROOT, fid(1));
        assert_eq!(a1, a2);
    }

    #[test]
    fn consecutive_duplicates_collapse() {
        // §4.1: `[A, B, B, B]` collapses to `[A, B]`.
        let mut t = ContextTable::default();
        let a = t.append_frame(CtxId::ROOT, fid(1));
        let ab = t.append_frame(a, fid(2));
        let abb = t.append_frame(ab, fid(2));
        assert_eq!(ab, abb);
    }

    #[test]
    fn loops_are_pruned_to_first_occurrence() {
        // §4.1: `[accept, read, write] + read → [accept, read]`.
        let mut t = ContextTable::default();
        let accept = fid(10);
        let read = fid(11);
        let write = fid(12);
        let c = t.append_frame(CtxId::ROOT, accept);
        let c = t.append_frame(c, read);
        let full = t.append_frame(c, write);
        let pruned = t.append_frame(full, read);
        assert_eq!(pruned, c);
    }

    #[test]
    fn pruning_does_not_cross_path_atoms() {
        // A `Path` atom marks another stage's history; a handler of the
        // same name after it must not prune back across it.
        let mut t = ContextTable::default();
        let h = fid(1);
        let c = t.append_frame(CtxId::ROOT, h);
        let c = t.append_path(c, &[fid(7), fid(8)]);
        let c2 = t.append_frame(c, h);
        assert_eq!(t.value(c2).len(), 3);
    }

    #[test]
    fn full_history_policy_keeps_everything() {
        let mut t = ContextTable::new(ContextPolicy::full_history());
        let c = t.append_frame(CtxId::ROOT, fid(1));
        let c = t.append_frame(c, fid(1));
        let c = t.append_frame(c, fid(2));
        let c = t.append_frame(c, fid(1));
        assert_eq!(t.value(c).len(), 4);
    }

    #[test]
    fn remote_contexts_intern() {
        let mut t = ContextTable::default();
        let chain = SynChain::request(Synopsis::new(1, 5));
        let a = t.from_remote(chain.clone());
        let b = t.from_remote(chain);
        assert_eq!(a, b);
        assert!(matches!(t.value(a).atoms(), [ContextAtom::Remote(_)]));
    }

    #[test]
    fn iter_covers_all_contexts() {
        let mut t = ContextTable::default();
        t.append_frame(CtxId::ROOT, fid(1));
        t.append_frame(CtxId::ROOT, fid(2));
        assert_eq!(t.iter().count(), 3);
    }

    fn sample_values(n: u32) -> Vec<TransactionContext> {
        (0..n)
            .map(|i| {
                let base = TransactionContext::root().append_frame(fid(i % 7), ContextPolicy::default());
                if i % 3 == 0 {
                    base.append_path(&[fid(i), fid(i + 1)])
                } else if i % 3 == 1 {
                    TransactionContext::from_remote(SynChain::request(Synopsis::new(i % 5, i)))
                } else {
                    base
                }
            })
            .collect()
    }

    #[test]
    fn stable_hash_is_a_pure_function_of_atoms() {
        for v in sample_values(40) {
            assert_eq!(v.stable_hash(), v.clone().stable_hash());
        }
        // Distinct structures hash apart (not a guarantee, but these
        // must not be trivially colliding).
        let a = TransactionContext::root().append_path(&[fid(1), fid(2)]);
        let b = TransactionContext::root()
            .append_frame(fid(1), ContextPolicy::default())
            .append_frame(fid(2), ContextPolicy::default());
        assert_ne!(a.stable_hash(), b.stable_hash());
    }

    #[test]
    fn sharded_table_mints_one_id_per_value() {
        let mut t = ShardedContextTable::new(8);
        let values = sample_values(64);
        let ids: Vec<_> = values.iter().map(|v| t.intern(v.clone())).collect();
        for (v, &id) in values.iter().zip(&ids) {
            assert_eq!(t.intern(v.clone()), id, "re-interning is stable");
            assert_eq!(t.get(v), Some(id));
            assert_eq!(t.value(id), Some(v));
            assert_eq!(id.shard() as usize, t.shard_of(v));
        }
    }

    #[test]
    fn sharded_from_parts_is_order_insensitive() {
        let values = sample_values(64);
        let n = 8;
        let probe = ShardedContextTable::new(n);
        let mut parts: Vec<ContextShard> = vec![ContextShard::default(); n];
        for v in &values {
            parts[probe.shard_of(v)].intern_local(v.clone());
        }
        let fwd = ShardedContextTable::from_parts(n, parts.iter().cloned().enumerate());
        let rev = ShardedContextTable::from_parts(n, parts.iter().cloned().enumerate().rev());
        assert_eq!(fwd, rev);
        let mut serial = ShardedContextTable::new(n);
        for v in &values {
            serial.intern(v.clone());
        }
        assert_eq!(fwd, serial, "partitioned build equals serial interning");
    }

    #[test]
    fn sharded_id_packs_shard_and_local() {
        let id = ShardedCtxId::new(3, 17);
        assert_eq!(id.shard(), 3);
        assert_eq!(id.local(), 17);
        assert_eq!(id.to_string(), "ctx3.17");
    }
}
