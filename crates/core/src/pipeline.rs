//! The parallel post-collection analysis pipeline.
//!
//! Post-mortem analysis — validating stage dumps, indexing minted
//! synopses, resolving origins and request edges, merging per-stage
//! CCTs into per-transaction profiles, aggregating crosstalk, and
//! re-serializing the dumps — is embarrassingly parallel *if* the
//! merge order is pinned down. This module runs those phases across a
//! deterministic fixed-size worker pool and guarantees the result is
//! **bit-identical for every worker count**, by construction:
//!
//! 1. Work is partitioned into a *fixed* number of items (stages, or
//!    dictionary shards chosen by location hash) that does not depend
//!    on the worker count.
//! 2. Each item's result is a pure function of the input dumps.
//! 3. Per-item results land in per-item slots and are merged in
//!    ascending item order — never in completion order.
//!
//! `workers == 1` *is* the serial path: the same item functions run on
//! the calling thread in the same item order. Parallel counts execute
//! on real scoped OS threads with seeded work stealing via
//! [`crate::exec::run`]; [`analyze_with`] additionally accepts a
//! [`StealPlan`] so the stress harness can perturb steal order and
//! inject deterministic shard panics. The differential suites
//! (`crates/core/tests/parallel_diff.rs`, `thread_stress.rs`) hold all
//! paths to byte equality over seeds × schedules × fault plans ×
//! worker counts, and DESIGN.md §9/§14 record the invariants a future
//! contributor must preserve.

use crate::cct::{Cct, CctNodeId, Metrics};
use crate::exec::{self, ShardPanic, StealPlan};
use crate::context::{
    ContextAtom, ContextShard, ShardedContextTable, ShardedCtxId, TransactionContext,
};
use crate::crosstalk::{CrosstalkMatrix, OriginKey, WaitStats};
use crate::dumpjson;
use crate::frame::FrameId;
use crate::stitch::{DumpAtom, RequestEdge, StageDump, StitchError, UnresolvedEdge};
use crate::synopsis::{SynChain, Synopsis};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::Instant;

/// Pipeline sizing.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Worker threads. `1` runs every phase on the calling thread (the
    /// serial reference path); larger counts only change *who* computes
    /// each item, never the result.
    pub workers: usize,
    /// Dictionary shard count. Fixed independently of `workers` — this
    /// is what makes output worker-count-invariant — and sized so shard
    /// work stays balanced (default 32).
    pub shards: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            workers: 1,
            shards: 32,
        }
    }
}

impl PipelineConfig {
    /// A config with `workers` workers and default shard count.
    pub fn with_workers(workers: usize) -> Self {
        PipelineConfig {
            workers: workers.max(1),
            ..Default::default()
        }
    }
}

/// Wall time and deterministic work accounting for one phase.
#[derive(Clone, Debug)]
pub struct PhaseTiming {
    /// Phase name (stable across runs; used by the bench breakdown).
    pub phase: &'static str,
    /// Measured wall time of the phase, in nanoseconds. Hardware- and
    /// load-dependent; NOT part of the deterministic output.
    pub wall_ns: u64,
    /// Deterministic work units per item (stage or shard). A pure
    /// function of the input dumps; the bench derives the
    /// critical-path model speedup from these.
    pub item_work: Vec<u64>,
    /// Items executed by a non-owner worker (work stealing). Timing-
    /// dependent; NOT part of the deterministic output.
    pub steals: u64,
}

/// One stitched per-transaction profile: every stage's CCT work that
/// the origin walk attributed to the same entry-point context, merged
/// over the global frame table.
#[derive(Clone, Debug)]
pub struct OriginProfile {
    /// `(stage index, context index)` of the transaction's entry point.
    pub origin: OriginKey,
    /// The origin's context value in the sharded global dictionary.
    pub global_ctx: ShardedCtxId,
    /// Stages that contributed CCT mass, ascending.
    pub stages: Vec<usize>,
    /// The merged CCT, over global frame ids
    /// ([`PipelineReport::frames`]).
    pub cct: Cct,
}

/// Everything the pipeline produces. All fields except [`timings`] are
/// bit-identical across worker counts.
///
/// [`timings`]: PipelineReport::timings
#[derive(Debug)]
pub struct PipelineReport {
    /// Workers the run used.
    pub workers: usize,
    /// Dictionary shard count the run used.
    pub shards: usize,
    /// The input dumps, order preserved.
    pub stages: Vec<StageDump>,
    /// Global frame names, sorted; CCTs in [`profiles`] index these.
    ///
    /// [`profiles`]: PipelineReport::profiles
    pub frames: Vec<String>,
    /// Stages skipped as invalid, with why.
    pub warnings: Vec<(usize, StitchError)>,
    /// Resolved request edges, sorted as
    /// [`crate::stitch::Stitched::request_edges`] sorts them.
    pub edges: Vec<RequestEdge>,
    /// Remote contexts whose sender dump is missing, sorted as
    /// [`crate::stitch::Stitched::unresolved_edges`] sorts them.
    pub unresolved: Vec<UnresolvedEdge>,
    /// Per-transaction profiles, sorted by origin key.
    pub profiles: Vec<OriginProfile>,
    /// Cross-stage crosstalk between origin transactions.
    pub matrix: CrosstalkMatrix,
    /// The sharded global context dictionary the profiles intern into.
    pub dict: ShardedContextTable,
    /// The dumps re-serialized; byte-identical to
    /// [`crate::dumpjson::to_json`] on the same dumps.
    pub dumps_json: String,
    /// Per-phase wall times and work accounting. The only
    /// non-deterministic field (wall times); excluded from
    /// [`PipelineReport::fingerprint`].
    pub timings: Vec<PhaseTiming>,
}

/// Runs every phase of the analysis over `dumps` under the canonical
/// schedule, propagating any worker panic (with the executor's clean
/// [`ShardPanic`] message) — the legacy entry point.
pub fn analyze(dumps: Vec<StageDump>, cfg: PipelineConfig) -> PipelineReport {
    match analyze_with(dumps, cfg, StealPlan::CANONICAL) {
        Ok(report) => report,
        Err(e) => panic!("{e}"),
    }
}

/// Runs every phase of the analysis over `dumps` under a specific
/// steal schedule. The schedule can never change the report — the
/// thread-stress harness sweeps plans to prove it — but a panicking
/// shard (organic, or injected via [`StealPlan::panic_at`]) surfaces
/// here as a clean [`ShardPanic`] instead of a partial report.
pub fn analyze_with(
    dumps: Vec<StageDump>,
    cfg: PipelineConfig,
    plan: StealPlan,
) -> Result<PipelineReport, ShardPanic> {
    let workers = cfg.workers.max(1);
    let shards = cfg.shards.max(1);
    let stages = &dumps;
    let n_stages = stages.len();
    let mut timings = Vec::new();

    // Global frame table: the sorted union of every stage's frame
    // names, plus per-stage local→global index maps. Serial — it is a
    // cheap prefix every later phase reads.
    let mut names: BTreeSet<&str> = BTreeSet::new();
    for d in stages {
        for f in &d.frames {
            names.insert(f);
        }
    }
    let frames: Vec<String> = names.iter().map(|s| (*s).to_owned()).collect();
    let frame_global: HashMap<&str, u32> = frames
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i as u32))
        .collect();
    let remap: Vec<Vec<u32>> = stages
        .iter()
        .map(|d| d.frames.iter().map(|f| frame_global[f.as_str()]).collect())
        .collect();

    // Phase: validate. Per stage, check indices and rebuild every CCT.
    let (validated, t) = timed_phase("validate", workers, plan, n_stages, |si| {
        let d = &stages[si];
        let work = 1
            + d.frames.len() as u64
            + d.contexts.len() as u64
            + d.ccts.iter().map(|c| c.nodes.len() as u64).sum::<u64>();
        (d.validate(), work)
    })?;
    timings.push(t);
    let valid: Vec<bool> = validated.iter().map(|r| r.is_ok()).collect();
    let warnings: Vec<(usize, StitchError)> = validated
        .into_iter()
        .enumerate()
        .filter_map(|(si, r)| r.err().map(|e| (si, e)))
        .collect();

    // Phase: index. The minted-synopsis index, sharded by synopsis
    // hash. Each shard scans all valid stages in order and keeps the
    // entries it owns, so shard contents (and last-insert-wins on
    // duplicates) match the serial stage-order scan exactly.
    let (index, t) = timed_phase("index", workers, plan, shards, |j| {
        let mut map: HashMap<u64, (usize, u32)> = HashMap::new();
        let mut kept = 0u64;
        for (si, d) in stages.iter().enumerate() {
            if !valid[si] {
                continue;
            }
            for &(raw, ctx) in &d.synopses {
                if syn_shard(raw, shards) == j {
                    map.insert(raw, (si, ctx));
                    kept += 1;
                }
            }
        }
        (map, 1 + kept)
    })?;
    timings.push(t);
    let resolve = |raw: u64| -> Option<(usize, u32)> {
        index[syn_shard(raw, shards)].get(&raw).copied()
    };

    // Phase: stitch. Per stage, resolve every context's origin and
    // classify remote contexts into request/unresolved edges.
    let (stitched, t) = timed_phase("stitch", workers, plan, n_stages, |si| {
        let mut origins: Vec<OriginKey> = Vec::new();
        let mut edges: Vec<RequestEdge> = Vec::new();
        let mut unresolved: Vec<UnresolvedEdge> = Vec::new();
        if valid[si] {
            let d = &stages[si];
            for (ci, c) in d.contexts.iter().enumerate() {
                let ci = ci as u32;
                origins.push(walk_origin(stages, &resolve, (si, ci)));
                if let Some(DumpAtom::Remote(chain)) = c.atoms.first() {
                    if let Some(&last) = chain.last() {
                        match resolve(last) {
                            Some((fs, fc)) => edges.push(RequestEdge {
                                from_stage: fs,
                                from_ctx: fc,
                                to_stage: si,
                                to_ctx: ci,
                            }),
                            None => unresolved.push(UnresolvedEdge {
                                to_stage: si,
                                to_ctx: ci,
                                missing: last,
                            }),
                        }
                    }
                }
            }
        }
        let work = 1 + origins.len() as u64;
        ((origins, edges, unresolved), work)
    })?;
    timings.push(t);
    let origins: Vec<Vec<OriginKey>> = stitched.iter().map(|(o, _, _)| o.clone()).collect();
    let mut edges: Vec<RequestEdge> = stitched.iter().flat_map(|(_, e, _)| e.clone()).collect();
    edges.sort_by_key(|e| (e.to_stage, e.to_ctx, e.from_stage, e.from_ctx));
    let mut unresolved: Vec<UnresolvedEdge> =
        stitched.iter().flat_map(|(_, _, u)| u.clone()).collect();
    unresolved.sort_by_key(|e| (e.to_stage, e.to_ctx, e.missing));

    // Phase: annotate. Per stage, rebuild each CCT over global frame
    // ids and tag it with its origin, the origin's global context
    // value, and the dictionary shard that value hashes to.
    let (annotated, t) = timed_phase("annotate", workers, plan, n_stages, |si| {
        let mut anns: Vec<CctAnnotation> = Vec::new();
        let mut work = 1u64;
        if valid[si] {
            let d = &stages[si];
            for c in &d.ccts {
                let origin = origin_of(&origins, si, c.ctx);
                let value = global_value(stages, &remap, origin);
                let dict_shard = (value.stable_hash() % shards as u64) as usize;
                let cct = rebuild_global(&remap[si], c);
                work += c.nodes.len() as u64 + value.len() as u64 + 1;
                anns.push(CctAnnotation {
                    origin,
                    value,
                    dict_shard,
                    cct,
                });
            }
        }
        (anns, work)
    })?;
    timings.push(t);

    // Phase: profiles. Per dictionary shard, merge the CCTs of every
    // annotation the shard owns (scan in (stage, cct) order so merge
    // order is fixed) and intern the origin values into the shard's
    // slice of the global dictionary.
    let (profile_parts, t) = timed_phase("profiles", workers, plan, shards, |j| {
        let mut shard = ContextShard::default();
        let mut acc: BTreeMap<OriginKey, (u32, BTreeSet<usize>, Cct)> = BTreeMap::new();
        let mut work = 1u64;
        for (si, anns) in annotated.iter().enumerate() {
            for a in anns {
                if a.dict_shard != j {
                    continue;
                }
                work += a.cct.node_ids().count() as u64 + 1;
                let e = acc.entry(a.origin).or_insert_with(|| {
                    let local = shard.intern_local(a.value.clone());
                    (local, BTreeSet::new(), Cct::new())
                });
                e.1.insert(si);
                e.2.merge(&a.cct);
            }
        }
        let profiles: Vec<OriginProfile> = acc
            .into_iter()
            .map(|(origin, (local, stages, cct))| OriginProfile {
                origin,
                global_ctx: ShardedCtxId::new(j as u32, local),
                stages: stages.into_iter().collect(),
                cct,
            })
            .collect();
        ((shard, profiles), work)
    })?;
    timings.push(t);
    let mut dict_parts = Vec::new();
    let mut profiles = Vec::new();
    for (j, (shard, mut ps)) in profile_parts.into_iter().enumerate() {
        dict_parts.push((j, shard));
        profiles.append(&mut ps);
    }
    let dict = ShardedContextTable::from_parts(shards, dict_parts);
    profiles.sort_by_key(|p| p.origin);

    // Phase: crosstalk-map. Per stage, resolve each recorded pair and
    // waiter through the origin walk and tag it with the shard its
    // waiter origin hashes to.
    let (ct_maps, t) = timed_phase("crosstalk-map", workers, plan, n_stages, |si| {
        let mut pairs: Vec<(usize, OriginKey, OriginKey, WaitStats)> = Vec::new();
        let mut waiters: Vec<(usize, OriginKey, WaitStats)> = Vec::new();
        let mut work = 1u64;
        if valid[si] {
            let d = &stages[si];
            for p in &d.crosstalk_pairs {
                let w = origin_of(&origins, si, p.waiter);
                let h = origin_of(&origins, si, p.holder);
                pairs.push((
                    origin_shard(w, shards),
                    w,
                    h,
                    WaitStats {
                        count: p.count,
                        total_wait: p.total_wait,
                    },
                ));
            }
            for wt in &d.crosstalk_waiters {
                let w = origin_of(&origins, si, wt.waiter);
                waiters.push((
                    origin_shard(w, shards),
                    w,
                    WaitStats {
                        count: wt.count,
                        total_wait: wt.total_wait,
                    },
                ));
            }
            work += (d.crosstalk_pairs.len() + d.crosstalk_waiters.len()) as u64;
        }
        ((pairs, waiters), work)
    })?;
    timings.push(t);

    // Phase: crosstalk-reduce. Per shard, accumulate the rows the
    // shard owns; keys are disjoint across shards (a waiter origin
    // lives in exactly one), so the final from_parts merge is lossless.
    let (ct_parts, t) = timed_phase("crosstalk-reduce", workers, plan, shards, |j| {
        let mut pair_acc: BTreeMap<(OriginKey, OriginKey), WaitStats> = BTreeMap::new();
        let mut waiter_acc: BTreeMap<OriginKey, WaitStats> = BTreeMap::new();
        let mut work = 1u64;
        for (ps, ws) in &ct_maps {
            for &(shard, w, h, s) in ps {
                if shard != j {
                    continue;
                }
                work += 1;
                let e = pair_acc.entry((w, h)).or_default();
                e.count += s.count;
                e.total_wait += s.total_wait;
            }
            for &(shard, w, s) in ws {
                if shard != j {
                    continue;
                }
                work += 1;
                let e = waiter_acc.entry(w).or_default();
                e.count += s.count;
                e.total_wait += s.total_wait;
            }
        }
        let m = CrosstalkMatrix {
            pairs: pair_acc.into_iter().map(|((w, h), s)| (w, h, s)).collect(),
            waiters: waiter_acc.into_iter().collect(),
        };
        (m, work)
    })?;
    timings.push(t);
    let matrix = CrosstalkMatrix::from_parts(ct_parts);

    // Phase: serialize. Per stage, render the dump's JSON; the serial
    // concatenation below reproduces dumpjson::to_json byte-for-byte
    // because that format is itself a per-dump concatenation.
    let (jsons, t) = timed_phase("serialize", workers, plan, n_stages, |si| {
        let j = dumpjson::dump_to_json(&stages[si]);
        let work = 1 + j.len() as u64;
        (j, work)
    })?;
    timings.push(t);
    let mut dumps_json = String::from("[\n");
    for (i, j) in jsons.iter().enumerate() {
        if i > 0 {
            dumps_json.push_str(",\n");
        }
        dumps_json.push_str(j);
    }
    dumps_json.push_str("\n]\n");

    Ok(PipelineReport {
        workers,
        shards,
        stages: dumps,
        frames,
        warnings,
        edges,
        unresolved,
        profiles,
        matrix,
        dict,
        dumps_json,
        timings,
    })
}

struct CctAnnotation {
    origin: OriginKey,
    value: TransactionContext,
    dict_shard: usize,
    cct: Cct,
}

/// The shard a minted synopsis routes to — the pure routing function
/// behind the index phase, exposed so property tests can pin
/// shard-assignment stability under input permutation.
pub fn shard_of_syn(raw: u64, shards: usize) -> usize {
    syn_shard(raw, shards.max(1))
}

/// The dictionary shard an origin key routes to — the pure routing
/// function behind the profiles/crosstalk-reduce phases, exposed for
/// the same property tests as [`shard_of_syn`].
pub fn shard_of_origin(k: OriginKey, shards: usize) -> usize {
    origin_shard(k, shards.max(1))
}

/// FNV-1a over a synopsis value, reduced to a shard index.
fn syn_shard(raw: u64, shards: usize) -> usize {
    (crate::hash::fnv1a(&raw.to_le_bytes()) % shards as u64) as usize
}

/// FNV-1a over an origin key, reduced to a shard index.
fn origin_shard(k: OriginKey, shards: usize) -> usize {
    let mut h = crate::hash::Fnv64::new();
    h.write_u64(k.0 as u64);
    h.write_u64(k.1 as u64);
    (h.finish() % shards as u64) as usize
}

/// The origin computed in the stitch phase for a stage-local context
/// index, with the same out-of-range fallback on both paths.
fn origin_of(origins: &[Vec<OriginKey>], si: usize, ctx: u32) -> OriginKey {
    origins
        .get(si)
        .and_then(|v| v.get(ctx as usize))
        .copied()
        .unwrap_or((si, ctx))
}

/// [`crate::stitch::Stitched::origin`]'s walk, against the sharded
/// index.
fn walk_origin(
    stages: &[StageDump],
    resolve: &dyn Fn(u64) -> Option<(usize, u32)>,
    start: (usize, u32),
) -> (usize, u32) {
    let mut cur = start;
    for _ in 0..64 {
        let Some(d) = stages.get(cur.0) else {
            return cur;
        };
        let Some(c) = d.contexts.get(cur.1 as usize) else {
            return cur;
        };
        let Some(DumpAtom::Remote(chain)) = c.atoms.first() else {
            return cur;
        };
        let Some(&head) = chain.first() else {
            return cur;
        };
        let Some(next) = resolve(head) else {
            return cur;
        };
        if next == cur {
            return cur;
        }
        cur = next;
    }
    cur
}

/// The global-dictionary value of an origin: its dumped context with
/// stage-local frame indices remapped onto the global frame table.
fn global_value(stages: &[StageDump], remap: &[Vec<u32>], origin: OriginKey) -> TransactionContext {
    let Some(d) = stages.get(origin.0) else {
        return TransactionContext::root();
    };
    let Some(c) = d.contexts.get(origin.1 as usize) else {
        return TransactionContext::root();
    };
    let rm = &remap[origin.0];
    let gf = |f: &u32| FrameId(rm.get(*f as usize).copied().unwrap_or(u32::MAX));
    TransactionContext(
        c.atoms
            .iter()
            .map(|a| match a {
                DumpAtom::Frame(f) => ContextAtom::Frame(gf(f)),
                DumpAtom::Path(p) => {
                    ContextAtom::Path(p.iter().map(&gf).collect::<Vec<_>>().into())
                }
                DumpAtom::Remote(chain) => {
                    ContextAtom::Remote(SynChain(chain.iter().map(|&s| Synopsis(s)).collect()))
                }
            })
            .collect(),
    )
}

/// Rebuilds a dumped CCT over global frame ids. The dump is already
/// validated, so malformed nodes cannot occur here.
fn rebuild_global(remap: &[u32], d: &crate::stitch::DumpCct) -> Cct {
    let mut cct = Cct::new();
    let mut map: Vec<CctNodeId> = Vec::with_capacity(d.nodes.len());
    for (i, n) in d.nodes.iter().enumerate() {
        let id = if i == 0 {
            CctNodeId::ROOT
        } else {
            let p = n.parent.expect("validated dump") as usize;
            let f = n.frame.expect("validated dump");
            let gf = remap.get(f as usize).copied().unwrap_or(u32::MAX);
            cct.child(map[p], FrameId(gf))
        };
        cct.record_at(
            id,
            Metrics {
                samples: n.samples,
                cycles: n.cycles,
                calls: n.calls,
            },
        );
        map.push(id);
    }
    cct
}

/// Runs `f` over items `0..n` on real worker threads and returns the
/// results in item order, along with the phase timing.
///
/// Execution goes through [`exec::run`]: per-worker deques seeded by
/// `plan`, work stealing, results slotted by item index. Scheduling
/// can influence only the diagnostic `wall_ns`/`steals` fields, never
/// the results. A panicking item aborts the phase and surfaces as a
/// clean [`ShardPanic`] carrying the phase name and item index.
fn timed_phase<T: Send>(
    phase: &'static str,
    workers: usize,
    plan: StealPlan,
    n: usize,
    f: impl Fn(usize) -> (T, u64) + Sync,
) -> Result<(Vec<T>, PhaseTiming), ShardPanic> {
    let start = Instant::now();
    let (pairs, stats) = exec::run(phase, workers, plan, n, f)?;
    let mut results = Vec::with_capacity(n);
    let mut item_work = Vec::with_capacity(n);
    for (r, w) in pairs {
        results.push(r);
        item_work.push(w);
    }
    let t = PhaseTiming {
        phase,
        wall_ns: u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        item_work,
        steals: stats.steals,
    };
    Ok((results, t))
}

impl PipelineReport {
    /// Renders the stitched per-transaction profiles, request edges,
    /// unresolved edges, and warnings as deterministic text — the
    /// byte-comparison surface of the differential suite.
    pub fn stitched_text(&self) -> String {
        use crate::txt::push_usize;
        use std::fmt::Write as _;
        let mut out = String::new();
        for p in &self.profiles {
            let (os, oc) = p.origin;
            out.push_str("origin ");
            self.push_origin_label(&mut out, os, oc);
            out.push_str(" [");
            let _ = write!(out, "{}", p.global_ctx);
            // `stages` keeps the `{:?}` rendering of a Vec<usize>:
            // "[0, 1, 2]".
            out.push_str("] stages=[");
            for (i, &si) in p.stages.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                push_usize(&mut out, si);
            }
            out.push_str("]\n");
            self.render_cct(&mut out, &p.cct, CctNodeId::ROOT, 1);
        }
        out.push_str("request edges:\n");
        for e in &self.edges {
            out.push_str("  ");
            self.push_origin_label(&mut out, e.from_stage, e.from_ctx);
            out.push_str("  ==>  ");
            self.push_origin_label(&mut out, e.to_stage, e.to_ctx);
            out.push('\n');
        }
        if !self.unresolved.is_empty() {
            out.push_str("unresolved edges:\n");
            for e in &self.unresolved {
                out.push_str("  ???[");
                let _ = write!(out, "{}", Synopsis(e.missing));
                out.push_str("]  ==>  ");
                self.push_origin_label(&mut out, e.to_stage, e.to_ctx);
                out.push('\n');
            }
        }
        for (si, err) in &self.warnings {
            out.push_str("warning: stage ");
            push_usize(&mut out, *si);
            out.push_str(" (");
            out.push_str(&self.stages[*si].stage_name);
            let _ = write!(out, ") skipped: {err}");
            out.push('\n');
        }
        out
    }

    /// Renders the crosstalk matrix as deterministic text.
    pub fn crosstalk_text(&self) -> String {
        self.matrix.render(&|s, c| self.origin_label(s, c))
    }

    /// `stage_name:context` label for an origin key.
    pub fn origin_label(&self, stage: usize, ctx: u32) -> String {
        let mut out = String::new();
        self.push_origin_label(&mut out, stage, ctx);
        out
    }

    /// [`Self::origin_label`] appending into a caller-supplied buffer.
    fn push_origin_label(&self, out: &mut String, stage: usize, ctx: u32) {
        match self.stages.get(stage) {
            Some(d) => {
                out.push_str(&d.stage_name);
                out.push(':');
                out.push_str(&d.ctx_string(ctx));
            }
            None => {
                out.push_str("<stage ");
                crate::txt::push_usize(out, stage);
                out.push_str("?>:");
                crate::txt::push_u32(out, ctx);
            }
        }
    }

    fn render_cct(&self, out: &mut String, cct: &Cct, node: CctNodeId, depth: usize) {
        if let Some(f) = cct.frame(node) {
            let name = self
                .frames
                .get(f.0 as usize)
                .map(String::as_str)
                .unwrap_or("<?>");
            let m = cct.inclusive(node);
            for _ in 0..depth {
                out.push_str("  ");
            }
            out.push_str(name);
            out.push_str(" samples ");
            crate::txt::push_u64(out, m.samples);
            out.push_str(" cycles ");
            crate::txt::push_u64(out, m.cycles);
            out.push('\n');
        }
        for child in cct.children_sorted(node) {
            self.render_cct(out, cct, child, depth + 1);
        }
    }

    /// FNV-1a fingerprint over the deterministic outputs (stitched
    /// text, crosstalk text, dump JSON). Equal fingerprints across
    /// worker counts is the bench's divergence gate.
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::hash::Fnv64::new();
        h.write(self.stitched_text().as_bytes());
        h.write(self.crosstalk_text().as_bytes());
        h.write(self.dumps_json.as_bytes());
        h.finish()
    }

    /// Total deterministic work units across all phases.
    pub fn total_work(&self) -> u64 {
        self.timings
            .iter()
            .map(|t| t.item_work.iter().sum::<u64>())
            .sum()
    }

    /// The critical-path model speedup of running this workload with
    /// `workers` workers versus serially.
    ///
    /// For each phase, serial cost is the sum of its items' work units
    /// and parallel cost is the maximum per-worker sum under the static
    /// `item % workers` assignment [`analyze`] actually uses. The ratio
    /// of the phase sums is the speedup an ideally scheduled
    /// `workers`-core host would see. It is a pure function of the
    /// input dumps — reproducible on any machine, including single-core
    /// CI hosts where wall-clock parallel speedup is physically
    /// unobservable.
    pub fn model_speedup(&self, workers: usize) -> f64 {
        let w = workers.max(1);
        let mut serial = 0u64;
        let mut parallel = 0u64;
        for t in &self.timings {
            serial += t.item_work.iter().sum::<u64>();
            let mut per_worker = vec![0u64; w];
            for (i, &units) in t.item_work.iter().enumerate() {
                per_worker[i % w] += units;
            }
            parallel += per_worker.into_iter().max().unwrap_or(0);
        }
        if parallel == 0 {
            return 1.0;
        }
        serial as f64 / parallel as f64
    }
}

/// Replicates a profiled tier group into a fleet of `replicas` copies
/// with disjoint process ids: replica `r`'s copy of `dumps[i]` gets
/// process id `r * dumps.len() + i`, applied consistently to minted
/// synopses and remote chains via
/// [`StageDump::with_remapped_proc`]. This turns one small run into a
/// deterministic fleet-sized analysis workload for the `pipeline`
/// bench.
///
/// # Panics
///
/// Panics (in `Synopsis::new`) if `replicas * dumps.len()` exceeds the
/// 8-bit process-id space (256).
pub fn replicate_fleet(dumps: &[StageDump], replicas: usize) -> Vec<StageDump> {
    let g = dumps.len();
    let proc_index: HashMap<u32, usize> = dumps
        .iter()
        .enumerate()
        .map(|(i, d)| (d.proc, i))
        .collect();
    let mut fleet = Vec::with_capacity(g * replicas);
    for r in 0..replicas {
        for d in dumps {
            let map = |p: u32| proc_index.get(&p).map(|&i| (r * g + i) as u32);
            fleet.push(d.with_remapped_proc(&map));
        }
    }
    fleet
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stitch::{DumpCct, DumpContext, DumpCrosstalkPair, DumpCrosstalkWaiter, DumpNode, Stitched};

    fn node(frame: Option<u32>, parent: Option<u32>, samples: u64, cycles: u64) -> DumpNode {
        DumpNode {
            frame,
            parent,
            samples,
            cycles,
            calls: 0,
        }
    }

    /// A 3-stage chain: stage 0 sends (mints 0x...64), stage 1 receives
    /// and forwards (mints its own), stage 2 receives. Stage 2 records
    /// crosstalk between its two contexts.
    fn chain_dumps() -> Vec<StageDump> {
        let s0 = StageDump {
            proc: 0,
            stage_name: "front".into(),
            frames: vec!["main".into(), "rpc".into()],
            contexts: vec![
                DumpContext::default(),
                DumpContext {
                    atoms: vec![DumpAtom::Path(vec![0, 1])],
                },
            ],
            ccts: vec![DumpCct {
                ctx: 1,
                nodes: vec![node(None, None, 0, 0), node(Some(0), Some(0), 5, 50)],
            }],
            synopses: vec![(Synopsis::new(0, 0).0, 1)],
            ..Default::default()
        };
        let s1 = StageDump {
            proc: 1,
            stage_name: "mid".into(),
            frames: vec!["serve".into()],
            contexts: vec![
                DumpContext::default(),
                DumpContext {
                    atoms: vec![DumpAtom::Remote(vec![Synopsis::new(0, 0).0])],
                },
            ],
            ccts: vec![DumpCct {
                ctx: 1,
                nodes: vec![node(None, None, 0, 0), node(Some(0), Some(0), 7, 70)],
            }],
            synopses: vec![(Synopsis::new(1, 0).0, 1)],
            ..Default::default()
        };
        let s2 = StageDump {
            proc: 2,
            stage_name: "db".into(),
            frames: vec!["query".into(), "lock".into()],
            contexts: vec![
                DumpContext::default(),
                DumpContext {
                    atoms: vec![DumpAtom::Remote(vec![
                        Synopsis::new(0, 0).0,
                        Synopsis::new(1, 0).0,
                    ])],
                },
            ],
            ccts: vec![DumpCct {
                ctx: 1,
                nodes: vec![
                    node(None, None, 0, 0),
                    node(Some(0), Some(0), 3, 30),
                    node(Some(1), Some(1), 2, 20),
                ],
            }],
            synopses: vec![],
            crosstalk_pairs: vec![DumpCrosstalkPair {
                waiter: 1,
                holder: 0,
                count: 4,
                total_wait: 400,
            }],
            crosstalk_waiters: vec![DumpCrosstalkWaiter {
                waiter: 1,
                count: 9,
                total_wait: 400,
            }],
            ..Default::default()
        };
        vec![s0, s1, s2]
    }

    fn assert_identical(a: &PipelineReport, b: &PipelineReport) {
        assert_eq!(a.stitched_text(), b.stitched_text());
        assert_eq!(a.crosstalk_text(), b.crosstalk_text());
        assert_eq!(a.dumps_json, b.dumps_json);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.dict, b.dict);
    }

    #[test]
    fn parallel_output_is_bit_identical_to_serial() {
        for shards in [1, 4, 32] {
            let serial = analyze(
                chain_dumps(),
                PipelineConfig { workers: 1, shards },
            );
            for workers in [2, 3, 4, 8] {
                let par = analyze(
                    chain_dumps(),
                    PipelineConfig { workers, shards },
                );
                assert_identical(&serial, &par);
            }
        }
    }

    #[test]
    fn edges_match_legacy_stitched() {
        let dumps = chain_dumps();
        let st = Stitched::new(dumps.clone());
        let rep = analyze(dumps, PipelineConfig::default());
        assert_eq!(rep.edges, st.request_edges());
        assert_eq!(rep.unresolved, st.unresolved_edges());
        assert!(rep.warnings.is_empty());
    }

    #[test]
    fn json_matches_serial_serializer() {
        let dumps = chain_dumps();
        let want = dumpjson::to_json(&dumps);
        let rep = analyze(dumps, PipelineConfig::with_workers(4));
        assert_eq!(rep.dumps_json, want);
        let back = dumpjson::from_json(&rep.dumps_json).expect("round trip");
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn profiles_merge_all_stages_under_the_origin() {
        let rep = analyze(chain_dumps(), PipelineConfig::default());
        // Every stage's CCT resolves to the front-tier entry point.
        assert_eq!(rep.profiles.len(), 1);
        let p = &rep.profiles[0];
        assert_eq!(p.origin, (0, 1));
        assert_eq!(p.stages, vec![0, 1, 2]);
        assert_eq!(p.cct.total().cycles, 50 + 70 + 30 + 20);
        // The origin's value is interned in the sharded dictionary.
        assert_eq!(rep.dict.value(p.global_ctx).map(|v| v.len()), Some(1));
    }

    #[test]
    fn crosstalk_resolves_to_origins() {
        let rep = analyze(chain_dumps(), PipelineConfig::with_workers(4));
        // db ctx1's origin is (0,1); db ctx0 is local root (2,0).
        assert_eq!(rep.matrix.pairs, vec![(
            (0, 1),
            (2, 0),
            WaitStats {
                count: 4,
                total_wait: 400
            }
        )]);
        assert_eq!(rep.matrix.waiters.len(), 1);
        assert_eq!(rep.matrix.waiters[0].0, (0, 1));
    }

    #[test]
    fn corrupt_stage_is_skipped_identically() {
        let mut dumps = chain_dumps();
        dumps[1].ccts[0].ctx = 99; // context out of range → invalid
        let serial = analyze(dumps.clone(), PipelineConfig::default());
        let par = analyze(dumps.clone(), PipelineConfig::with_workers(4));
        assert_identical(&serial, &par);
        assert_eq!(serial.warnings.len(), 1);
        assert_eq!(serial.warnings[0].0, 1);
        // Legacy comparison still holds with an invalid stage present.
        let st = Stitched::new(dumps);
        assert_eq!(serial.edges, st.request_edges());
        assert_eq!(serial.unresolved, st.unresolved_edges());
    }

    #[test]
    fn fleet_replication_is_consistent_and_analyzable() {
        let fleet = replicate_fleet(&chain_dumps(), 5);
        assert_eq!(fleet.len(), 15);
        let procs: BTreeSet<u32> = fleet.iter().map(|d| d.proc).collect();
        assert_eq!(procs.len(), 15, "disjoint proc ids");
        let serial = analyze(fleet.clone(), PipelineConfig::default());
        let par = analyze(fleet, PipelineConfig::with_workers(4));
        assert_identical(&serial, &par);
        // One profile per replica origin, all resolved (no unresolved
        // edges introduced by remapping).
        assert_eq!(serial.profiles.len(), 5);
        assert!(serial.unresolved.is_empty());
        assert_eq!(serial.edges.len(), 10);
    }

    #[test]
    fn model_speedup_grows_with_workers() {
        let fleet = replicate_fleet(&chain_dumps(), 16);
        let rep = analyze(fleet, PipelineConfig::default());
        let s1 = rep.model_speedup(1);
        let s4 = rep.model_speedup(4);
        assert!((s1 - 1.0).abs() < 1e-12);
        assert!(s4 > 2.0, "4-worker model speedup {s4:.2} over 48 stages");
        assert!(s4 <= 4.0 + 1e-9);
    }
}
