//! Invariant oracles for chaos exploration.
//!
//! After every chaos run the harness assembles an [`Evidence`] bundle —
//! the stage dumps, the simulator's ground-truth compute cycles, the
//! channel fault counters, and the run's terminal progress state — and
//! [`check_all`] evaluates every invariant the transactional profiler
//! is supposed to uphold *regardless of the fault plan or schedule*:
//!
//! 1. **Profile-mass conservation** — per profiled tier, the cycles
//!    recorded across every context's CCT sum exactly to the
//!    simulator's ground truth.
//! 2. **Context-dictionary consistency** — every dump validates
//!    ([`StageDump::validate`]) and no raw synopsis is minted by two
//!    different (stage, context) entries.
//! 3. **Stitch completeness** — every remote context is accounted for
//!    as exactly one resolved request edge or one explicit unresolved
//!    edge; none vanish silently.
//! 4. **No unexplained degradation** — unresolved edges only appear
//!    when the fault plan could have caused them, and the channel
//!    drop/duplicate/delay counters are only nonzero when the plan
//!    permits that fault class.
//! 5. **Bounded progress** — the run neither deadlocked nor livelocked
//!    (as reported by the substrate's detectors).
//!
//! Violations are data, not panics: the chaos explorer serializes the
//! scenario to a repro file ([`crate::repro`]) and shrinks it while the
//! violation persists.

use crate::stitch::{StageDump, Stitched};
use std::collections::HashMap;
use std::fmt;

/// Terminal progress state of a run, as reported by the substrate's
/// deadlock/livelock detectors. The harness converts the simulator's
/// run outcome into this substrate-agnostic form.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum ProgressState {
    /// The run completed (reached its time limit or drained cleanly).
    #[default]
    Completed,
    /// The run deadlocked; the string describes the lock cycle.
    Deadlock(String),
    /// The run livelocked; the string names the spinning threads.
    Livelock(String),
}

/// Everything an oracle may inspect about one finished chaos run.
#[derive(Clone, Debug, Default)]
pub struct Evidence {
    /// Per-stage profile dumps, in tier order.
    pub dumps: Vec<StageDump>,
    /// Simulator ground-truth compute cycles, parallel to `dumps`.
    pub compute_truth: Vec<u64>,
    /// Whether the fault plan permits message drops.
    pub drops_permitted: bool,
    /// Whether the fault plan permits message duplication.
    pub dups_permitted: bool,
    /// Whether the fault plan permits message delays.
    pub delays_permitted: bool,
    /// Whether the fault plan permits a process crash.
    pub crash_permitted: bool,
    /// Messages actually dropped (substrate counter).
    pub dropped: u64,
    /// Messages actually duplicated (substrate counter).
    pub duplicated: u64,
    /// Messages actually delayed (substrate counter).
    pub delayed: u64,
    /// Terminal progress state of the run.
    pub progress: ProgressState,
    /// Federation mass/coverage ledger, when the run aggregated through
    /// a collector federation (absent on flat runs).
    pub federation: Option<FederationEvidence>,
}

/// The mass ledger of one federation subtree: what the root received
/// from it versus what the workload actually fed it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SubtreeMass {
    /// Subtree label (leaf or regional id) as rendered in the topology
    /// view.
    pub label: String,
    /// Profile mass the root applied from this subtree's frames.
    pub delivered: u64,
    /// Ground-truth profile mass the workload fed the subtree.
    pub truth: u64,
    /// Whether the root finalized this subtree as degraded
    /// (unrecoverable within the deadline).
    pub degraded: bool,
}

/// Everything the federation oracle may inspect about one finished
/// federated run.
#[derive(Clone, Debug, Default)]
pub struct FederationEvidence {
    /// Per-subtree delivery ledger, in topology order.
    pub subtrees: Vec<SubtreeMass>,
    /// Profile mass the root's accumulator ended with.
    pub root_mass: u64,
    /// The coverage fraction the root *reported*, in parts-per-million.
    pub reported_coverage_ppm: u64,
}

impl Evidence {
    /// Whether any fault class that can sever cross-stage attribution
    /// (lost messages, dead tiers) was permitted.
    fn degradation_permitted(&self) -> bool {
        self.drops_permitted || self.crash_permitted
    }
}

/// One invariant violation found by [`check_all`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A tier's profiled cycles diverge from simulator ground truth.
    MassConservation {
        /// Stage index.
        stage: usize,
        /// Cycles summed over the stage's dumped CCTs.
        profiled: u64,
        /// The simulator's ground-truth compute cycles.
        truth: u64,
    },
    /// A dump failed validation, or a raw synopsis was minted twice.
    ContextDictionary {
        /// Stage index (the second minter, for duplicates).
        stage: usize,
        /// What was inconsistent.
        detail: String,
    },
    /// Remote contexts are not fully accounted for by resolved +
    /// unresolved edges — some vanished from the stitched profile.
    StitchCompleteness {
        /// Remote contexts across all valid stages.
        remote_contexts: usize,
        /// Resolved request edges + explicit unresolved edges.
        accounted: usize,
    },
    /// Unresolved edges appeared although no permitted fault class can
    /// explain a missing sender.
    UnresolvedWithoutFault {
        /// Number of unresolved edges.
        count: usize,
    },
    /// A channel fault counter is nonzero although the plan does not
    /// permit that fault class (lost/duplicated synopses beyond what
    /// the plan allows).
    SynopsisAccounting {
        /// Which counter: `"dropped"`, `"duplicated"`, or `"delayed"`.
        counter: &'static str,
        /// Its value.
        count: u64,
    },
    /// The run deadlocked or livelocked.
    Progress {
        /// The substrate's diagnostic.
        detail: String,
    },
    /// A federation subtree's delivered mass diverges from what the
    /// workload fed it (non-degraded subtrees must deliver exactly;
    /// degraded ones may deliver less, never more), or the root's mass
    /// is not the sum of the subtree deliveries.
    FederationMass {
        /// Subtree label, or `"root"` for the root-sum check.
        subtree: String,
        /// Mass the root applied from the subtree.
        delivered: u64,
        /// Ground-truth mass the subtree ingested.
        truth: u64,
    },
    /// The coverage fraction the root reported diverges from the
    /// delivered/truth ledger — degraded mass was hidden or overstated.
    FederationCoverage {
        /// Coverage the root reported (ppm).
        reported_ppm: u64,
        /// Coverage implied by the ledger (ppm).
        actual_ppm: u64,
    },
    /// The sentinel emitted a repro that does not hold up: it tripped
    /// on a clean scenario, its replay diverged from the captured run,
    /// or the replay failed to re-trip the recorded SLO dimension.
    FalseRepro {
        /// The SLO dimension the capture recorded.
        dimension: String,
        /// Why the repro is false.
        detail: String,
    },
    /// Black-box inference scoring does not hold up: the claimed
    /// correct mass exceeds what ground truth contains, or a reported
    /// precision/recall/F1 rate disagrees with the counts it was
    /// supposedly computed from. Scores must be derived, never
    /// fabricated.
    InferenceAccounting {
        /// Which metric family: `"pairs"` or `"origins"`.
        metric: &'static str,
        /// Why the score is unsound.
        detail: String,
    },
}

impl Violation {
    /// Stable discriminant string, used to match a replayed violation
    /// against the one recorded in a repro file.
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::MassConservation { .. } => "mass-conservation",
            Violation::ContextDictionary { .. } => "context-dictionary",
            Violation::StitchCompleteness { .. } => "stitch-completeness",
            Violation::UnresolvedWithoutFault { .. } => "unresolved-without-fault",
            Violation::SynopsisAccounting { .. } => "synopsis-accounting",
            Violation::FederationMass { .. } => "federation-mass",
            Violation::FederationCoverage { .. } => "federation-coverage",
            Violation::Progress { .. } => "progress",
            Violation::FalseRepro { .. } => "false-repro",
            Violation::InferenceAccounting { .. } => "inference-accounting",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MassConservation {
                stage,
                profiled,
                truth,
            } => write!(
                f,
                "mass-conservation: stage {stage} profiled {profiled} cycles, truth {truth}"
            ),
            Violation::ContextDictionary { stage, detail } => {
                write!(f, "context-dictionary: stage {stage}: {detail}")
            }
            Violation::StitchCompleteness {
                remote_contexts,
                accounted,
            } => write!(
                f,
                "stitch-completeness: {remote_contexts} remote contexts but only \
                 {accounted} accounted edges"
            ),
            Violation::UnresolvedWithoutFault { count } => write!(
                f,
                "unresolved-without-fault: {count} unresolved edges with no drop/crash permitted"
            ),
            Violation::SynopsisAccounting { counter, count } => write!(
                f,
                "synopsis-accounting: {count} {counter} messages but the plan permits none"
            ),
            Violation::FederationMass {
                subtree,
                delivered,
                truth,
            } => write!(
                f,
                "federation-mass: subtree {subtree} delivered {delivered} cycles, truth {truth}"
            ),
            Violation::FederationCoverage {
                reported_ppm,
                actual_ppm,
            } => write!(
                f,
                "federation-coverage: root reported {reported_ppm} ppm but the ledger \
                 implies {actual_ppm} ppm"
            ),
            Violation::Progress { detail } => write!(f, "progress: {detail}"),
            Violation::FalseRepro { dimension, detail } => {
                write!(f, "false-repro: [{dimension}] {detail}")
            }
            Violation::InferenceAccounting { metric, detail } => {
                write!(f, "inference-accounting: [{metric}] {detail}")
            }
        }
    }
}

/// Everything the zero-false-repro oracle may inspect about one
/// sentinel capture: what the sentinel claimed, and what a fresh replay
/// of the emitted (shrunk) repro actually produced.
#[derive(Clone, Debug, Default)]
pub struct CaptureEvidence {
    /// The SLO dimension the capture recorded
    /// ([`crate::repro::ReproWindow::dimension`]).
    pub dimension: String,
    /// Whether the captured scenario's fault plan was empty — a clean
    /// run, on which the sentinel must never trip.
    pub clean_scenario: bool,
    /// Fingerprint of the originally captured (window-truncated) run.
    pub original_fingerprint: u64,
    /// Fingerprint of replaying the emitted repro bundle.
    pub replay_fingerprint: u64,
    /// Whether the replay re-tripped the recorded dimension under the
    /// same budget.
    pub retripped: bool,
}

/// The zero-false-repro oracle: a capture is *false* — and the sentinel
/// broken — if it fired on a clean scenario, if the emitted repro does
/// not replay bit-identically, or if the replay fails to re-trip the
/// recorded SLO dimension. Returns all violations found (empty means
/// the capture is sound).
pub fn check_capture(ev: &CaptureEvidence) -> Vec<Violation> {
    let mut out = Vec::new();
    let flag = |out: &mut Vec<Violation>, detail: String| {
        out.push(Violation::FalseRepro {
            dimension: ev.dimension.clone(),
            detail,
        });
    };
    if ev.clean_scenario {
        flag(&mut out, "sentinel tripped on a clean scenario".into());
    }
    if ev.replay_fingerprint != ev.original_fingerprint {
        flag(
            &mut out,
            format!(
                "replay fingerprint {:016x} != captured {:016x}",
                ev.replay_fingerprint, ev.original_fingerprint
            ),
        );
    }
    if !ev.retripped {
        flag(
            &mut out,
            "replay did not re-trip the recorded dimension".into(),
        );
    }
    out
}

/// Precision/recall arithmetic in parts-per-million. An empty
/// denominator is vacuously perfect: asserting nothing asserts nothing
/// false, and a truth set with nothing to find is fully found.
pub fn ppm(num: u64, den: u64) -> u64 {
    num.saturating_mul(1_000_000)
        .checked_div(den)
        .unwrap_or(1_000_000)
}

/// Harmonic mean of two ppm rates (the F1 of a ppm precision/recall).
pub fn f1_ppm(precision_ppm: u64, recall_ppm: u64) -> u64 {
    (2 * precision_ppm.saturating_mul(recall_ppm))
        .checked_div(precision_ppm + recall_ppm)
        .unwrap_or(0)
}

/// One scored inference metric family (message pairings, or request
/// origins): the raw counts plus the rates that were *reported* from
/// them. The oracle recomputes the rates; a mismatch means the score
/// was fabricated rather than derived.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InferenceScore {
    /// Items the inference asserted (pairings or origin attributions).
    pub asserted: u64,
    /// Items ground truth contains.
    pub truth: u64,
    /// Asserted items that match ground truth.
    pub correct: u64,
    /// Precision the scorer reported, ppm.
    pub reported_precision_ppm: u64,
    /// Recall the scorer reported, ppm.
    pub reported_recall_ppm: u64,
    /// F1 the scorer reported, ppm.
    pub reported_f1_ppm: u64,
}

/// Everything the inference-scoring oracle may inspect about one
/// scored scenario.
#[derive(Clone, Debug, Default)]
pub struct InferenceEvidence {
    /// Message-pairing scores (recv → send attribution).
    pub pairs: InferenceScore,
    /// Origin scores (recv → transaction-root attribution).
    pub origins: InferenceScore,
}

/// The inference-scoring oracle: inferred mass may never exceed ground
/// truth (`correct <= truth`, `correct <= asserted`), and every
/// reported rate must equal the one recomputed from the counts. An
/// inference pass that peeked at the truth tables — or a scorer that
/// rounded itself up — fails here. Returns all violations found.
pub fn check_inference(ev: &InferenceEvidence) -> Vec<Violation> {
    let mut out = Vec::new();
    for (metric, s) in [("pairs", &ev.pairs), ("origins", &ev.origins)] {
        let flag = |out: &mut Vec<Violation>, detail: String| {
            out.push(Violation::InferenceAccounting { metric, detail });
        };
        if s.correct > s.asserted {
            flag(
                &mut out,
                format!("{} correct but only {} asserted", s.correct, s.asserted),
            );
        }
        if s.correct > s.truth {
            flag(
                &mut out,
                format!(
                    "inferred mass exceeds ground truth: {} correct, {} true items",
                    s.correct, s.truth
                ),
            );
        }
        let precision = ppm(s.correct, s.asserted);
        let recall = ppm(s.correct, s.truth);
        let f1 = f1_ppm(precision, recall);
        for (name, reported, actual) in [
            ("precision", s.reported_precision_ppm, precision),
            ("recall", s.reported_recall_ppm, recall),
            ("f1", s.reported_f1_ppm, f1),
        ] {
            if reported != actual {
                flag(
                    &mut out,
                    format!("reported {name} {reported} ppm, counts imply {actual} ppm"),
                );
            }
        }
    }
    out
}

/// Cycles summed over every node of every CCT in a dump — the stage's
/// total profiled mass (node cycles are exclusive, so a flat sum is the
/// tree's inclusive total).
pub fn profile_mass(d: &StageDump) -> u64 {
    d.ccts
        .iter()
        .flat_map(|c| c.nodes.iter())
        .map(|n| n.cycles)
        .sum()
}

/// The federation mass-conservation oracle: every non-degraded subtree
/// must deliver exactly the mass the workload fed it; a degraded
/// subtree may deliver less (its missing mass is the explanation for
/// `coverage < 1.0`) but never more; the root's mass must be exactly
/// the sum of the subtree deliveries; and the coverage fraction the
/// root reported must match the delivered/truth ledger.
pub fn check_federation(fed: &FederationEvidence) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut delivered_total = 0u64;
    let mut truth_total = 0u64;
    for s in &fed.subtrees {
        delivered_total += s.delivered;
        truth_total += s.truth;
        let conserved = if s.degraded {
            s.delivered <= s.truth
        } else {
            s.delivered == s.truth
        };
        if !conserved {
            out.push(Violation::FederationMass {
                subtree: s.label.clone(),
                delivered: s.delivered,
                truth: s.truth,
            });
        }
    }
    if fed.root_mass != delivered_total {
        out.push(Violation::FederationMass {
            subtree: "root".into(),
            delivered: fed.root_mass,
            truth: delivered_total,
        });
    }
    let actual_ppm = delivered_total
        .saturating_mul(1_000_000)
        .checked_div(truth_total)
        .unwrap_or(1_000_000);
    if fed.reported_coverage_ppm != actual_ppm {
        out.push(Violation::FederationCoverage {
            reported_ppm: fed.reported_coverage_ppm,
            actual_ppm,
        });
    }
    out
}

/// Runs every oracle over the evidence. Returns all violations found,
/// in oracle order (empty means the run upheld every invariant).
pub fn check_all(ev: &Evidence) -> Vec<Violation> {
    let mut out = Vec::new();

    // 1. Profile-mass conservation, per tier.
    for (stage, d) in ev.dumps.iter().enumerate() {
        let truth = match ev.compute_truth.get(stage) {
            Some(&t) => t,
            None => continue,
        };
        let profiled = profile_mass(d);
        if profiled != truth {
            out.push(Violation::MassConservation {
                stage,
                profiled,
                truth,
            });
        }
    }

    // 2. Context-dictionary consistency.
    for (stage, d) in ev.dumps.iter().enumerate() {
        if let Err(e) = d.validate() {
            out.push(Violation::ContextDictionary {
                stage,
                detail: e.to_string(),
            });
        }
    }
    let mut minted: HashMap<u64, usize> = HashMap::new();
    for (stage, d) in ev.dumps.iter().enumerate() {
        for &(raw, _) in &d.synopses {
            if let Some(first) = minted.insert(raw, stage) {
                out.push(Violation::ContextDictionary {
                    stage,
                    detail: format!(
                        "raw synopsis {raw:#010x} minted by both stage {first} and stage {stage}"
                    ),
                });
            }
        }
    }

    // 3 + 4a. Stitch completeness and unexplained unresolved edges.
    let stitched = Stitched::new(ev.dumps.clone());
    let remote_contexts: usize = stitched
        .stages
        .iter()
        .enumerate()
        .filter(|&(si, _)| stitched.stage_valid(si))
        .map(|(_, d)| {
            d.contexts
                .iter()
                .filter(|c| {
                    matches!(c.atoms.first(), Some(crate::stitch::DumpAtom::Remote(ch)) if !ch.is_empty())
                })
                .count()
        })
        .sum();
    let unresolved = stitched.unresolved_edges().len();
    let accounted = stitched.request_edges().len() + unresolved;
    if accounted != remote_contexts {
        out.push(Violation::StitchCompleteness {
            remote_contexts,
            accounted,
        });
    }
    if unresolved > 0 && !ev.degradation_permitted() {
        out.push(Violation::UnresolvedWithoutFault { count: unresolved });
    }

    // 4b. Fault counters vs what the plan permits.
    for (counter, count, permitted) in [
        ("dropped", ev.dropped, ev.drops_permitted),
        ("duplicated", ev.duplicated, ev.dups_permitted),
        ("delayed", ev.delayed, ev.delays_permitted),
    ] {
        if count > 0 && !permitted {
            out.push(Violation::SynopsisAccounting { counter, count });
        }
    }

    // 4c. Federation mass conservation and coverage accounting.
    if let Some(fed) = &ev.federation {
        out.extend(check_federation(fed));
    }

    // 5. Bounded progress.
    match &ev.progress {
        ProgressState::Completed => {}
        ProgressState::Deadlock(d) | ProgressState::Livelock(d) => {
            out.push(Violation::Progress { detail: d.clone() });
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stitch::{DumpAtom, DumpCct, DumpContext, DumpNode};

    fn root(cycles: u64) -> DumpNode {
        DumpNode {
            frame: None,
            parent: None,
            samples: 1,
            cycles,
            calls: 1,
        }
    }

    /// Two healthy stages: stage 0 mints synopsis 7, stage 1 holds a
    /// remote context that chains back to it.
    fn healthy() -> Evidence {
        let minter = StageDump {
            proc: 0,
            stage_name: "front".into(),
            frames: vec!["main".into()],
            contexts: vec![DumpContext {
                atoms: vec![DumpAtom::Frame(0)],
            }],
            ccts: vec![DumpCct {
                ctx: 0,
                nodes: vec![root(100)],
            }],
            synopses: vec![(7, 0)],
            ..StageDump::default()
        };
        let receiver = StageDump {
            proc: 1,
            stage_name: "db".into(),
            frames: vec!["query".into()],
            contexts: vec![DumpContext {
                atoms: vec![DumpAtom::Remote(vec![7]), DumpAtom::Frame(0)],
            }],
            ccts: vec![DumpCct {
                ctx: 0,
                nodes: vec![root(40)],
            }],
            ..StageDump::default()
        };
        Evidence {
            dumps: vec![minter, receiver],
            compute_truth: vec![100, 40],
            ..Evidence::default()
        }
    }

    #[test]
    fn clean_run_has_no_violations() {
        assert_eq!(check_all(&healthy()), vec![]);
    }

    #[test]
    fn mass_divergence_is_flagged_per_stage() {
        let mut ev = healthy();
        ev.compute_truth[1] = 41;
        let v = check_all(&ev);
        assert_eq!(
            v,
            vec![Violation::MassConservation {
                stage: 1,
                profiled: 40,
                truth: 41
            }]
        );
        assert_eq!(v[0].kind(), "mass-conservation");
    }

    #[test]
    fn invalid_dump_is_a_dictionary_violation() {
        let mut ev = healthy();
        ev.dumps[0].ccts[0].ctx = 9; // labels a context the dump lacks
        let v = check_all(&ev);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::ContextDictionary { stage: 0, .. })));
    }

    #[test]
    fn duplicate_minting_is_a_dictionary_violation() {
        let mut ev = healthy();
        ev.dumps[1].synopses.push((7, 0)); // stage 1 re-mints stage 0's raw
        let v = check_all(&ev);
        assert!(v.iter().any(
            |x| matches!(x, Violation::ContextDictionary { stage: 1, detail } if detail.contains("minted by both"))
        ));
    }

    #[test]
    fn unresolved_needs_a_permitting_fault() {
        let mut ev = healthy();
        ev.dumps[1].contexts[0].atoms[0] = DumpAtom::Remote(vec![99]); // nobody minted 99
        let v = check_all(&ev);
        assert_eq!(v, vec![Violation::UnresolvedWithoutFault { count: 1 }]);

        ev.crash_permitted = true;
        assert_eq!(check_all(&ev), vec![]);
        ev.crash_permitted = false;
        ev.drops_permitted = true;
        assert_eq!(check_all(&ev), vec![]);
    }

    #[test]
    fn counters_require_permission() {
        let mut ev = healthy();
        ev.dropped = 3;
        ev.duplicated = 1;
        ev.delayed = 2;
        let kinds: Vec<_> = check_all(&ev).iter().map(|v| v.to_string()).collect();
        assert_eq!(kinds.len(), 3, "{kinds:?}");

        ev.drops_permitted = true;
        ev.dups_permitted = true;
        ev.delays_permitted = true;
        assert_eq!(check_all(&ev), vec![]);
    }

    #[test]
    fn deadlock_and_livelock_are_progress_violations() {
        for progress in [
            ProgressState::Deadlock("t0 -> lock1 -> t1 -> lock0 -> t0".into()),
            ProgressState::Livelock("t3 spun 10000 times".into()),
        ] {
            let ev = Evidence {
                progress: progress.clone(),
                ..healthy()
            };
            let v = check_all(&ev);
            assert_eq!(v.len(), 1);
            assert_eq!(v[0].kind(), "progress");
        }
    }

    fn fed_two_leaves() -> FederationEvidence {
        FederationEvidence {
            subtrees: vec![
                SubtreeMass {
                    label: "leaf0".into(),
                    delivered: 600,
                    truth: 600,
                    degraded: false,
                },
                SubtreeMass {
                    label: "leaf1".into(),
                    delivered: 400,
                    truth: 400,
                    degraded: false,
                },
            ],
            root_mass: 1000,
            reported_coverage_ppm: 1_000_000,
        }
    }

    #[test]
    fn clean_federation_conserves_mass() {
        assert_eq!(check_federation(&fed_two_leaves()), vec![]);
        let ev = Evidence {
            federation: Some(fed_two_leaves()),
            ..healthy()
        };
        assert_eq!(check_all(&ev), vec![]);
    }

    #[test]
    fn non_degraded_subtree_must_deliver_exactly() {
        let mut fed = fed_two_leaves();
        fed.subtrees[1].delivered = 399;
        fed.root_mass = 999;
        fed.reported_coverage_ppm = 999_000;
        let v = check_federation(&fed);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind(), "federation-mass");
        assert!(v[0].to_string().contains("leaf1"));
    }

    #[test]
    fn degraded_subtree_may_lose_but_not_invent_mass() {
        let mut fed = fed_two_leaves();
        fed.subtrees[1].degraded = true;
        fed.subtrees[1].delivered = 250;
        fed.root_mass = 850;
        fed.reported_coverage_ppm = 850_000;
        assert_eq!(check_federation(&fed), vec![]);

        fed.subtrees[1].delivered = 401; // more than it ever ingested
        fed.root_mass = 1001;
        fed.reported_coverage_ppm = 1_001_000;
        let v = check_federation(&fed);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::FederationMass { subtree, .. } if subtree == "leaf1")));
    }

    #[test]
    fn root_mass_must_equal_subtree_sum() {
        let mut fed = fed_two_leaves();
        fed.root_mass = 990; // root lost mass nobody accounted for
        let v = check_federation(&fed);
        assert_eq!(
            v,
            vec![Violation::FederationMass {
                subtree: "root".into(),
                delivered: 990,
                truth: 1000,
            }]
        );
    }

    #[test]
    fn misreported_coverage_is_flagged() {
        let mut fed = fed_two_leaves();
        fed.subtrees[0].degraded = true;
        fed.subtrees[0].delivered = 300;
        fed.root_mass = 700;
        fed.reported_coverage_ppm = 1_000_000; // hides the degradation
        let v = check_federation(&fed);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind(), "federation-coverage");
        assert_eq!(
            v[0],
            Violation::FederationCoverage {
                reported_ppm: 1_000_000,
                actual_ppm: 700_000,
            }
        );
    }

    #[test]
    fn sound_capture_passes_the_false_repro_oracle() {
        let ev = CaptureEvidence {
            dimension: "slo-latency".into(),
            clean_scenario: false,
            original_fingerprint: 0xABCD,
            replay_fingerprint: 0xABCD,
            retripped: true,
        };
        assert_eq!(check_capture(&ev), vec![]);
    }

    #[test]
    fn false_repro_variants_are_flagged() {
        let sound = CaptureEvidence {
            dimension: "slo-latency".into(),
            clean_scenario: false,
            original_fingerprint: 1,
            replay_fingerprint: 1,
            retripped: true,
        };
        let clean_trip = CaptureEvidence {
            clean_scenario: true,
            ..sound.clone()
        };
        let v = check_capture(&clean_trip);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind(), "false-repro");
        assert!(v[0].to_string().contains("clean scenario"));

        let diverged = CaptureEvidence {
            replay_fingerprint: 2,
            ..sound.clone()
        };
        assert!(check_capture(&diverged)[0]
            .to_string()
            .contains("fingerprint"));

        let no_retrip = CaptureEvidence {
            retripped: false,
            ..sound
        };
        assert!(check_capture(&no_retrip)[0]
            .to_string()
            .contains("re-trip"));
    }

    fn honest_score(asserted: u64, truth: u64, correct: u64) -> InferenceScore {
        let p = ppm(correct, asserted);
        let r = ppm(correct, truth);
        InferenceScore {
            asserted,
            truth,
            correct,
            reported_precision_ppm: p,
            reported_recall_ppm: r,
            reported_f1_ppm: f1_ppm(p, r),
        }
    }

    #[test]
    fn honest_inference_scores_pass() {
        let ev = InferenceEvidence {
            pairs: honest_score(90, 100, 85),
            origins: honest_score(80, 100, 70),
        };
        assert_eq!(check_inference(&ev), vec![]);
        // Degenerate but honest: nothing asserted, nothing true.
        let ev = InferenceEvidence {
            pairs: honest_score(0, 0, 0),
            origins: honest_score(0, 50, 0),
        };
        assert_eq!(check_inference(&ev), vec![]);
    }

    #[test]
    fn inferred_mass_may_not_exceed_truth() {
        let mut ev = InferenceEvidence {
            pairs: honest_score(90, 100, 85),
            origins: honest_score(80, 100, 70),
        };
        ev.pairs.truth = 80; // claims 85 correct out of 80 true items
        ev.pairs.reported_recall_ppm = ppm(85, 80);
        ev.pairs.reported_f1_ppm = f1_ppm(ev.pairs.reported_precision_ppm, ev.pairs.reported_recall_ppm);
        let v = check_inference(&ev);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind(), "inference-accounting");
        assert!(v[0].to_string().contains("exceeds ground truth"));
    }

    #[test]
    fn fabricated_rates_are_flagged() {
        let mut ev = InferenceEvidence {
            pairs: honest_score(90, 100, 85),
            origins: honest_score(80, 100, 70),
        };
        ev.origins.reported_f1_ppm += 10_000; // rounded itself up
        let v = check_inference(&ev);
        assert_eq!(v.len(), 1);
        assert!(v[0].to_string().contains("reported f1"));
        assert!(v[0].to_string().contains("[origins]"));
    }

    #[test]
    fn empty_chain_remote_is_ignored_not_lost() {
        // A Remote([]) context can't resolve anywhere; the completeness
        // oracle must not count it as a vanished edge.
        let mut ev = healthy();
        ev.dumps[1].contexts[0].atoms[0] = DumpAtom::Remote(vec![]);
        assert_eq!(check_all(&ev), vec![]);
    }
}
