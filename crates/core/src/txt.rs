//! Fixed-buffer decimal formatting for the hot serialization paths.
//!
//! The dump serializer and report renderers emit millions of small
//! integers; routing each through `format!`/`to_string` allocates a
//! fresh `String` per number. These helpers render into a stack buffer
//! and append to the caller's output buffer instead, so a whole dump
//! serializes with no per-field allocation. Output bytes are identical
//! to `Display` for the same value.

/// Longest decimal rendering of a `u64` (`u64::MAX` has 20 digits).
const MAX_DIGITS: usize = 20;

/// Appends the decimal rendering of `v` to `out` without allocating.
pub fn push_u64(out: &mut String, v: u64) {
    let mut buf = [0u8; MAX_DIGITS];
    let mut pos = MAX_DIGITS;
    let mut v = v;
    loop {
        pos -= 1;
        buf[pos] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    // The buffer holds only ASCII digits.
    out.push_str(std::str::from_utf8(&buf[pos..]).unwrap());
}

/// Appends the decimal rendering of a `u32`.
pub fn push_u32(out: &mut String, v: u32) {
    push_u64(out, u64::from(v));
}

/// Appends the decimal rendering of a `usize`.
pub fn push_usize(out: &mut String, v: usize) {
    push_u64(out, v as u64);
}

/// Appends the decimal rendering of an `i64` (sign-aware).
pub fn push_i64(out: &mut String, v: i64) {
    if v < 0 {
        out.push('-');
        push_u64(out, v.unsigned_abs());
    } else {
        push_u64(out, v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_display_on_edges_and_samples() {
        let cases = [
            0u64,
            1,
            9,
            10,
            99,
            100,
            12_345,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ];
        for v in cases {
            let mut s = String::new();
            push_u64(&mut s, v);
            assert_eq!(s, v.to_string());
        }
    }

    #[test]
    fn signed_matches_display() {
        for v in [i64::MIN, -1, 0, 1, i64::MAX, -42] {
            let mut s = String::new();
            push_i64(&mut s, v);
            assert_eq!(s, v.to_string());
        }
    }

    #[test]
    fn appends_without_clearing() {
        let mut s = String::from("x=");
        push_u32(&mut s, 7);
        s.push(',');
        push_usize(&mut s, 321);
        assert_eq!(s, "x=7,321");
    }
}
