//! Transaction-context synopses (§5, §7.4).
//!
//! A *synopsis* is a compact, unique, 4-byte representation of a
//! transaction context. When a stage sends a message, it piggybacks the
//! synopsis of its current transaction context instead of the full
//! context, which keeps the communication overhead small (the paper
//! measures ≈1% on TPC-W). A response carries a `#`-delimited chain
//! `synopsis(α)#synopsis(β)` whose prefix lets the original caller
//! recognize its own context and switch back to the right CCT.

use crate::context::CtxId;
use std::collections::HashMap;
use std::fmt;

/// A synopsis of a transaction context.
///
/// The bits above 24 carry the generating process id and the low 24
/// bits a per-process counter, so synopses from different stages never
/// collide. The paper only requires that each stage can recognize the
/// synopses it generated itself; embedding the process id is the
/// simplest collision avoidance.
///
/// The raw value is held in a `u64` so synthetic fleet replication
/// (thousands of process-remapped replicas) stays collision-free, but
/// the packing formula is unchanged: for the paper's real deployments
/// (process ids below 256) the numeric value is exactly the classic
/// 4-byte `(proc << 24) | counter` word, which is why
/// [`Synopsis::WIRE_BYTES`] still models the paper's 4-byte overhead.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Synopsis(pub u64);

impl Synopsis {
    /// Builds a synopsis from a process id and a local counter.
    ///
    /// # Panics
    ///
    /// Panics if `counter` does not fit in 24 bits.
    pub fn new(proc_id: u32, counter: u32) -> Self {
        assert!(counter < 0x0100_0000, "synopsis counter overflow");
        Synopsis(((proc_id as u64) << 24) | counter as u64)
    }

    /// The process id embedded in this synopsis.
    pub fn proc_id(self) -> u32 {
        (self.0 >> 24) as u32
    }

    /// The per-process counter embedded in this synopsis.
    pub fn counter(self) -> u32 {
        (self.0 & 0x00ff_ffff) as u32
    }

    /// Wire size of one synopsis in bytes — the paper's 4-byte budget.
    /// Process ids beyond the 8-bit field only arise from synthetic
    /// fleet replication, never on a modelled wire.
    pub const WIRE_BYTES: u64 = 4;
}

impl fmt::Display for Synopsis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}:{}", self.proc_id(), self.counter())
    }
}

/// A `#`-delimited chain of synopses as carried on the wire.
///
/// A request carries a single-element chain `[synopsis(α)]`; the
/// response carries `[synopsis(α), synopsis(β)]`, i.e.
/// `synopsis(α)#synopsis(β)` in the paper's notation. Nothing limits a
/// chain to two elements: a response that itself flowed through further
/// stages keeps growing its suffix.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct SynChain(pub Vec<Synopsis>);

impl SynChain {
    /// A chain holding a single synopsis (a request).
    pub fn request(s: Synopsis) -> Self {
        SynChain(vec![s])
    }

    /// Builds the response chain `prefix#suffix` (§7.4).
    pub fn response(prefix: &SynChain, suffix: Synopsis) -> Self {
        let mut v = prefix.0.clone();
        v.push(suffix);
        SynChain(v)
    }

    /// The first synopsis in the chain, if any.
    pub fn head(&self) -> Option<Synopsis> {
        self.0.first().copied()
    }

    /// Number of synopses in the chain.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Bytes this chain occupies on the wire: 4 bytes per synopsis plus
    /// one delimiter byte between consecutive synopses.
    pub fn wire_bytes(&self) -> u64 {
        if self.0.is_empty() {
            0
        } else {
            self.0.len() as u64 * Synopsis::WIRE_BYTES + (self.0.len() as u64 - 1)
        }
    }
}

impl fmt::Display for SynChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "#")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// Per-process dictionary between transaction contexts and synopses.
///
/// The paper keeps "transaction contexts and their synopses in a
/// dictionary" (§7.4). The table maps both directions: contexts to the
/// synopsis minted for them, and received synopses back to the contexts
/// they labelled.
#[derive(Debug)]
pub struct SynopsisTable {
    proc_id: u32,
    next: u32,
    by_ctx: HashMap<CtxId, Synopsis>,
    by_syn: HashMap<Synopsis, CtxId>,
}

impl SynopsisTable {
    /// Creates a table for the given process.
    pub fn new(proc_id: impl ProcIdLike) -> Self {
        SynopsisTable {
            proc_id: proc_id.raw(),
            next: 0,
            by_ctx: HashMap::new(),
            by_syn: HashMap::new(),
        }
    }

    /// Returns the synopsis for `ctx`, minting one on first use.
    pub fn synopsis_of(&mut self, ctx: CtxId) -> Synopsis {
        if let Some(&s) = self.by_ctx.get(&ctx) {
            return s;
        }
        let s = Synopsis::new(self.proc_id, self.next);
        self.next += 1;
        self.by_ctx.insert(ctx, s);
        self.by_syn.insert(s, ctx);
        s
    }

    /// Batched form of [`SynopsisTable::synopsis_of`]: mints (or looks
    /// up) synopses for a whole slice of contexts in one pass.
    ///
    /// The result is element-wise identical to calling `synopsis_of`
    /// once per context in slice order — the property suite holds the
    /// two paths to byte equality — but reserves the dictionary space
    /// up front and touches each map once, which is what the analysis
    /// pipeline wants when a stage floods many contexts at a dump or
    /// propagation barrier.
    pub fn mint_batch(&mut self, ctxs: &[CtxId]) -> Vec<Synopsis> {
        // Worst case every context is new; duplicate reservations are
        // harmless.
        self.by_ctx.reserve(ctxs.len());
        self.by_syn.reserve(ctxs.len());
        ctxs.iter().map(|&c| self.synopsis_of(c)).collect()
    }

    /// Looks up the synopsis already minted for `ctx`, if any.
    pub fn get(&self, ctx: CtxId) -> Option<Synopsis> {
        self.by_ctx.get(&ctx).copied()
    }

    /// All minted `(raw synopsis, context)` pairs, sorted by context id
    /// — the canonical dump order shared by the serial and sharded
    /// analysis paths.
    pub fn minted_sorted(&self) -> Vec<(u64, CtxId)> {
        let mut v: Vec<_> = self.by_ctx.iter().map(|(&c, &s)| (s.0, c)).collect();
        v.sort_by_key(|&(_, c)| c);
        v
    }

    /// Looks up the context a synopsis was minted for, if it is ours.
    pub fn ctx_of(&self, s: Synopsis) -> Option<CtxId> {
        if s.proc_id() != self.proc_id {
            return None;
        }
        self.by_syn.get(&s).copied()
    }

    /// Whether this table minted `s`.
    pub fn is_mine(&self, s: Synopsis) -> bool {
        s.proc_id() == self.proc_id && self.by_syn.contains_key(&s)
    }

    /// Number of synopses minted so far.
    pub fn len(&self) -> usize {
        self.by_syn.len()
    }

    /// Whether no synopsis has been minted yet.
    pub fn is_empty(&self) -> bool {
        self.by_syn.is_empty()
    }
}

/// Anything that can act as a process id for synopsis minting.
///
/// This avoids a hard dependency cycle between [`crate::ids`] and this
/// module while still accepting [`crate::ids::ProcId`] directly.
pub trait ProcIdLike {
    /// The raw process number.
    fn raw(&self) -> u32;
}

impl ProcIdLike for crate::ids::ProcId {
    fn raw(&self) -> u32 {
        self.0
    }
}

impl ProcIdLike for u32 {
    fn raw(&self) -> u32 {
        *self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synopsis_packs_proc_and_counter() {
        let s = Synopsis::new(3, 77);
        assert_eq!(s.proc_id(), 3);
        assert_eq!(s.counter(), 77);
        assert_eq!(s.to_string(), "s3:77");
    }

    #[test]
    #[should_panic(expected = "counter overflow")]
    fn synopsis_counter_overflow_panics() {
        let _ = Synopsis::new(0, 0x0100_0000);
    }

    #[test]
    fn minting_is_stable() {
        let mut t = SynopsisTable::new(1u32);
        let c = CtxId(4);
        let a = t.synopsis_of(c);
        let b = t.synopsis_of(c);
        assert_eq!(a, b);
        assert_eq!(t.ctx_of(a), Some(c));
        assert!(t.is_mine(a));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn foreign_synopses_are_not_mine() {
        let mut t1 = SynopsisTable::new(1u32);
        let t2 = SynopsisTable::new(2u32);
        let s = t1.synopsis_of(CtxId(0));
        assert!(!t2.is_mine(s));
        assert_eq!(t2.ctx_of(s), None);
    }

    #[test]
    fn mint_batch_matches_one_at_a_time() {
        let ctxs: Vec<CtxId> = [4u32, 9, 4, 0, 2, 9, 7].iter().map(|&c| CtxId(c)).collect();
        let mut batched = SynopsisTable::new(3u32);
        let mut singles = SynopsisTable::new(3u32);
        let got = batched.mint_batch(&ctxs);
        let want: Vec<Synopsis> = ctxs.iter().map(|&c| singles.synopsis_of(c)).collect();
        assert_eq!(got, want);
        assert_eq!(batched.minted_sorted(), singles.minted_sorted());
    }

    #[test]
    fn minted_sorted_is_in_ctx_order() {
        let mut t = SynopsisTable::new(1u32);
        t.synopsis_of(CtxId(5));
        t.synopsis_of(CtxId(1));
        t.synopsis_of(CtxId(3));
        let pairs = t.minted_sorted();
        let ctxs: Vec<u32> = pairs.iter().map(|&(_, c)| c.0).collect();
        assert_eq!(ctxs, vec![1, 3, 5]);
    }

    #[test]
    fn chain_wire_bytes_counts_delimiters() {
        let a = Synopsis::new(0, 1);
        let b = Synopsis::new(1, 2);
        let req = SynChain::request(a);
        assert_eq!(req.wire_bytes(), 4);
        let resp = SynChain::response(&req, b);
        assert_eq!(resp.wire_bytes(), 9); // 4 + '#' + 4.
        assert_eq!(resp.to_string(), "s0:1#s1:2");
        assert_eq!(resp.head(), Some(a));
    }

    #[test]
    fn empty_chain_has_no_wire_bytes() {
        assert_eq!(SynChain::default().wire_bytes(), 0);
        assert!(SynChain::default().is_empty());
    }
}
