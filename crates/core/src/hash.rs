//! The one FNV-1a 64-bit hash used everywhere a stable fingerprint is
//! needed.
//!
//! Several subsystems need a hash that is a pure function of the bytes
//! fed to it — never of interning order, table state, or the std
//! `Hasher` (whose keys are unspecified across releases): context
//! value sharding, pipeline shard routing, report fingerprints, chaos
//! scenario fingerprints, and streaming delta checksums. They all
//! share this implementation so the constants and byte order cannot
//! drift apart between call sites.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher.
///
/// The digest is defined purely by the concatenation of the byte
/// streams passed to [`Fnv64::write`]; `write_u64` is shorthand for
/// writing the value's little-endian bytes.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A hasher seeded with the standard offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Folds `bytes` into the digest.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds the little-endian bytes of `v` into the digest.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a 64 over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }

    #[test]
    fn write_u64_is_le_bytes() {
        let mut a = Fnv64::new();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = Fnv64::new();
        b.write(&[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(a.finish(), b.finish());
    }
}
