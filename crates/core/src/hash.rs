//! The one FNV-1a 64-bit hash used everywhere a stable fingerprint is
//! needed.
//!
//! Several subsystems need a hash that is a pure function of the bytes
//! fed to it — never of interning order, table state, or the std
//! `Hasher` (whose keys are unspecified across releases): context
//! value sharding, pipeline shard routing, report fingerprints, chaos
//! scenario fingerprints, and streaming delta checksums. They all
//! share this implementation so the constants and byte order cannot
//! drift apart between call sites.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher.
///
/// The digest is defined purely by the concatenation of the byte
/// streams passed to [`Fnv64::write`]; `write_u64` is shorthand for
/// writing the value's little-endian bytes.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A hasher seeded with the standard offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Folds `bytes` into the digest.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds the little-endian bytes of `v` into the digest.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a 64 over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// Incremental FNV-1a over 64-bit lanes.
///
/// Same xor-and-multiply round as [`Fnv64`], but one round per `u64`
/// word instead of one per byte — an 8× shorter multiply chain for
/// word-structured inputs (the streaming delta checksums feed tens of
/// words per event). The digest is a pure function of the word
/// sequence; it is **not** byte-compatible with [`Fnv64`], so the two
/// must never be mixed on one value.
#[derive(Clone, Copy, Debug)]
pub struct FnvLanes(u64);

impl FnvLanes {
    /// A hasher seeded with the standard offset basis.
    pub fn new() -> Self {
        FnvLanes(FNV_OFFSET)
    }

    /// Folds one 64-bit lane into the digest.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(FNV_PRIME);
    }

    /// Folds `bytes` as little-endian lanes, the tail zero-padded.
    /// Length is the caller's to encode if it matters (trailing zero
    /// bytes are not distinguished from padding).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.write_u64(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.write_u64(u64::from_le_bytes(tail));
        }
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for FnvLanes {
    fn default() -> Self {
        Self::new()
    }
}

/// [`std::hash::Hasher`] adapter over [`Fnv64`], for `HashMap`s on hot
/// paths where SipHash dominates the lookup (small integer or short
/// string keys). The table stays ordinary `std` — only the hash
/// function changes — so this must not be used where hash *iteration
/// order* could leak into output (all Whodunit outputs sort first).
#[derive(Clone, Copy, Debug, Default)]
pub struct FnvHasher(Fnv64);

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0.finish()
    }
    fn write(&mut self, bytes: &[u8]) {
        self.0.write(bytes);
    }
    fn write_u32(&mut self, v: u32) {
        // One lane round beats four byte rounds for the common int keys.
        let h = self.0.finish();
        self.0 = Fnv64((h ^ u64::from(v)).wrapping_mul(FNV_PRIME));
    }
    fn write_u64(&mut self, v: u64) {
        let h = self.0.finish();
        self.0 = Fnv64((h ^ v).wrapping_mul(FNV_PRIME));
    }
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `BuildHasher` for [`FnvHasher`].
#[derive(Clone, Copy, Debug, Default)]
pub struct FnvBuild;

impl std::hash::BuildHasher for FnvBuild {
    type Hasher = FnvHasher;
    fn build_hasher(&self) -> FnvHasher {
        FnvHasher::default()
    }
}

/// A `HashMap` hashed with FNV-1a instead of SipHash.
pub type FnvHashMap<K, V> = std::collections::HashMap<K, V, FnvBuild>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }

    #[test]
    fn write_u64_is_le_bytes() {
        let mut a = Fnv64::new();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = Fnv64::new();
        b.write(&[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(a.finish(), b.finish());
    }
}
