//! Whodunit core: transactional profiling for multi-tier applications.
//!
//! This crate implements the primary contribution of *Whodunit:
//! Transactional Profiling for Multi-Tier Applications* (Chanda, Cox,
//! Zwaenepoel — EuroSys 2007):
//!
//! - **Transaction contexts** ([`context`]): the concatenated execution
//!   path of a request through the stages of a multi-tier application,
//!   with the paper's collapse and loop-pruning rules (§2, §4.1).
//! - **Calling Context Trees** ([`cct`]): the per-context call-path
//!   profile store, following csprof/Ammons et al. (§7.1).
//! - **Shared-memory transaction-flow detection** ([`shm`]): the §3
//!   algorithm over `MOV`/non-`MOV` operations in critical sections,
//!   including the invalid-context rule, lock-tag flushing, and the
//!   producer/consumer-list exclusion of allocator-like patterns.
//! - **Event and SEDA stage tracking** ([`events`], [`seda`]): the §4
//!   continuation / stage-queue context propagation.
//! - **Message-passing propagation** ([`synopsis`], [`ipc`]): 4-byte
//!   transaction-context synopses, `#`-delimited chains, and
//!   caller-prefix response detection (§5, §7.4).
//! - **Transaction crosstalk** ([`crosstalk`]): lock-wait attribution
//!   between concurrent transactions (§6, §7.5).
//! - **The Whodunit runtime** ([`profiler`]): ties everything together
//!   behind the [`rt::Runtime`] hook interface that execution substrates
//!   (the discrete-event simulator, the instruction emulator) drive.
//! - **Post-mortem stitching** ([`stitch`]): joining per-stage profiles
//!   into one end-to-end transactional profile (§5, Figure 7).
//! - **Black-box communication logs** ([`blackbox`]): the passive
//!   send/recv trace + ground truth that the `whodunit-infer` crate
//!   scores its synopsis-free inference against, and the
//!   [`blackbox::TierVisibility`] knob for hybrid deployments.
//! - **Invariant oracles** ([`oracle`]): the properties a transactional
//!   profile must uphold under any fault plan and schedule — mass
//!   conservation, dictionary consistency, stitch completeness, fault
//!   accounting, bounded progress — checked after every chaos run.
//! - **Chaos repro files** ([`repro`]): self-contained serialized
//!   scenarios (seed + schedule policy + fault plan + workload) that
//!   re-execute a failing run bit-identically.
//!
//! The crate is substrate-agnostic: it never performs I/O or spawns
//! threads; it only reacts to hook invocations and hands back overhead
//! costs expressed in CPU cycles so the substrate can charge them.

#![warn(missing_docs)]

pub mod blackbox;
pub mod cct;
pub mod context;
pub mod cost;
pub mod crosstalk;
pub mod delta;
pub mod dumpjson;
pub mod events;
pub mod exec;
pub mod frame;
pub mod hash;
pub mod ids;
pub mod ipc;
pub mod oracle;
pub mod pipeline;
pub mod profiler;
pub mod repro;
pub mod rt;
pub mod seda;
pub mod shm;
pub mod sketch;
pub mod stitch;
pub mod summary;
pub mod synopsis;
pub mod txt;
pub mod wire;

pub use blackbox::{CommEvent, CommEventId, CommKind, CommLog, CommRecorder, CommTag, CommTruth, TierVisibility};
pub use cct::{Cct, CctNodeId, Metrics};
pub use context::{
    ContextAtom, ContextPolicy, ContextShard, ContextTable, CtxId, ShardedContextTable,
    ShardedCtxId, TransactionContext,
};
pub use crosstalk::{CrosstalkMatrix, CrosstalkRecorder, CrosstalkReport, OriginKey, WaitStats};
pub use delta::{
    diff_dump, DeltaSink, EpochBatch, RecordedResync, ResyncSource, StageAccumulator, StageDelta,
    StreamHeader,
};
pub use exec::{RunStats, ShardPanic, StealPlan};
pub use frame::{FrameId, FrameKind, FrameTable, SharedFrameTable};
pub use hash::{fnv1a, Fnv64};
pub use ids::{ChanId, LockId, LockMode, ProcId, ThreadId};
pub use oracle::{
    check_all, check_capture, check_inference, CaptureEvidence, Evidence, InferenceEvidence,
    InferenceScore, ProgressState, Violation,
};
pub use pipeline::{
    analyze, analyze_with, replicate_fleet, OriginProfile, PhaseTiming, PipelineConfig,
    PipelineReport,
};
pub use profiler::{Whodunit, WhodunitConfig};
pub use repro::{
    repro_from_json, repro_from_wire, repro_to_json, repro_to_wire, ChaosRepro, FaultEntry,
    ReproWindow,
};
pub use rt::{NullRuntime, Runtime};
pub use shm::{FlowDetector, FlowEvent, Loc, MemEvent};
pub use sketch::QuantileSketch;
pub use summary::{merge_stage_delta, seal_delta, LeafGauges, SummaryFrame, TierSketch};
pub use synopsis::{SynChain, Synopsis, SynopsisTable};
pub use wire::{
    apply_batch, batch_to_json, decode_batch, decode_header, decode_summary, encode_batch,
    encode_header, encode_summary, summary_to_json, WireBatchInfo, WireError, WIRE_VERSION,
};
