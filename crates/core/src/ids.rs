//! Shared identifier vocabulary.
//!
//! These newtypes are the common language spoken between the profiling
//! runtimes in this crate and the execution substrates that drive them
//! (the discrete-event simulator in `whodunit-sim`, the instruction
//! emulator in `whodunit-vm`). Keeping them here lets every crate agree
//! on what a thread, lock, or channel *is* without depending on a
//! particular substrate.

use std::fmt;

/// A simulated thread, unique across the whole simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ThreadId(pub u32);

/// A simulated process (an application *stage* boundary for profiling).
///
/// Each process has its own profiling runtime, mirroring the paper's
/// per-process preloaded Whodunit library (§7.1). Transaction contexts
/// cross process boundaries only via message synopses (§5).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcId(pub u32);

/// A lock object (mutex or reader-writer lock), unique per simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LockId(pub u32);

/// A communication channel (socket or pipe) between two processes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ChanId(pub u32);

/// The mode in which a lock is requested (§6).
///
/// Shared acquisitions coexist; an exclusive acquisition excludes all
/// others. Plain mutexes always use [`LockMode::Exclusive`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LockMode {
    /// Reader (shared) access.
    Shared,
    /// Writer (exclusive) access.
    Exclusive,
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lock{}", self.0)
    }
}

impl fmt::Display for ChanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chan{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(ThreadId(3).to_string(), "t3");
        assert_eq!(ProcId(1).to_string(), "p1");
        assert_eq!(LockId(9).to_string(), "lock9");
        assert_eq!(ChanId(0).to_string(), "chan0");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(LockId(1));
        set.insert(LockId(1));
        set.insert(LockId(2));
        assert_eq!(set.len(), 2);
        assert!(ThreadId(1) < ThreadId(2));
    }
}
