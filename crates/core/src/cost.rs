//! Profiling overhead cost model.
//!
//! The paper measures Whodunit's overhead on real hardware (§9): csprof
//! ≈3% on TPC-W, gprof ≈24%, Whodunit ≈csprof + <0.1%, plus ≈1%
//! communication overhead from synopsis piggybacking. In this
//! reproduction all execution happens in virtual time, so overhead is
//! *modelled*: every hook returns the cycles its bookkeeping costs and
//! the substrate charges them to the executing thread. The constants
//! below are calibrated so the Table 2 regimes reproduce: a per-call
//! cost that scales with call counts (gprof) versus a per-sample cost
//! that stays flat (csprof/Whodunit).

/// Cycles-per-second of the simulated CPUs.
///
/// The paper's machines are 2.4 GHz Pentium Xeons.
pub const CPU_HZ: u64 = 2_400_000_000;

/// The paper's sampling frequency: gprof's default 666 samples/second,
/// used for csprof and Whodunit alike (§9.1).
pub const SAMPLE_HZ: u64 = 666;

/// Overhead constants for a profiling runtime.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Cycles between statistical samples.
    pub sample_period: u64,
    /// Cycles charged per sample taken (stack unwind + CCT walk).
    pub per_sample_cycles: u64,
    /// Cycles charged per procedure entry (gprof-style mcount
    /// instrumentation; zero for sampling profilers).
    pub per_call_cycles: u64,
    /// Cycles charged per message send (synopsis mint + dictionary).
    pub per_send_cycles: u64,
    /// Cycles charged per message receive (chain scan + CCT switch).
    pub per_recv_cycles: u64,
    /// Cycles charged per lock acquire/release pair (crosstalk
    /// dictionary update).
    pub per_lock_cycles: u64,
}

impl CostModel {
    /// No profiling: everything free.
    pub fn free() -> Self {
        CostModel {
            sample_period: u64::MAX,
            per_sample_cycles: 0,
            per_call_cycles: 0,
            per_send_cycles: 0,
            per_recv_cycles: 0,
            per_lock_cycles: 0,
        }
    }

    /// csprof-like sampling cost at the paper's 666 Hz.
    ///
    /// The per-sample cost is calibrated so a CPU-saturated stage loses
    /// ≈3% of its cycles to sampling, matching Table 2's csprof row
    /// (1184 → 1151 tx/min).
    pub fn csprof() -> Self {
        CostModel {
            sample_period: CPU_HZ / SAMPLE_HZ,
            per_sample_cycles: 100_000,
            per_call_cycles: 0,
            per_send_cycles: 0,
            per_recv_cycles: 0,
            per_lock_cycles: 0,
        }
    }

    /// Whodunit: csprof plus transaction-context bookkeeping.
    ///
    /// The paper measures the addition at "less than 0.1%" (§9.1); the
    /// per-send/recv/lock costs here are small compared to the
    /// per-sample cost.
    pub fn whodunit() -> Self {
        CostModel {
            per_send_cycles: 900,
            per_recv_cycles: 900,
            per_lock_cycles: 250,
            ..Self::csprof()
        }
    }

    /// gprof: per-call mcount instrumentation plus the same sampling.
    ///
    /// Calibrated so call-dense workloads lose ≈24% (Table 2's
    /// 1184 → 898 tx/min).
    pub fn gprof() -> Self {
        CostModel {
            per_call_cycles: 180,
            ..Self::csprof()
        }
    }

    /// How many samples fall in a compute burst of `cycles`, tracked
    /// with a running accumulator `acc` (updated in place).
    ///
    /// This is the deterministic "analytic" sampling used by default:
    /// exactly one sample per full period of accumulated execution.
    pub fn samples_in(&self, acc: &mut u64, cycles: u64) -> u64 {
        if self.sample_period == u64::MAX {
            return 0;
        }
        *acc += cycles;
        let n = *acc / self.sample_period;
        *acc %= self.sample_period;
        n
    }
}

/// How statistical samples are placed in virtual time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sampling {
    /// Deterministic: exactly one sample per period of accumulated
    /// execution (the default; expectation-exact and reproducible).
    Analytic,
    /// Pseudo-random exponential inter-sample gaps with the given seed
    /// (how a real timer-driven sampler behaves; still deterministic
    /// for a fixed seed).
    Stochastic(u64),
}

/// Per-thread sampling state for either [`Sampling`] mode.
#[derive(Clone, Debug)]
pub struct SampleClock {
    /// Cycles until the next sample fires.
    until_next: u64,
    rng: Option<u64>,
    period: u64,
}

impl SampleClock {
    /// Creates a clock for one thread.
    pub fn new(mode: Sampling, period: u64, thread_salt: u64) -> Self {
        match mode {
            Sampling::Analytic => SampleClock {
                until_next: period,
                rng: None,
                period,
            },
            Sampling::Stochastic(seed) => {
                let mut c = SampleClock {
                    until_next: 0,
                    rng: Some(seed ^ thread_salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1),
                    period,
                };
                c.until_next = c.draw_gap();
                c
            }
        }
    }

    /// xorshift64* step.
    fn next_u64(&mut self) -> u64 {
        let r = self.rng.as_mut().expect("stochastic clock");
        let mut x = *r;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *r = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Exponential gap with mean `period`.
    fn draw_gap(&mut self) -> u64 {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let u = u.max(1e-12);
        ((-u.ln()) * self.period as f64) as u64 + 1
    }

    /// Number of samples falling in a burst of `cycles`.
    pub fn samples_in(&mut self, mut cycles: u64) -> u64 {
        if self.period == u64::MAX {
            return 0;
        }
        let mut n = 0;
        while cycles >= self.until_next {
            cycles -= self.until_next;
            n += 1;
            self.until_next = if self.rng.is_some() {
                self.draw_gap()
            } else {
                self.period
            };
        }
        self.until_next -= cycles;
        n
    }
}

/// Converts cycles to milliseconds at [`CPU_HZ`].
pub fn cycles_to_ms(cycles: u64) -> f64 {
    cycles as f64 * 1e3 / CPU_HZ as f64
}

/// Converts cycles to seconds at [`CPU_HZ`].
pub fn cycles_to_secs(cycles: u64) -> f64 {
    cycles as f64 / CPU_HZ as f64
}

/// Converts milliseconds to cycles at [`CPU_HZ`].
pub fn ms_to_cycles(ms: f64) -> u64 {
    (ms * CPU_HZ as f64 / 1e3) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_model_never_samples() {
        let m = CostModel::free();
        let mut acc = 0;
        assert_eq!(m.samples_in(&mut acc, u64::MAX / 2), 0);
    }

    #[test]
    fn analytic_sampling_is_exact_over_many_bursts() {
        let m = CostModel::csprof();
        let mut acc = 0;
        let mut total = 0;
        // 1000 bursts of 1/3 period each → exactly 333 samples.
        let burst = m.sample_period / 3;
        for _ in 0..1000 {
            total += m.samples_in(&mut acc, burst);
        }
        assert_eq!(total, 1000 * burst / m.sample_period);
    }

    #[test]
    fn sample_period_matches_frequency() {
        let m = CostModel::csprof();
        assert_eq!(m.sample_period, CPU_HZ / SAMPLE_HZ);
    }

    #[test]
    fn analytic_clock_matches_accumulator() {
        let m = CostModel::csprof();
        let mut clock = SampleClock::new(Sampling::Analytic, m.sample_period, 0);
        let mut acc = 0;
        let mut a = 0;
        let mut b = 0;
        for i in 0..500u64 {
            let burst = (i * 7919) % (2 * m.sample_period);
            a += m.samples_in(&mut acc, burst);
            b += clock.samples_in(burst);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn stochastic_clock_matches_rate_in_expectation() {
        let period = 1000u64;
        let mut clock = SampleClock::new(Sampling::Stochastic(42), period, 1);
        let mut total = 0u64;
        let bursts = 20_000u64;
        for _ in 0..bursts {
            total += clock.samples_in(700);
        }
        let want = bursts as f64 * 700.0 / period as f64;
        let got = total as f64;
        assert!((got - want).abs() / want < 0.05, "got {got}, want {want}");
    }

    #[test]
    fn stochastic_clock_is_deterministic_per_seed() {
        let mut a = SampleClock::new(Sampling::Stochastic(9), 500, 3);
        let mut b = SampleClock::new(Sampling::Stochastic(9), 500, 3);
        for i in 0..200u64 {
            assert_eq!(a.samples_in(i * 13 % 997), b.samples_in(i * 13 % 997));
        }
    }

    #[test]
    fn unit_conversions_roundtrip() {
        assert!((cycles_to_ms(CPU_HZ) - 1000.0).abs() < 1e-9);
        assert!((cycles_to_secs(CPU_HZ) - 1.0).abs() < 1e-12);
        assert_eq!(ms_to_cycles(1000.0), CPU_HZ);
    }
}
