//! Compacted summary deltas: the wire format between federation
//! levels.
//!
//! A leaf collector ingests per-epoch [`StageDelta`]s from its slice of
//! the fleet and periodically emits one [`SummaryFrame`] — the *merged*
//! increment of everything it absorbed since its previous frame. A
//! regional aggregator folds frames from many leaves into its own
//! pending increment and re-emits coarser frames upstream; the global
//! root applies them through an ordinary
//! [`StageAccumulator`](crate::delta::StageAccumulator), so the
//! composition of every frame reconstructs exactly the cumulative dumps
//! a flat run would have produced — the federation's byte-identity
//! anchor.
//!
//! The algebra that makes this sound is [`merge_stage_delta`]:
//! sequential composition of two same-stage increments. It preserves
//! the accumulator semantics exactly,
//!
//! ```text
//! apply(merge(d1, d2)) == apply(d1); apply(d2)
//! ```
//!
//! and is associative, so any flush cadence at any level composes to
//! the same cumulative state (the property suite pins both laws down).
//! Increments for *different* stages commute trivially — every stage is
//! owned by exactly one leaf, so cross-leaf merge order at a regional
//! can never interleave one stage's deltas.
//!
//! Frames also carry operational freight that does not enter the
//! byte-locked report: mergeable [`QuantileSketch`] digests of
//! per-epoch tier cost (sparse wire form, see
//! [`QuantileSketch::to_wire`]), per-originating-leaf interval profile
//! mass (the root's coverage accounting), and per-leaf lag/health
//! gauges ([`LeafGauges`]) for the topology view.

use crate::delta::{CctDelta, StageDelta};
use crate::hash::FnvLanes;
use crate::sketch::QuantileSketch;
use std::collections::BTreeMap;
use std::fmt;

/// Why two stage deltas could not be merged.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MergeError {
    /// Stage index of the offending pair.
    pub stage: usize,
    /// What was inconsistent.
    pub what: &'static str,
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stage {}: cannot merge deltas: {}", self.stage, self.what)
    }
}

/// An empty increment for `stage` (seq 0, checksum unset). The identity
/// of [`merge_stage_delta`]: merging any delta into it yields that
/// delta's content.
pub fn empty_delta(stage: usize) -> StageDelta {
    StageDelta {
        stage,
        seq: 0,
        new_frames: Vec::new(),
        new_contexts: Vec::new(),
        new_synopses: Vec::new(),
        ccts: Vec::new(),
        pairs: Vec::new(),
        waiters: Vec::new(),
        piggyback_bytes: 0,
        messages: 0,
        checksum: 0,
    }
}

/// Sequentially composes `next` into `acc` (both increments of the
/// same stage, `next` covering the interval immediately after `acc`),
/// so that applying the merged delta equals applying `acc` then `next`.
///
/// Intern-table tails and synopsis mints concatenate; crosstalk
/// increments sum by key; CCT increments compose per context — `next`'s
/// growth of nodes `acc` itself appended folds into those appended
/// nodes, growth of older nodes sums into `acc`'s growth list. The
/// composition is checked (`next`'s per-context baseline must equal
/// `acc`'s baseline plus its appended nodes), so frames assembled from
/// a damaged stream fail loudly here instead of corrupting an upstream
/// accumulator.
///
/// `acc`'s `stage` and `seq` are preserved and its `checksum` is left
/// **unset** (zero): the emitter stamps the outgoing sequence number
/// and recomputes the checksum once per frame (see
/// [`seal_delta`]), not once per merged epoch.
pub fn merge_stage_delta(acc: &mut StageDelta, next: &StageDelta) -> Result<(), MergeError> {
    if next.stage != acc.stage {
        return Err(MergeError {
            stage: acc.stage,
            what: "stage index mismatch",
        });
    }
    // Validate every CCT composition before mutating anything, so a
    // bad pair leaves `acc` untouched (mirrors StageAccumulator::apply).
    {
        let mut ai = acc.ccts.iter().peekable();
        for n in &next.ccts {
            while ai.peek().is_some_and(|a| a.ctx < n.ctx) {
                ai.next();
            }
            let (base, appended) = match ai.peek() {
                Some(a) if a.ctx == n.ctx => (a.nodes_before, a.new_nodes.len() as u32),
                _ => (n.nodes_before, 0),
            };
            if n.nodes_before != base + appended {
                return Err(MergeError {
                    stage: acc.stage,
                    what: "CCT baseline does not extend the accumulated increment",
                });
            }
            if n.grown.iter().any(|&(i, ..)| i >= n.nodes_before) {
                return Err(MergeError {
                    stage: acc.stage,
                    what: "CCT growth targets a node past its baseline",
                });
            }
        }
    }

    acc.new_frames.extend(next.new_frames.iter().cloned());
    acc.new_contexts.extend(next.new_contexts.iter().cloned());
    acc.new_synopses.extend(next.new_synopses.iter().copied());

    // CCTs: both lists are sorted by ctx; merge-join.
    let mut merged = Vec::with_capacity(acc.ccts.len() + next.ccts.len());
    {
        let mut ai = std::mem::take(&mut acc.ccts).into_iter().peekable();
        let mut ni = next.ccts.iter().peekable();
        loop {
            match (ai.peek(), ni.peek()) {
                (None, None) => break,
                (Some(_), None) => merged.push(ai.next().unwrap()),
                (Some(a), Some(n)) if a.ctx < n.ctx => merged.push(ai.next().unwrap()),
                (None, Some(_)) | (Some(_), Some(_)) => {
                    let n = ni.next().unwrap();
                    if ai.peek().is_some_and(|a| a.ctx == n.ctx) {
                        let mut a = ai.next().unwrap();
                        compose_cct(&mut a, n);
                        merged.push(a);
                    } else {
                        merged.push(n.clone());
                    }
                }
            }
        }
    }
    acc.ccts = merged;

    // Crosstalk: keyed monotone sums; rebuild sorted via BTreeMap so
    // the merged delta matches what a single longer diff would emit.
    let mut pairs: BTreeMap<(u32, u32), (u64, u64)> = acc
        .pairs
        .drain(..)
        .map(|p| ((p.waiter, p.holder), (p.count, p.total_wait)))
        .collect();
    for p in &next.pairs {
        let e = pairs.entry((p.waiter, p.holder)).or_insert((0, 0));
        e.0 += p.count;
        e.1 += p.total_wait;
    }
    acc.pairs = pairs
        .into_iter()
        .map(
            |((waiter, holder), (count, total_wait))| crate::stitch::DumpCrosstalkPair {
                waiter,
                holder,
                count,
                total_wait,
            },
        )
        .collect();
    let mut waiters: BTreeMap<u32, (u64, u64)> = acc
        .waiters
        .drain(..)
        .map(|w| (w.waiter, (w.count, w.total_wait)))
        .collect();
    for w in &next.waiters {
        let e = waiters.entry(w.waiter).or_insert((0, 0));
        e.0 += w.count;
        e.1 += w.total_wait;
    }
    acc.waiters = waiters
        .into_iter()
        .map(
            |(waiter, (count, total_wait))| crate::stitch::DumpCrosstalkWaiter {
                waiter,
                count,
                total_wait,
            },
        )
        .collect();

    acc.piggyback_bytes += next.piggyback_bytes;
    acc.messages += next.messages;
    acc.checksum = 0;
    Ok(())
}

/// Composes `n` (the later increment) into `a` for one context. The
/// caller has already validated `n.nodes_before == a.nodes_before +
/// a.new_nodes.len()`.
fn compose_cct(a: &mut CctDelta, n: &CctDelta) {
    for &(i, s, cy, ca) in &n.grown {
        if i < a.nodes_before {
            // Growth of a node that predates `a`: sum into `a`'s own
            // growth list, keeping it sorted by node index.
            match a.grown.binary_search_by_key(&i, |g| g.0) {
                Ok(at) => {
                    let g = &mut a.grown[at];
                    g.1 += s;
                    g.2 += cy;
                    g.3 += ca;
                }
                Err(at) => a.grown.insert(at, (i, s, cy, ca)),
            }
        } else {
            // Growth of a node `a` itself appended: fold into the
            // appended node's metrics.
            let node = &mut a.new_nodes[(i - a.nodes_before) as usize];
            node.samples += s;
            node.cycles += cy;
            node.calls += ca;
        }
    }
    a.new_nodes.extend(n.new_nodes.iter().copied());
}

/// Stamps the outgoing per-stage sequence number on a merged delta and
/// recomputes its checksum — the final step before a delta leaves a
/// federation node.
pub fn seal_delta(mut d: StageDelta, seq: u64) -> StageDelta {
    d.seq = seq;
    d.checksum = d.compute_checksum();
    d
}

/// A mergeable quantile digest on the wire: sparse nonzero buckets of a
/// [`QuantileSketch`] plus its exact max, tagged with the tier name the
/// observations came from.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TierSketch {
    /// Tier (stage name) the observations belong to; fleet replicas of
    /// the same tier share one digest line.
    pub tier: String,
    /// Exact maximum observation (not recoverable from buckets).
    pub max: u64,
    /// `(bucket index, count)` pairs, ascending, counts nonzero.
    pub buckets: Vec<(u32, u64)>,
}

impl TierSketch {
    /// The digest of `sketch`, labelled `tier`.
    pub fn of(tier: &str, sketch: &QuantileSketch) -> TierSketch {
        let (max, buckets) = sketch.to_wire();
        TierSketch {
            tier: tier.to_string(),
            max,
            buckets,
        }
    }
}

/// Health and lag gauges for one leaf, riding on every frame its
/// subtree emits. Cumulative where not stated otherwise.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LeafGauges {
    /// Last input epoch the leaf folded.
    pub last_epoch: u64,
    /// Input change events ingested.
    pub events: u64,
    /// Profile mass (CCT cycle increments) ingested.
    pub mass: u64,
    /// Frames sitting in the leaf's spool when this was sampled.
    pub lag_frames: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Crash recoveries performed.
    pub recoveries: u64,
}

/// One federation frame: the merged increment a node ships upstream,
/// plus its operational freight.
///
/// The byte form the federation links actually ship is the columnar
/// binary codec in [`crate::wire`] ([`crate::wire::encode_summary`] /
/// [`crate::wire::decode_summary`]); this struct is the in-memory
/// form, and its [`SummaryFrame::checksum`] stays the end-to-end
/// content digest on both encodings.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SummaryFrame {
    /// Emitting node id (unique per link).
    pub src: u32,
    /// Per-link frame sequence number, contiguous from 0. Receivers
    /// park reordered frames, drop duplicates, and ack cumulatively by
    /// this number.
    pub seq: u64,
    /// First input epoch the frame's interval covers.
    pub first_epoch: u64,
    /// Last input epoch the frame's interval covers.
    pub last_epoch: u64,
    /// Virtual time at the end of the interval.
    pub end: u64,
    /// Merged per-stage increments (global stage indices, per-stage
    /// sequence numbers stamped by the emitter via [`seal_delta`]).
    pub deltas: Vec<StageDelta>,
    /// Per-tier interval cost digests, sorted by tier name.
    pub sketches: Vec<TierSketch>,
    /// Interval profile mass per originating leaf, sorted by leaf id —
    /// the root's per-subtree coverage ledger.
    pub leaf_mass: Vec<(u32, u64)>,
    /// Latest known gauges per originating leaf, sorted by leaf id.
    pub gauges: Vec<(u32, LeafGauges)>,
    /// FNV-1a digest of everything above.
    pub checksum: u64,
}

impl SummaryFrame {
    /// Total change events across the frame's deltas.
    pub fn events(&self) -> u64 {
        self.deltas.iter().map(|d| d.events()).sum()
    }

    /// Total interval profile mass across originating leaves.
    pub fn mass(&self) -> u64 {
        self.leaf_mass.iter().map(|&(_, m)| m).sum()
    }

    /// The lane-wise FNV-1a digest of the frame's content (everything
    /// except the stored `checksum` itself). Delta content is folded in
    /// through each delta's own checksum — already computed by
    /// [`seal_delta`] — so frame sealing is O(freight), not O(content).
    pub fn compute_checksum(&self) -> u64 {
        let mut h = FnvLanes::new();
        h.write_u64(self.src as u64);
        h.write_u64(self.seq);
        h.write_u64(self.first_epoch);
        h.write_u64(self.last_epoch);
        h.write_u64(self.end);
        h.write_u64(self.deltas.len() as u64);
        for d in &self.deltas {
            h.write_u64(d.stage as u64);
            h.write_u64(d.seq);
            h.write_u64(d.checksum);
        }
        h.write_u64(self.sketches.len() as u64);
        for s in &self.sketches {
            h.write_u64(s.tier.len() as u64);
            h.write_bytes(s.tier.as_bytes());
            h.write_u64(s.max);
            h.write_u64(s.buckets.len() as u64);
            for &(b, c) in &s.buckets {
                h.write_u64(b as u64);
                h.write_u64(c);
            }
        }
        h.write_u64(self.leaf_mass.len() as u64);
        for &(leaf, m) in &self.leaf_mass {
            h.write_u64(leaf as u64);
            h.write_u64(m);
        }
        h.write_u64(self.gauges.len() as u64);
        for &(leaf, g) in &self.gauges {
            h.write_u64(leaf as u64);
            for v in [
                g.last_epoch,
                g.events,
                g.mass,
                g.lag_frames,
                g.checkpoints,
                g.recoveries,
            ] {
                h.write_u64(v);
            }
        }
        h.finish()
    }

    /// Seals the frame: recomputes and stores the checksum.
    pub fn seal(mut self) -> SummaryFrame {
        self.checksum = self.compute_checksum();
        self
    }

    /// Whether the stored checksum matches the content.
    pub fn verify(&self) -> bool {
        self.checksum == self.compute_checksum()
    }
}

/// The profile mass (CCT cycle increments) a delta carries — the unit
/// of the federation's conservation ledger.
pub fn delta_mass(d: &StageDelta) -> u64 {
    d.ccts
        .iter()
        .map(|c| {
            c.new_nodes.iter().map(|n| n.cycles).sum::<u64>()
                + c.grown.iter().map(|&(_, _, cy, _)| cy).sum::<u64>()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::{diff_dump, StageAccumulator, StreamStage};
    use crate::stitch::{DumpAtom, DumpCct, DumpContext, DumpCrosstalkPair, DumpNode, StageDump};

    fn node(frame: Option<u32>, parent: Option<u32>, cycles: u64) -> DumpNode {
        DumpNode {
            frame,
            parent,
            samples: cycles / 100,
            cycles,
            calls: 1,
        }
    }

    /// Three successive snapshots of one synthetic stage.
    fn snapshots() -> [StageDump; 3] {
        let s0 = StageDump {
            proc: 1,
            stage_name: "app".into(),
            frames: vec!["main".into()],
            contexts: vec![DumpContext::default()],
            ccts: vec![DumpCct {
                ctx: 0,
                nodes: vec![node(None, None, 100)],
            }],
            synopses: vec![(0x0100_0000, 0)],
            crosstalk_pairs: vec![],
            crosstalk_waiters: vec![],
            piggyback_bytes: 4,
            messages: 1,
        };
        let mut s1 = s0.clone();
        s1.frames.push("handle".into());
        s1.contexts.push(DumpContext {
            atoms: vec![DumpAtom::Frame(1)],
        });
        s1.ccts[0].nodes[0].cycles += 50;
        s1.ccts[0].nodes.push(node(Some(1), Some(0), 70));
        s1.ccts.push(DumpCct {
            ctx: 1,
            nodes: vec![node(Some(1), None, 30)],
        });
        s1.crosstalk_pairs.push(DumpCrosstalkPair {
            waiter: 1,
            holder: 0,
            count: 1,
            total_wait: 10,
        });
        s1.piggyback_bytes += 8;
        let mut s2 = s1.clone();
        s2.synopses.push((0x0100_0001, 1));
        // Grow both an old node (pre-s1) and a node s1 appended.
        s2.ccts[0].nodes[0].cycles += 5;
        s2.ccts[0].nodes[1].cycles += 25;
        s2.ccts[0].nodes.push(node(Some(0), Some(1), 60));
        s2.crosstalk_pairs[0].count += 2;
        s2.crosstalk_pairs[0].total_wait += 30;
        s2.messages += 3;
        [s0, s1, s2]
    }

    fn stage() -> StreamStage {
        StreamStage {
            proc: 1,
            stage_name: "app".into(),
        }
    }

    #[test]
    fn merged_delta_equals_sequential_application() {
        let [s0, s1, s2] = snapshots();
        let d0 = diff_dump(0, 0, None, &s0).unwrap();
        let d1 = diff_dump(0, 1, Some(&s0), &s1).unwrap();
        let d2 = diff_dump(0, 2, Some(&s1), &s2).unwrap();

        // Sequential application of the three raw deltas.
        let mut seq_acc = StageAccumulator::new(&stage());
        for d in [&d0, &d1, &d2] {
            seq_acc.apply(d).unwrap();
        }

        // Merge all three, then apply once.
        let mut m = d0.clone();
        merge_stage_delta(&mut m, &d1).unwrap();
        merge_stage_delta(&mut m, &d2).unwrap();
        let m = seal_delta(m, 0);
        let mut one_acc = StageAccumulator::new(&stage());
        one_acc.apply(&m).unwrap();

        assert_eq!(one_acc.to_dump(), seq_acc.to_dump());
        assert_eq!(one_acc.to_dump(), s2);
    }

    #[test]
    fn merge_is_associative() {
        let [s0, s1, s2] = snapshots();
        let d0 = diff_dump(0, 0, None, &s0).unwrap();
        let d1 = diff_dump(0, 1, Some(&s0), &s1).unwrap();
        let d2 = diff_dump(0, 2, Some(&s1), &s2).unwrap();

        let mut left = d0.clone();
        merge_stage_delta(&mut left, &d1).unwrap();
        merge_stage_delta(&mut left, &d2).unwrap();

        let mut right_tail = d1.clone();
        merge_stage_delta(&mut right_tail, &d2).unwrap();
        let mut right = d0.clone();
        merge_stage_delta(&mut right, &right_tail).unwrap();

        assert_eq!(seal_delta(left, 7), seal_delta(right, 7));
    }

    #[test]
    fn merge_into_identity_preserves_content() {
        let [s0, _, _] = snapshots();
        let d0 = diff_dump(0, 0, None, &s0).unwrap();
        let mut m = empty_delta(0);
        merge_stage_delta(&mut m, &d0).unwrap();
        assert_eq!(seal_delta(m, d0.seq), d0);
    }

    #[test]
    fn merge_rejects_non_extending_baseline() {
        let [s0, s1, s2] = snapshots();
        let d0 = diff_dump(0, 0, None, &s0).unwrap();
        let d2 = diff_dump(0, 2, Some(&s1), &s2).unwrap();
        let mut m = d0.clone();
        // d2's baseline presumes d1 was folded in; merging it straight
        // onto d0 must fail loudly and leave `m` unchanged.
        let before = m.clone();
        assert!(merge_stage_delta(&mut m, &d2).is_err());
        assert_eq!(m, before);
    }

    #[test]
    fn merge_rejects_cross_stage_pairs() {
        let [s0, _, _] = snapshots();
        let d0 = diff_dump(0, 0, None, &s0).unwrap();
        let other = diff_dump(3, 0, None, &s0).unwrap();
        let mut m = d0.clone();
        assert!(merge_stage_delta(&mut m, &other).is_err());
    }

    #[test]
    fn delta_mass_counts_new_and_grown_cycles() {
        let [s0, s1, _] = snapshots();
        let d1 = diff_dump(0, 1, Some(&s0), &s1).unwrap();
        // s1 added 50 cycles to an old node and 70 + 30 in new nodes.
        assert_eq!(delta_mass(&d1), 150);
    }

    #[test]
    fn frame_checksum_covers_freight() {
        let [s0, _, _] = snapshots();
        let d0 = seal_delta(diff_dump(0, 0, None, &s0).unwrap(), 0);
        let frame = SummaryFrame {
            src: 3,
            seq: 0,
            first_epoch: 0,
            last_epoch: 4,
            end: 5_000,
            deltas: vec![d0],
            sketches: vec![TierSketch {
                tier: "app".into(),
                max: 150,
                buckets: vec![(9, 2)],
            }],
            leaf_mass: vec![(3, 200)],
            gauges: vec![(3, LeafGauges::default())],
            checksum: 0,
        }
        .seal();
        assert!(frame.verify());
        let mut bad = frame.clone();
        bad.leaf_mass[0].1 += 1;
        assert!(!bad.verify());
        assert_eq!(frame.mass(), 200);
    }
}
