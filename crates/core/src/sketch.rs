//! Deterministic streaming quantile sketch.
//!
//! The sentinel tier evaluates tail-latency SLOs continuously over a
//! stream of per-epoch cost observations. It needs quantile estimates
//! that are (a) **deterministic** — the same observations in any epoch
//! grouping yield the same answer, so a replayed repro trips the same
//! budget at the same epoch; (b) **mergeable** — per-epoch sketches
//! combine across retained epochs and across collectors without order
//! sensitivity; and (c) **bounded** — fixed memory regardless of
//! stream length.
//!
//! [`QuantileSketch`] is a log-bucketed histogram in the HDR style:
//! values land in buckets of bounded *relative* width ([`EPS_SHIFT`]
//! sub-bucket bits per octave, so every bucket spans less than a
//! `1 + 2^-EPS_SHIFT` factor). Merging is bucket-wise addition —
//! commutative and associative by construction — and a quantile query
//! walks the cumulative counts to the bucket holding the target rank
//! and returns that bucket's inclusive upper bound. The estimate `e`
//! for the rank-`r` sample `v` therefore satisfies
//!
//! ```text
//! v <= e  and  e <= v + max(1, v >> EPS_SHIFT)
//! ```
//!
//! i.e. a guaranteed-conservative value within ~6.25% relative error —
//! the property the sentinel proptests pin down against an exact
//! sorted reference.

/// Sub-bucket precision: each power-of-two octave is split into
/// `2^EPS_SHIFT` buckets, bounding relative bucket width by
/// `2^-EPS_SHIFT` (6.25%).
pub const EPS_SHIFT: u32 = 4;

const SUB: usize = 1 << EPS_SHIFT; // sub-buckets per octave
/// Bucket 0 is the exact value 0; values in `[1, 2^EPS_SHIFT)` get one
/// exact bucket each; larger values get `SUB` buckets per octave.
const BUCKETS: usize = 1 + SUB + (64 - EPS_SHIFT as usize) * SUB;

fn bucket_of(v: u64) -> usize {
    if v == 0 {
        return 0;
    }
    if v < SUB as u64 {
        return v as usize;
    }
    let e = 63 - v.leading_zeros(); // e >= EPS_SHIFT
    let shift = e - EPS_SHIFT;
    let sub = ((v >> shift) & (SUB as u64 - 1)) as usize;
    1 + SUB + (e - EPS_SHIFT) as usize * SUB + sub
}

/// Inclusive upper bound of a bucket: the largest value that maps into
/// it.
fn bucket_hi(b: usize) -> u64 {
    if b <= SUB {
        return b as u64;
    }
    let i = b - 1 - SUB;
    let e = EPS_SHIFT + (i / SUB) as u32;
    let sub = (i % SUB) as u64;
    let shift = e - EPS_SHIFT;
    // Top of the sub-bucket: next sub-bucket's base minus one. The
    // adds wrap exactly once, at the very top of the u64 range, where
    // the answer is u64::MAX.
    (1u64 << e)
        .wrapping_add((sub + 1) << shift)
        .wrapping_sub(1)
}

/// A fixed-size, mergeable, deterministic quantile sketch over `u64`
/// observations. See the module docs for the error contract.
#[derive(Clone)]
pub struct QuantileSketch {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    max: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new()
    }
}

impl std::fmt::Debug for QuantileSketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantileSketch")
            .field("count", &self.count)
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        QuantileSketch {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.max = self.max.max(v);
    }

    /// Number of observations recorded (including merged ones).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The largest observation recorded, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Folds `other` into `self`. Bucket-wise addition: commutative,
    /// associative, and loss-free with respect to later queries.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }

    /// Sparse wire form: the exact max plus every nonzero `(bucket,
    /// count)` pair in ascending bucket order. Federation frames ship
    /// digests in this shape — a handful of pairs instead of the fixed
    /// 7.8 KiB histogram — and [`QuantileSketch::from_wire`] rebuilds a
    /// sketch that merges and queries bit-identically to the original.
    pub fn to_wire(&self) -> (u64, Vec<(u32, u64)>) {
        let buckets = self
            .counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != 0)
            .map(|(b, &c)| (b as u32, c))
            .collect();
        (self.max, buckets)
    }

    /// Rebuilds a sketch from its [`QuantileSketch::to_wire`] form. The
    /// observation count is the sum of the bucket counts; out-of-range
    /// bucket indices are ignored (a corrupt frame fails its checksum
    /// long before reaching this point).
    pub fn from_wire(max: u64, buckets: &[(u32, u64)]) -> QuantileSketch {
        let mut s = QuantileSketch::new();
        for &(b, c) in buckets {
            if let Some(slot) = s.counts.get_mut(b as usize) {
                *slot += c;
                s.count += c;
            }
        }
        s.max = max;
        s
    }

    /// The sparse wire form framed as checksummed bytes on the shared
    /// binary codec ([`crate::wire::encode_sketch`]) — the byte packing
    /// that used to be hand-rolled per call site now lives in
    /// [`crate::wire`].
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        crate::wire::encode_sketch(self)
    }

    /// Rebuilds a sketch from a [`QuantileSketch::to_wire_bytes`]
    /// frame, verifying the envelope and digest.
    pub fn from_wire_bytes(buf: &[u8]) -> Result<QuantileSketch, crate::wire::WireError> {
        crate::wire::decode_sketch(buf).map(|(s, _)| s)
    }

    /// The quantile estimate at `q_ppm` parts-per-million (e.g.
    /// `990_000` = p99): the inclusive upper bound of the bucket
    /// holding the sample of rank `ceil(q * count)` (clamped to
    /// [`QuantileSketch::max`]). Returns `None` on an empty sketch.
    pub fn quantile_ppm(&self, q_ppm: u64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        // rank in [1, count]: ceil(count * q / 1e6), floored at 1.
        let r = rank_of(self.count, q_ppm);
        let mut cum = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= r {
                return Some(bucket_hi(b).min(self.max));
            }
        }
        Some(self.max)
    }
}

/// The 1-based rank the sketch's quantile rule selects at `q_ppm` out
/// of `n` samples: `ceil(n * q / 1e6)`, floored at 1. Exposed so
/// callers can recognize the extreme ranks (1 = min, `n` = max) and
/// compute those without materializing the sample set.
pub fn rank_of(n: u64, q_ppm: u64) -> u64 {
    (n.saturating_mul(q_ppm.min(1_000_000)))
        .div_ceil(1_000_000)
        .max(1)
}

/// Exactly the estimate a fresh sketch over `values` would return from
/// [`QuantileSketch::quantile_ppm`], computed without allocating one.
/// Bucket indices are monotone in the value, so the bucket holding the
/// rank-`r` sample is the bucket of the rank-`r` value — sorting the
/// values and bucketing one of them gives the identical answer. May
/// reorder `values`. The sentinel uses this on its small per-window
/// slices, where a fixed 7.8 KiB histogram per evaluation would be all
/// allocation and no data.
pub fn quantile_ppm_over(values: &mut [u64], q_ppm: u64) -> Option<u64> {
    if values.is_empty() {
        return None;
    }
    let n = values.len() as u64;
    let r = rank_of(n, q_ppm);
    let max = *values.iter().max().expect("non-empty");
    // Extreme ranks need no sort: rank n is the max, rank 1 the min —
    // and high quantiles over small windows (the sentinel's per-epoch
    // case) always land on rank n.
    let v = if r == n {
        max
    } else if r == 1 {
        *values.iter().min().expect("non-empty")
    } else {
        values.sort_unstable();
        values[(r - 1) as usize]
    };
    Some(bucket_hi(bucket_of(v)).min(max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_self_consistent() {
        // Every value maps to a bucket whose bounds contain it, and
        // bucket indices are monotone in the value.
        let mut vals: Vec<u64> = (0..64)
            .flat_map(|s| [0u64, 1, 3].map(|off| (1u64 << s).saturating_add(off)))
            .collect();
        vals.sort_unstable();
        let mut prev_bucket = 0;
        for v in vals {
            let b = bucket_of(v);
            assert!(b >= prev_bucket, "bucket order broke at {v}");
            prev_bucket = b;
            assert!(bucket_hi(b) >= v, "hi({b}) < {v}");
            let width_ok = bucket_hi(b) - v <= (v >> EPS_SHIFT).max(1);
            assert!(width_ok, "bucket too wide at {v}: hi={}", bucket_hi(b));
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        let _ = bucket_hi(BUCKETS - 1); // no overflow panic
    }

    #[test]
    fn exact_small_values() {
        let mut s = QuantileSketch::new();
        for v in [0u64, 1, 2, 3, 9, 15] {
            s.record(v);
        }
        assert_eq!(s.quantile_ppm(0), Some(0));
        assert_eq!(s.quantile_ppm(1_000_000), Some(15));
        assert_eq!(s.quantile_ppm(500_000), Some(2));
    }

    #[test]
    fn estimate_brackets_the_exact_rank_value() {
        let mut s = QuantileSketch::new();
        let mut vals: Vec<u64> = (0..500).map(|i| (i * i * 37 + i) % 100_000).collect();
        for &v in &vals {
            s.record(v);
        }
        vals.sort_unstable();
        for q in [100_000u64, 500_000, 900_000, 990_000, 1_000_000] {
            let r = ((vals.len() as u64 * q).div_ceil(1_000_000)).max(1) as usize;
            let exact = vals[r - 1];
            let est = s.quantile_ppm(q).unwrap();
            assert!(est >= exact, "q={q}: est {est} < exact {exact}");
            assert!(
                est <= exact + (exact >> EPS_SHIFT).max(1),
                "q={q}: est {est} too far above exact {exact}"
            );
        }
    }

    #[test]
    fn merge_is_commutative_and_matches_single_stream() {
        let vals: Vec<u64> = (0..300).map(|i| (i * 7919) % 50_000).collect();
        let mut whole = QuantileSketch::new();
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for (i, &v) in vals.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for q in [0, 250_000, 500_000, 990_000, 1_000_000] {
            assert_eq!(ab.quantile_ppm(q), ba.quantile_ppm(q));
            assert_eq!(ab.quantile_ppm(q), whole.quantile_ppm(q));
        }
        assert_eq!(ab.count(), whole.count());
        assert_eq!(ab.max(), whole.max());
    }

    #[test]
    fn wire_round_trip_is_exact() {
        let mut s = QuantileSketch::new();
        for v in [0u64, 3, 3, 99, 1 << 20, u64::MAX] {
            s.record(v);
        }
        let (max, buckets) = s.to_wire();
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0));
        let r = QuantileSketch::from_wire(max, &buckets);
        assert_eq!(r.count(), s.count());
        assert_eq!(r.max(), s.max());
        for q in [0u64, 500_000, 990_000, 1_000_000] {
            assert_eq!(r.quantile_ppm(q), s.quantile_ppm(q));
        }
        // Empty sketch round-trips to an empty wire form.
        let (m, b) = QuantileSketch::new().to_wire();
        assert_eq!((m, b.len()), (0, 0));
    }

    #[test]
    fn wire_bytes_match_the_sparse_form() {
        let mut s = QuantileSketch::new();
        for v in [0u64, 3, 3, 99, 1 << 20, u64::MAX] {
            s.record(v);
        }
        let r = QuantileSketch::from_wire_bytes(&s.to_wire_bytes()).unwrap();
        let direct = {
            let (max, buckets) = s.to_wire();
            QuantileSketch::from_wire(max, &buckets)
        };
        for q in [0u64, 500_000, 990_000, 1_000_000] {
            assert_eq!(r.quantile_ppm(q), direct.quantile_ppm(q));
        }
        assert_eq!((r.count(), r.max()), (direct.count(), direct.max()));
        assert!(QuantileSketch::from_wire_bytes(&[1, 2, 3]).is_err());
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = QuantileSketch::new();
        assert_eq!(s.quantile_ppm(990_000), None);
        assert_eq!(s.count(), 0);
        assert_eq!(quantile_ppm_over(&mut [], 990_000), None);
    }

    #[test]
    fn slice_path_matches_the_sketch_exactly() {
        // Window-sized slices (the sentinel's workload), arbitrary
        // magnitudes and duplicates, every quantile: both paths must
        // agree bit for bit.
        let pools: &[&[u64]] = &[
            &[0],
            &[0, 0, 0],
            &[7],
            &[1, 2, 3, 4, 5, 6, 7, 8],
            &[u64::MAX, 0, 1 << 40, 1 << 40, 3, 999_999_937],
            &[2_184_000_000, 1_137_603_200, 0, 38_427_600],
        ];
        for vals in pools {
            let mut sk = QuantileSketch::new();
            for &v in *vals {
                sk.record(v);
            }
            for q in [0u64, 100_000, 500_000, 900_000, 990_000, 1_000_000] {
                let mut scratch = vals.to_vec();
                assert_eq!(
                    quantile_ppm_over(&mut scratch, q),
                    sk.quantile_ppm(q),
                    "vals {vals:?} q {q}"
                );
            }
        }
    }
}
