//! Streaming profile deltas: the wire format between live stages and
//! the online collector tier.
//!
//! Batch Whodunit gathers one [`StageDump`] per stage at end-of-run and
//! stitches post mortem. The streaming path instead emits, once per
//! virtual-time *epoch*, the increment of every stage's profile state
//! since the previous epoch. The increments exploit the monotone
//! structure of a live Whodunit instance:
//!
//! - `frames` and `contexts` are intern tables — append-only, so a
//!   delta carries only the new tail;
//! - `synopses` are minted at most once per context — a delta carries
//!   only newly minted `(raw, ctx)` pairs;
//! - CCT node lists are append-only and per-node metrics only grow — a
//!   delta carries new nodes plus `(node, Δsamples, Δcycles, Δcalls)`
//!   for grown existing nodes;
//! - crosstalk aggregates and the piggyback counters are monotone sums
//!   — a delta carries keyed increments.
//!
//! [`diff_dump`] computes the increment between two snapshots of the
//! same stage (asserting the monotone structure), and
//! [`StageAccumulator`] replays increments back into a [`StageDump`]
//! that is **equal, field for field, to the snapshot it mirrors** — the
//! foundation of the streaming-vs-batch byte-identity lock: a collector
//! that has applied every delta can reproduce the exact dumps the batch
//! pipeline would have read from disk.
//!
//! Every delta carries a per-stage sequence number and an FNV-1a
//! checksum (via [`crate::hash`], lane-wise over 64-bit words — the
//! checksum is computed once per delta at the emitter and verified once
//! at the collector, squarely on the ingest hot path) so a collector
//! can detect gaps and corruption rather than silently diverging.

use crate::hash::FnvLanes;
use crate::stitch::{
    DumpAtom, DumpCct, DumpContext, DumpCrosstalkPair, DumpCrosstalkWaiter, DumpNode, StageDump,
};
use std::collections::BTreeMap;
use std::fmt;

/// Identity of one stage in a delta stream.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StreamStage {
    /// Process id (matches [`StageDump::proc`]).
    pub proc: u32,
    /// Stage name (matches [`StageDump::stage_name`]).
    pub stage_name: String,
}

/// Announces the fixed set of stages a delta stream will carry.
///
/// Emitted once, before the first [`EpochBatch`]. Stage indices in
/// [`StageDelta::stage`] refer to positions in [`StreamHeader::stages`],
/// which follow the same order as `Sim::collect_dumps`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct StreamHeader {
    /// The stages, in dump order.
    pub stages: Vec<StreamStage>,
}

impl StreamHeader {
    /// A copy with every process id passed through `map` (ids the map
    /// declines are kept). Mirrors [`StageDump::with_remapped_proc`]
    /// for fleet replication of recorded streams.
    pub fn with_remapped_proc(&self, map: &dyn Fn(u32) -> Option<u32>) -> StreamHeader {
        StreamHeader {
            stages: self
                .stages
                .iter()
                .map(|s| StreamStage {
                    proc: map(s.proc).unwrap_or(s.proc),
                    stage_name: s.stage_name.clone(),
                })
                .collect(),
        }
    }
}

/// Increment of one context's CCT since the previous epoch.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CctDelta {
    /// Context index this CCT is annotated with.
    pub ctx: u32,
    /// Number of nodes the CCT had at the previous epoch (0 for a CCT
    /// first seen in this delta).
    pub nodes_before: u32,
    /// Nodes appended since (structure plus their current metrics).
    pub new_nodes: Vec<DumpNode>,
    /// `(node index, Δsamples, Δcycles, Δcalls)` for pre-existing
    /// nodes whose metrics grew.
    pub grown: Vec<(u32, u64, u64, u64)>,
}

/// Increment of one stage's profile state over one epoch.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StageDelta {
    /// Index into [`StreamHeader::stages`].
    pub stage: usize,
    /// Per-stage sequence number, starting at 0, no gaps.
    pub seq: u64,
    /// Newly interned frame names (appended to the stage's table).
    pub new_frames: Vec<String>,
    /// Newly interned contexts (appended to the stage's table).
    pub new_contexts: Vec<DumpContext>,
    /// Newly minted `(raw synopsis, context index)` pairs.
    pub new_synopses: Vec<(u64, u32)>,
    /// CCT increments, sorted by context index.
    pub ccts: Vec<CctDelta>,
    /// Crosstalk pair increments: `count`/`total_wait` are the deltas.
    pub pairs: Vec<DumpCrosstalkPair>,
    /// Crosstalk waiter increments: `count`/`total_wait` are deltas.
    pub waiters: Vec<DumpCrosstalkWaiter>,
    /// Piggyback bytes sent this epoch.
    pub piggyback_bytes: u64,
    /// Piggybacked messages sent this epoch.
    pub messages: u64,
    /// FNV-1a checksum over the content above (see
    /// [`StageDelta::compute_checksum`]).
    pub checksum: u64,
}

impl StageDelta {
    /// Whether the delta carries no change at all.
    pub fn is_empty(&self) -> bool {
        self.new_frames.is_empty()
            && self.new_contexts.is_empty()
            && self.new_synopses.is_empty()
            && self.ccts.is_empty()
            && self.pairs.is_empty()
            && self.waiters.is_empty()
            && self.piggyback_bytes == 0
            && self.messages == 0
    }

    /// Number of individual change events the delta carries (used for
    /// ingest-rate accounting).
    pub fn events(&self) -> u64 {
        (self.new_frames.len()
            + self.new_contexts.len()
            + self.new_synopses.len()
            + self
                .ccts
                .iter()
                .map(|c| c.new_nodes.len() + c.grown.len())
                .sum::<usize>()
            + self.pairs.len()
            + self.waiters.len()) as u64
    }

    /// The lane-wise FNV-1a digest of the delta's content (everything
    /// except the stored `checksum` field itself). Strings are hashed
    /// as zero-padded little-endian lanes behind an explicit length
    /// word, so padding cannot alias content.
    pub fn compute_checksum(&self) -> u64 {
        let mut h = FnvLanes::new();
        h.write_u64(self.stage as u64);
        h.write_u64(self.seq);
        h.write_u64(self.new_frames.len() as u64);
        for f in &self.new_frames {
            h.write_u64(f.len() as u64);
            h.write_bytes(f.as_bytes());
        }
        h.write_u64(self.new_contexts.len() as u64);
        for c in &self.new_contexts {
            h.write_u64(c.atoms.len() as u64);
            for a in &c.atoms {
                match a {
                    DumpAtom::Frame(f) => {
                        h.write_u64(1);
                        h.write_u64(*f as u64);
                    }
                    DumpAtom::Path(p) => {
                        h.write_u64(2);
                        h.write_u64(p.len() as u64);
                        for f in p {
                            h.write_u64(*f as u64);
                        }
                    }
                    DumpAtom::Remote(r) => {
                        h.write_u64(3);
                        h.write_u64(r.len() as u64);
                        for s in r {
                            h.write_u64(*s);
                        }
                    }
                }
            }
        }
        h.write_u64(self.new_synopses.len() as u64);
        for &(raw, ctx) in &self.new_synopses {
            h.write_u64(raw);
            h.write_u64(ctx as u64);
        }
        h.write_u64(self.ccts.len() as u64);
        for c in &self.ccts {
            h.write_u64(c.ctx as u64);
            h.write_u64(c.nodes_before as u64);
            h.write_u64(c.new_nodes.len() as u64);
            for n in &c.new_nodes {
                // Option<u32> encoded as value+1 (None -> 0).
                h.write_u64(n.frame.map_or(0, |f| f as u64 + 1));
                h.write_u64(n.parent.map_or(0, |p| p as u64 + 1));
                h.write_u64(n.samples);
                h.write_u64(n.cycles);
                h.write_u64(n.calls);
            }
            h.write_u64(c.grown.len() as u64);
            for &(node, s, cy, ca) in &c.grown {
                h.write_u64(node as u64);
                h.write_u64(s);
                h.write_u64(cy);
                h.write_u64(ca);
            }
        }
        h.write_u64(self.pairs.len() as u64);
        for p in &self.pairs {
            h.write_u64(p.waiter as u64);
            h.write_u64(p.holder as u64);
            h.write_u64(p.count);
            h.write_u64(p.total_wait);
        }
        h.write_u64(self.waiters.len() as u64);
        for w in &self.waiters {
            h.write_u64(w.waiter as u64);
            h.write_u64(w.count);
            h.write_u64(w.total_wait);
        }
        h.write_u64(self.piggyback_bytes);
        h.write_u64(self.messages);
        h.finish()
    }

    /// A copy with stage index `stage` and every raw synopsis value's
    /// embedded process id passed through `map` (both newly minted
    /// synopses and `Remote` chains inside new contexts), with the
    /// checksum recomputed. Mirrors [`StageDump::with_remapped_proc`]
    /// so a recorded single-fleet stream can be replicated into many
    /// disjoint process-id ranges.
    pub fn with_remapped_proc(
        &self,
        stage: usize,
        map: &dyn Fn(u32) -> Option<u32>,
    ) -> StageDelta {
        let remap_syn = |raw: u64| -> u64 {
            let s = crate::synopsis::Synopsis(raw);
            match map(s.proc_id()) {
                Some(p) => crate::synopsis::Synopsis::new(p, s.counter()).0,
                None => raw,
            }
        };
        let mut d = self.clone();
        d.stage = stage;
        for (raw, _) in &mut d.new_synopses {
            *raw = remap_syn(*raw);
        }
        for c in &mut d.new_contexts {
            for a in &mut c.atoms {
                if let DumpAtom::Remote(chain) = a {
                    for raw in chain.iter_mut() {
                        *raw = remap_syn(*raw);
                    }
                }
            }
        }
        d.checksum = d.compute_checksum();
        d
    }
}

/// All stage deltas of one virtual-time epoch.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EpochBatch {
    /// Epoch index, starting at 0.
    pub epoch: u64,
    /// Global batch sequence number, starting at 0, no gaps.
    pub seq: u64,
    /// Virtual time (cycles) at the end of the epoch.
    pub end: u64,
    /// Per-stage increments; stages with no change are omitted.
    pub deltas: Vec<StageDelta>,
}

impl EpochBatch {
    /// Total change events across all stage deltas.
    pub fn events(&self) -> u64 {
        self.deltas.iter().map(|d| d.events()).sum()
    }
}

/// Receiver of a delta stream.
///
/// `Sim::run_streaming` drives one of these: `on_start` once with the
/// fixed stage set, then `on_batch` once per epoch in order.
pub trait DeltaSink {
    /// Called once before any batch with the stream's stage set.
    fn on_start(&mut self, header: &StreamHeader);
    /// Called once per epoch, in epoch order.
    fn on_batch(&mut self, batch: EpochBatch);
}

/// A [`DeltaSink`] that records the stream verbatim, for replay.
#[derive(Default, Debug, Clone)]
pub struct RecordingSink {
    /// The stream header (set by `on_start`).
    pub header: StreamHeader,
    /// Every batch, in arrival order.
    pub batches: Vec<EpochBatch>,
}

impl DeltaSink for RecordingSink {
    fn on_start(&mut self, header: &StreamHeader) {
        self.header = header.clone();
    }
    fn on_batch(&mut self, batch: EpochBatch) {
        self.batches.push(batch);
    }
}

/// Emitter-side snapshot provider for bounded resync.
///
/// When a collector quarantines a corrupt frame or detects a sequence
/// hole it cannot heal from its reorder buffer, it asks the emitter for
/// the stage's *current cumulative state* instead of falling back to
/// batch mode. The snapshot plus the sequence horizon it covers let the
/// collector build a catch-up delta ([`StageAccumulator::catchup_delta`])
/// and resume the live stream mid-run.
pub trait ResyncSource {
    /// The emitter's current cumulative dump for `stage`, plus the
    /// sequence number of the next delta the emitter will produce for
    /// that stage (i.e. how many deltas the snapshot subsumes).
    /// `None` if the source cannot serve this stage.
    fn snapshot(&self, stage: usize) -> Option<(StageDump, u64)>;
}

/// A [`ResyncSource`] built by replaying a recorded clean stream in
/// lockstep with the consumer.
///
/// Tests drive [`RecordedResync::advance`] with each batch as (or
/// before) the collector ingests its possibly-damaged twin; a resync
/// query then observes exactly the state the live emitter would hold at
/// that point.
#[derive(Debug)]
pub struct RecordedResync {
    accs: Vec<StageAccumulator>,
}

impl RecordedResync {
    /// A source with no history yet for the stages in `header`.
    pub fn new(header: &StreamHeader) -> Self {
        RecordedResync {
            accs: header.stages.iter().map(StageAccumulator::new).collect(),
        }
    }

    /// Folds one clean batch into the emitter-side state.
    ///
    /// Panics on any apply error: the recorded stream is the undamaged
    /// reference, so it must always apply.
    pub fn advance(&mut self, batch: &EpochBatch) {
        for d in &batch.deltas {
            self.accs[d.stage]
                .apply(d)
                .expect("recorded reference stream must be clean");
        }
    }
}

impl ResyncSource for RecordedResync {
    fn snapshot(&self, stage: usize) -> Option<(StageDump, u64)> {
        let acc = self.accs.get(stage)?;
        Some((acc.to_dump(), acc.next_seq()))
    }
}

/// Computes the increment from snapshot `prev` to snapshot `cur` of
/// the same stage, or `None` if nothing changed.
///
/// Pass `prev = None` for the first epoch (the whole snapshot is new).
/// Panics if the snapshots violate the monotone structure documented
/// on the module (shrinking intern tables, mutated nodes, decreasing
/// counters): such a pair cannot come from one live stage, so a loud
/// failure at the emitter beats a silent divergence at the collector.
pub fn diff_dump(
    stage: usize,
    seq: u64,
    prev: Option<&StageDump>,
    cur: &StageDump,
) -> Option<StageDelta> {
    let empty = StageDump::default();
    let prev = prev.unwrap_or(&empty);
    assert!(
        prev.frames.len() <= cur.frames.len()
            && prev.frames[..] == cur.frames[..prev.frames.len()],
        "stage {stage}: frame table is not an append-only extension"
    );
    assert!(
        prev.contexts.len() <= cur.contexts.len()
            && prev.contexts[..] == cur.contexts[..prev.contexts.len()],
        "stage {stage}: context table is not an append-only extension"
    );

    // Synopses: sorted by ctx in both snapshots, one per ctx, minted
    // once; new entries may interleave anywhere in ctx order.
    let mut new_synopses = Vec::new();
    {
        let mut pi = prev.synopses.iter().peekable();
        for &(raw, ctx) in &cur.synopses {
            match pi.peek() {
                Some(&&(praw, pctx)) if pctx == ctx => {
                    assert!(praw == raw, "stage {stage}: synopsis for ctx {ctx} changed");
                    pi.next();
                }
                _ => new_synopses.push((raw, ctx)),
            }
        }
        assert!(
            pi.next().is_none(),
            "stage {stage}: a minted synopsis disappeared"
        );
    }

    // CCTs: sorted by ctx in both snapshots; node lists append-only,
    // metrics monotone.
    let mut ccts = Vec::new();
    {
        let mut pi = prev.ccts.iter().peekable();
        for c in &cur.ccts {
            let old: &[DumpNode] = match pi.peek() {
                Some(p) if p.ctx == c.ctx => {
                    let p = pi.next().unwrap();
                    &p.nodes
                }
                _ => &[],
            };
            assert!(
                old.len() <= c.nodes.len(),
                "stage {stage}: CCT for ctx {} shrank",
                c.ctx
            );
            let mut grown = Vec::new();
            for (i, (o, n)) in old.iter().zip(&c.nodes).enumerate() {
                assert!(
                    o.frame == n.frame && o.parent == n.parent,
                    "stage {stage}: CCT node structure mutated for ctx {}",
                    c.ctx
                );
                let (ds, dc, da) = (
                    n.samples.checked_sub(o.samples),
                    n.cycles.checked_sub(o.cycles),
                    n.calls.checked_sub(o.calls),
                );
                let (ds, dc, da) = (
                    ds.expect("samples decreased"),
                    dc.expect("cycles decreased"),
                    da.expect("calls decreased"),
                );
                if ds != 0 || dc != 0 || da != 0 {
                    grown.push((i as u32, ds, dc, da));
                }
            }
            let new_nodes = c.nodes[old.len()..].to_vec();
            if !new_nodes.is_empty() || !grown.is_empty() {
                ccts.push(CctDelta {
                    ctx: c.ctx,
                    nodes_before: old.len() as u32,
                    new_nodes,
                    grown,
                });
            }
        }
        assert!(pi.next().is_none(), "stage {stage}: a CCT disappeared");
    }

    // Crosstalk: keyed aggregates, sorted, monotone.
    let mut pairs = Vec::new();
    {
        let mut pi = prev.crosstalk_pairs.iter().peekable();
        for p in &cur.crosstalk_pairs {
            let (oc, ow) = match pi.peek() {
                Some(o) if (o.waiter, o.holder) == (p.waiter, p.holder) => {
                    let o = pi.next().unwrap();
                    (o.count, o.total_wait)
                }
                _ => (0, 0),
            };
            let dc = p.count.checked_sub(oc).expect("pair count decreased");
            let dw = p.total_wait.checked_sub(ow).expect("pair wait decreased");
            if dc != 0 || dw != 0 {
                pairs.push(DumpCrosstalkPair {
                    waiter: p.waiter,
                    holder: p.holder,
                    count: dc,
                    total_wait: dw,
                });
            }
        }
        assert!(
            pi.next().is_none(),
            "stage {stage}: a crosstalk pair disappeared"
        );
    }
    let mut waiters = Vec::new();
    {
        let mut pi = prev.crosstalk_waiters.iter().peekable();
        for w in &cur.crosstalk_waiters {
            let (oc, ow) = match pi.peek() {
                Some(o) if o.waiter == w.waiter => {
                    let o = pi.next().unwrap();
                    (o.count, o.total_wait)
                }
                _ => (0, 0),
            };
            let dc = w.count.checked_sub(oc).expect("waiter count decreased");
            let dw = w.total_wait.checked_sub(ow).expect("waiter wait decreased");
            if dc != 0 || dw != 0 {
                waiters.push(DumpCrosstalkWaiter {
                    waiter: w.waiter,
                    count: dc,
                    total_wait: dw,
                });
            }
        }
        assert!(
            pi.next().is_none(),
            "stage {stage}: a crosstalk waiter disappeared"
        );
    }

    let mut d = StageDelta {
        stage,
        seq,
        new_frames: cur.frames[prev.frames.len()..].to_vec(),
        new_contexts: cur.contexts[prev.contexts.len()..].to_vec(),
        new_synopses,
        ccts,
        pairs,
        waiters,
        piggyback_bytes: cur
            .piggyback_bytes
            .checked_sub(prev.piggyback_bytes)
            .expect("piggyback_bytes decreased"),
        messages: cur
            .messages
            .checked_sub(prev.messages)
            .expect("messages decreased"),
        checksum: 0,
    };
    if d.is_empty() {
        return None;
    }
    d.checksum = d.compute_checksum();
    Some(d)
}

/// Why a delta could not be applied.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DeltaError {
    /// The delta's stored checksum does not match its content.
    Checksum {
        /// Stage index of the offending delta.
        stage: usize,
        /// Sequence number of the offending delta.
        seq: u64,
    },
    /// The delta's sequence number is not the next expected one.
    SeqGap {
        /// Stage index of the offending delta.
        stage: usize,
        /// The sequence number the accumulator expected.
        expected: u64,
        /// The sequence number the delta carried.
        got: u64,
    },
    /// The delta references state the accumulator does not have (e.g.
    /// a CCT baseline of the wrong size) — the stream is corrupt or
    /// deltas were applied out of order.
    Inconsistent {
        /// Stage index of the offending delta.
        stage: usize,
        /// What was inconsistent.
        what: &'static str,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::Checksum { stage, seq } => {
                write!(f, "stage {stage} delta seq {seq}: checksum mismatch")
            }
            DeltaError::SeqGap {
                stage,
                expected,
                got,
            } => write!(
                f,
                "stage {stage}: delta sequence gap (expected {expected}, got {got})"
            ),
            DeltaError::Inconsistent { stage, what } => {
                write!(f, "stage {stage}: inconsistent delta: {what}")
            }
        }
    }
}

/// Replays [`StageDelta`]s back into the exact [`StageDump`] the
/// emitting stage would snapshot.
///
/// Per-context state (CCTs, synopses) is held in dense arrays indexed
/// by context id — context ids are intern indices, so index order *is*
/// the dump's documented ctx sort order, with no tree or hash lookup on
/// the apply path. Crosstalk keys are sparse and stay in `BTreeMap`s.
/// Either way [`StageAccumulator::to_dump`] is equal to the source
/// snapshot after every applied delta — and therefore byte-identical
/// under [`crate::dumpjson`] serialization.
#[derive(Clone, Debug)]
pub struct StageAccumulator {
    /// Process id (from the stream header).
    pub proc: u32,
    /// Stage name (from the stream header).
    pub stage_name: String,
    /// Interned frame names so far.
    pub frames: Vec<String>,
    /// Interned contexts so far.
    pub contexts: Vec<DumpContext>,
    /// Per context id: its CCT node list, if one has accumulated.
    /// Crate-visible so [`crate::wire::apply_batch`] can stream decoded
    /// columns straight into the dense layout.
    pub(crate) ccts: Vec<Option<Vec<DumpNode>>>,
    /// Per context id: its minted synopsis, if any.
    pub(crate) synopses: Vec<Option<u64>>,
    pub(crate) pairs: BTreeMap<(u32, u32), (u64, u64)>,
    pub(crate) waiters: BTreeMap<u32, (u64, u64)>,
    pub(crate) piggyback_bytes: u64,
    pub(crate) messages: u64,
    pub(crate) next_seq: u64,
}

impl StageAccumulator {
    /// An empty accumulator for the stage identified by `header`.
    pub fn new(header: &StreamStage) -> Self {
        StageAccumulator {
            proc: header.proc,
            stage_name: header.stage_name.clone(),
            frames: Vec::new(),
            contexts: Vec::new(),
            ccts: Vec::new(),
            synopses: Vec::new(),
            pairs: BTreeMap::new(),
            waiters: BTreeMap::new(),
            piggyback_bytes: 0,
            messages: 0,
            next_seq: 0,
        }
    }

    /// The next per-stage sequence number this accumulator expects.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Number of contexts interned so far.
    pub fn context_count(&self) -> usize {
        self.contexts.len()
    }

    /// The CCT node list for `ctx`, if one has accumulated.
    pub fn cct_nodes(&self, ctx: u32) -> Option<&[DumpNode]> {
        self.ccts.get(ctx as usize).and_then(|v| v.as_deref())
    }

    /// Applies one delta, verifying its sequence number and checksum.
    pub fn apply(&mut self, d: &StageDelta) -> Result<(), DeltaError> {
        if d.seq != self.next_seq {
            return Err(DeltaError::SeqGap {
                stage: d.stage,
                expected: self.next_seq,
                got: d.seq,
            });
        }
        if d.compute_checksum() != d.checksum {
            return Err(DeltaError::Checksum {
                stage: d.stage,
                seq: d.seq,
            });
        }
        let incon = |what| DeltaError::Inconsistent {
            stage: d.stage,
            what,
        };
        // Validate keyed baselines before mutating anything, so a bad
        // delta leaves the accumulator untouched.
        for c in &d.ccts {
            let have = self.cct_nodes(c.ctx).map_or(0, |n| n.len());
            if have != c.nodes_before as usize {
                return Err(incon("CCT baseline size mismatch"));
            }
            if c.grown.iter().any(|&(i, ..)| i as usize >= have) {
                return Err(incon("CCT growth targets a missing node"));
            }
        }
        if d.new_synopses
            .iter()
            .any(|&(_, ctx)| self.synopses.get(ctx as usize).copied().flatten().is_some())
        {
            return Err(incon("synopsis re-minted for a context"));
        }

        self.frames.extend(d.new_frames.iter().cloned());
        self.contexts.extend(d.new_contexts.iter().cloned());
        for &(raw, ctx) in &d.new_synopses {
            let i = ctx as usize;
            if self.synopses.len() <= i {
                self.synopses.resize(i + 1, None);
            }
            self.synopses[i] = Some(raw);
        }
        for c in &d.ccts {
            let i = c.ctx as usize;
            if self.ccts.len() <= i {
                self.ccts.resize_with(i + 1, || None);
            }
            let nodes = self.ccts[i].get_or_insert_with(Vec::new);
            for &(i, s, cy, ca) in &c.grown {
                let n = &mut nodes[i as usize];
                n.samples += s;
                n.cycles += cy;
                n.calls += ca;
            }
            nodes.extend(c.new_nodes.iter().copied());
        }
        for p in &d.pairs {
            let e = self.pairs.entry((p.waiter, p.holder)).or_insert((0, 0));
            e.0 += p.count;
            e.1 += p.total_wait;
        }
        for w in &d.waiters {
            let e = self.waiters.entry(w.waiter).or_insert((0, 0));
            e.0 += w.count;
            e.1 += w.total_wait;
        }
        self.piggyback_bytes += d.piggyback_bytes;
        self.messages += d.messages;
        self.next_seq += 1;
        Ok(())
    }

    /// Fast-forwards the expected sequence number after a resync.
    ///
    /// A resync snapshot covers every delta the emitter produced up to
    /// some sequence horizon; once the snapshot is folded in, the
    /// accumulator must expect the emitter's *next live* delta rather
    /// than the ones the snapshot subsumed. Panics if asked to move
    /// backwards — that would re-apply already-counted increments.
    pub fn set_next_seq(&mut self, next: u64) {
        assert!(
            next >= self.next_seq,
            "stage seq cannot rewind: {} -> {next}",
            self.next_seq
        );
        self.next_seq = next;
    }

    /// The synthetic catch-up delta from this accumulator's state to
    /// an emitter-side `snapshot` of the same stage, or `None` if the
    /// accumulator is already caught up.
    ///
    /// The delta is stamped with the accumulator's own next sequence
    /// number so it flows through [`StageAccumulator::apply`] — and
    /// therefore through a collector's normal ingest path — unchanged.
    /// Panics (via [`diff_dump`]) if `snapshot` is not a monotone
    /// extension of the accumulated state; `apply` is transactional, so
    /// any accumulator fed a prefix of a clean stream is a valid base.
    pub fn catchup_delta(&self, stage: usize, snapshot: &StageDump) -> Option<StageDelta> {
        diff_dump(stage, self.next_seq, Some(&self.to_dump()), snapshot)
    }

    /// The dump this accumulator's state reconstructs.
    pub fn to_dump(&self) -> StageDump {
        StageDump {
            proc: self.proc,
            stage_name: self.stage_name.clone(),
            frames: self.frames.clone(),
            contexts: self.contexts.clone(),
            ccts: self
                .ccts
                .iter()
                .enumerate()
                .filter_map(|(ctx, nodes)| {
                    nodes.as_ref().map(|nodes| DumpCct {
                        ctx: ctx as u32,
                        nodes: nodes.clone(),
                    })
                })
                .collect(),
            synopses: self
                .synopses
                .iter()
                .enumerate()
                .filter_map(|(ctx, raw)| raw.map(|raw| (raw, ctx as u32)))
                .collect(),
            crosstalk_pairs: self
                .pairs
                .iter()
                .map(|(&(waiter, holder), &(count, total_wait))| DumpCrosstalkPair {
                    waiter,
                    holder,
                    count,
                    total_wait,
                })
                .collect(),
            crosstalk_waiters: self
                .waiters
                .iter()
                .map(|(&waiter, &(count, total_wait))| DumpCrosstalkWaiter {
                    waiter,
                    count,
                    total_wait,
                })
                .collect(),
            piggyback_bytes: self.piggyback_bytes,
            messages: self.messages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_dump() -> StageDump {
        StageDump {
            proc: 1,
            stage_name: "app".into(),
            frames: vec!["main".into(), "handle".into()],
            contexts: vec![
                DumpContext { atoms: vec![] },
                DumpContext {
                    atoms: vec![DumpAtom::Frame(1)],
                },
            ],
            ccts: vec![DumpCct {
                ctx: 1,
                nodes: vec![
                    DumpNode {
                        frame: None,
                        parent: None,
                        samples: 0,
                        cycles: 0,
                        calls: 0,
                    },
                    DumpNode {
                        frame: Some(1),
                        parent: Some(0),
                        samples: 3,
                        cycles: 300,
                        calls: 1,
                    },
                ],
            }],
            synopses: vec![(0x0100_0001, 1)],
            crosstalk_pairs: vec![DumpCrosstalkPair {
                waiter: 1,
                holder: 0,
                count: 2,
                total_wait: 50,
            }],
            crosstalk_waiters: vec![DumpCrosstalkWaiter {
                waiter: 1,
                count: 4,
                total_wait: 50,
            }],
            piggyback_bytes: 8,
            messages: 2,
        }
    }

    fn grown_dump() -> StageDump {
        let mut d = base_dump();
        d.frames.push("query".into());
        d.contexts.push(DumpContext {
            atoms: vec![DumpAtom::Remote(vec![0x0100_0001])],
        });
        // Existing CCT grows a node and existing node metrics grow.
        d.ccts[0].nodes[1].samples += 2;
        d.ccts[0].nodes[1].cycles += 120;
        d.ccts[0].nodes.push(DumpNode {
            frame: Some(2),
            parent: Some(1),
            samples: 1,
            cycles: 40,
            calls: 1,
        });
        // A new CCT for an earlier context id than any new one.
        d.ccts.insert(
            0,
            DumpCct {
                ctx: 0,
                nodes: vec![DumpNode {
                    frame: None,
                    parent: None,
                    samples: 1,
                    cycles: 10,
                    calls: 0,
                }],
            },
        );
        // A synopsis minted for the new context (ctx 2 > ctx 1).
        d.synopses.push((0x0100_0002, 2));
        d.crosstalk_pairs[0].count += 1;
        d.crosstalk_pairs[0].total_wait += 25;
        d.crosstalk_waiters.push(DumpCrosstalkWaiter {
            waiter: 2,
            count: 1,
            total_wait: 0,
        });
        d.piggyback_bytes += 4;
        d.messages += 1;
        d
    }

    fn header() -> StreamStage {
        StreamStage {
            proc: 1,
            stage_name: "app".into(),
        }
    }

    #[test]
    fn diff_apply_roundtrip() {
        let a = base_dump();
        let b = grown_dump();
        let d0 = diff_dump(0, 0, None, &a).expect("first delta is non-empty");
        let d1 = diff_dump(0, 1, Some(&a), &b).expect("growth delta is non-empty");
        let mut acc = StageAccumulator::new(&header());
        acc.apply(&d0).unwrap();
        assert_eq!(acc.to_dump(), a);
        acc.apply(&d1).unwrap();
        assert_eq!(acc.to_dump(), b);
    }

    #[test]
    fn unchanged_snapshot_yields_no_delta() {
        let a = base_dump();
        assert!(diff_dump(0, 1, Some(&a), &a).is_none());
    }

    #[test]
    fn checksum_detects_corruption() {
        let a = base_dump();
        let mut d = diff_dump(0, 0, None, &a).unwrap();
        d.piggyback_bytes += 1;
        let mut acc = StageAccumulator::new(&header());
        assert!(matches!(
            acc.apply(&d),
            Err(DeltaError::Checksum { stage: 0, seq: 0 })
        ));
    }

    #[test]
    fn seq_gap_detected() {
        let a = base_dump();
        let d = diff_dump(0, 3, None, &a).unwrap();
        let mut acc = StageAccumulator::new(&header());
        assert!(matches!(
            acc.apply(&d),
            Err(DeltaError::SeqGap {
                stage: 0,
                expected: 0,
                got: 3
            })
        ));
    }

    #[test]
    fn remap_proc_tracks_dump_remap() {
        let b = grown_dump();
        let map = |p: u32| if p == 1 { Some(7) } else { None };
        let d = diff_dump(0, 0, None, &b).unwrap().with_remapped_proc(5, &map);
        let mut acc = StageAccumulator::new(&StreamStage {
            proc: 7,
            stage_name: "app".into(),
        });
        acc.apply(&d).unwrap();
        assert_eq!(acc.to_dump(), b.with_remapped_proc(&map));
        assert_eq!(d.stage, 5);
    }

    #[test]
    fn catchup_delta_resyncs_after_a_lost_delta() {
        let a = base_dump();
        let b = grown_dump();
        let d0 = diff_dump(0, 0, None, &a).unwrap();
        // The growth delta (seq 1) is lost in transit.
        let _lost = diff_dump(0, 1, Some(&a), &b).unwrap();
        let mut acc = StageAccumulator::new(&header());
        acc.apply(&d0).unwrap();
        // Resync from the emitter snapshot covering seqs 0..2.
        let cd = acc.catchup_delta(0, &b).expect("acc is behind");
        assert_eq!(cd.seq, acc.next_seq());
        acc.apply(&cd).unwrap();
        acc.set_next_seq(2);
        assert_eq!(acc.to_dump(), b);
        assert_eq!(acc.next_seq(), 2);
        // Already caught up: no further catch-up delta.
        assert!(acc.catchup_delta(0, &b).is_none());
    }

    #[test]
    fn recorded_resync_tracks_the_reference_stream() {
        let a = base_dump();
        let b = grown_dump();
        let hdr = StreamHeader {
            stages: vec![header()],
        };
        let batch = |epoch, d: StageDelta| EpochBatch {
            epoch,
            seq: epoch,
            end: (epoch + 1) * 100,
            deltas: vec![d],
        };
        let mut src = RecordedResync::new(&hdr);
        src.advance(&batch(0, diff_dump(0, 0, None, &a).unwrap()));
        src.advance(&batch(1, diff_dump(0, 1, Some(&a), &b).unwrap()));
        let (dump, next) = src.snapshot(0).unwrap();
        assert_eq!(dump, b);
        assert_eq!(next, 2);
        assert!(src.snapshot(9).is_none());
    }

    #[test]
    #[should_panic(expected = "append-only")]
    fn shrinking_table_panics() {
        let a = grown_dump();
        let b = base_dump();
        diff_dump(0, 1, Some(&a), &b);
    }
}
