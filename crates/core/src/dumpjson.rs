//! JSON serialization of stage dumps — the §7.1 on-disk profile format.
//!
//! Hand-rolled (no serde: the build environment is offline and the
//! format is small and stable). The encoding matches what
//! serde_json's derive would have produced for the [`StageDump`] types:
//! struct fields as object keys, tuple `(a, b)` as `[a, b]`, enum
//! variants as `{"Variant": payload}`, `Option` as the payload or
//! `null`. Parsing is strict about structure but tolerant of unknown
//! object keys, so the format can grow.
//!
//! Like everything under stitching, parsed dumps are *untrusted*:
//! errors come back as [`StitchError`], never a panic.

use crate::stitch::{
    DumpAtom, DumpCct, DumpContext, DumpCrosstalkPair, DumpCrosstalkWaiter, DumpNode, StageDump,
    StitchError,
};
use crate::txt::{push_u32, push_u64};

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

pub(crate) fn esc(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let b = c as u32;
                out.push_str("\\u00");
                out.push(char::from_digit(b >> 4, 16).unwrap());
                out.push(char::from_digit(b & 0xf, 16).unwrap());
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_u32_list(xs: &[u32], out: &mut String) {
    out.push('[');
    for (i, &x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_u32(out, x);
    }
    out.push(']');
}

fn write_u64_list(xs: &[u64], out: &mut String) {
    out.push('[');
    for (i, &x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_u64(out, x);
    }
    out.push(']');
}

fn write_atom(a: &DumpAtom, out: &mut String) {
    match a {
        DumpAtom::Frame(f) => {
            out.push_str("{\"Frame\":");
            push_u32(out, *f);
            out.push('}');
        }
        DumpAtom::Path(p) => {
            out.push_str("{\"Path\":");
            write_u32_list(p, out);
            out.push('}');
        }
        DumpAtom::Remote(r) => {
            out.push_str("{\"Remote\":");
            write_u64_list(r, out);
            out.push('}');
        }
    }
}

fn write_opt_u32(v: Option<u32>, out: &mut String) {
    match v {
        Some(x) => push_u32(out, x),
        None => out.push_str("null"),
    }
}

fn write_node(n: &DumpNode, out: &mut String) {
    out.push_str("{\"frame\":");
    write_opt_u32(n.frame, out);
    out.push_str(",\"parent\":");
    write_opt_u32(n.parent, out);
    out.push_str(",\"samples\":");
    push_u64(out, n.samples);
    out.push_str(",\"cycles\":");
    push_u64(out, n.cycles);
    out.push_str(",\"calls\":");
    push_u64(out, n.calls);
    out.push('}');
}

/// Rough per-dump byte estimate used to preallocate the output buffer:
/// every node costs ~60 bytes of keys plus ~3 numbers, contexts and
/// synopses a few tens each. Over-estimating slightly is fine — the
/// point is avoiding repeated buffer regrowth mid-serialize.
fn estimate_dump_bytes(d: &StageDump) -> usize {
    let nodes: usize = d.ccts.iter().map(|c| c.nodes.len()).sum();
    let frames: usize = d.frames.iter().map(|f| f.len() + 4).sum();
    let atoms: usize = d
        .contexts
        .iter()
        .map(|c| {
            c.atoms
                .iter()
                .map(|a| match a {
                    DumpAtom::Frame(_) => 16,
                    DumpAtom::Path(p) => 16 + 8 * p.len(),
                    DumpAtom::Remote(r) => 18 + 8 * r.len(),
                })
                .sum::<usize>()
                + 16
        })
        .sum();
    256 + frames
        + atoms
        + nodes * 96
        + d.ccts.len() * 24
        + d.synopses.len() * 24
        + d.crosstalk_pairs.len() * 72
        + d.crosstalk_waiters.len() * 56
}

/// Serializes one stage dump.
pub fn dump_to_json(d: &StageDump) -> String {
    let mut out = String::with_capacity(estimate_dump_bytes(d));
    write_dump(d, &mut out);
    out
}

fn write_dump(d: &StageDump, out: &mut String) {
    out.push_str("{\n  \"proc\": ");
    push_u32(out, d.proc);
    out.push_str(",\n  \"stage_name\": ");
    esc(&d.stage_name, out);
    out.push_str(",\n  \"frames\": [");
    for (i, f) in d.frames.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        esc(f, out);
    }
    out.push_str("],\n  \"contexts\": [");
    for (i, c) in d.contexts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"atoms\":[");
        for (j, a) in c.atoms.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            write_atom(a, out);
        }
        out.push_str("]}");
    }
    out.push_str("],\n  \"ccts\": [");
    for (i, c) in d.ccts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"ctx\":");
        push_u32(out, c.ctx);
        out.push_str(",\"nodes\":[");
        for (j, n) in c.nodes.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            write_node(n, out);
        }
        out.push_str("]}");
    }
    out.push_str("],\n  \"synopses\": [");
    for (i, &(raw, ctx)) in d.synopses.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        push_u64(out, raw);
        out.push(',');
        push_u32(out, ctx);
        out.push(']');
    }
    out.push_str("],\n  \"crosstalk_pairs\": [");
    for (i, p) in d.crosstalk_pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"waiter\":");
        push_u32(out, p.waiter);
        out.push_str(",\"holder\":");
        push_u32(out, p.holder);
        out.push_str(",\"count\":");
        push_u64(out, p.count);
        out.push_str(",\"total_wait\":");
        push_u64(out, p.total_wait);
        out.push('}');
    }
    out.push_str("],\n  \"crosstalk_waiters\": [");
    for (i, w) in d.crosstalk_waiters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"waiter\":");
        push_u32(out, w.waiter);
        out.push_str(",\"count\":");
        push_u64(out, w.count);
        out.push_str(",\"total_wait\":");
        push_u64(out, w.total_wait);
        out.push('}');
    }
    out.push_str("],\n  \"piggyback_bytes\": ");
    push_u64(out, d.piggyback_bytes);
    out.push_str(",\n  \"messages\": ");
    push_u64(out, d.messages);
    out.push_str("\n}");
}

/// Serializes a set of stage dumps (the on-disk profile file).
pub fn to_json(dumps: &[StageDump]) -> String {
    let cap: usize = 8 + dumps.iter().map(estimate_dump_bytes).sum::<usize>();
    let mut out = String::with_capacity(cap);
    out.push_str("[\n");
    for (i, d) in dumps.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        write_dump(d, &mut out);
    }
    out.push_str("\n]\n");
    out
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// A parsed JSON value. Numbers are unsigned integers — the only kind
/// the dump and repro formats contain. Shared with [`crate::repro`],
/// which serializes chaos scenarios through the same layer.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Value {
    Null,
    Bool(bool),
    Num(u64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, StitchError> {
        Err(StitchError::Json {
            offset: self.pos,
            msg: msg.into(),
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.pos) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.b.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), StitchError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", c as char))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.b[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, StitchError> {
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => {
                if self.eat_lit("null") {
                    Ok(Value::Null)
                } else {
                    self.err("bad literal")
                }
            }
            Some(b't') => {
                if self.eat_lit("true") {
                    Ok(Value::Bool(true))
                } else {
                    self.err("bad literal")
                }
            }
            Some(b'f') => {
                if self.eat_lit("false") {
                    Ok(Value::Bool(false))
                } else {
                    self.err("bad literal")
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c.is_ascii_digit() => self.number(),
            Some(b'-') => self.err("negative numbers do not occur in stage dumps"),
            Some(c) => self.err(format!("unexpected byte '{}'", c as char)),
        }
    }

    fn number(&mut self) -> Result<Value, StitchError> {
        let start = self.pos;
        while self
            .b
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_digit())
        {
            self.pos += 1;
        }
        if self
            .b
            .get(self.pos)
            .is_some_and(|&c| c == b'.' || c == b'e' || c == b'E')
        {
            return self.err("non-integer numbers do not occur in stage dumps");
        }
        let s = std::str::from_utf8(&self.b[start..self.pos]).unwrap_or("");
        match s.parse::<u64>() {
            Ok(n) => Ok(Value::Num(n)),
            Err(_) => self.err("integer out of range"),
        }
    }

    fn string(&mut self) -> Result<String, StitchError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&c) = self.b.get(self.pos) else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.b.get(self.pos) else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.b.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.b[self.pos..self.pos + 4])
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            self.pos += 4;
                            match hex.and_then(char::from_u32) {
                                Some(ch) => out.push(ch),
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte stream.
                    let start = self.pos - 1;
                    let len = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return self.err("invalid UTF-8 in string"),
                    };
                    if start + len > self.b.len() {
                        return self.err("truncated UTF-8 in string");
                    }
                    match std::str::from_utf8(&self.b[start..start + len]) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos = start + len;
                        }
                        Err(_) => return self.err("invalid UTF-8 in string"),
                    }
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, StitchError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Value, StitchError> {
        self.expect(b'{')?;
        let mut items = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(items));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let v = self.value()?;
            items.push((key, v));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(items));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

pub(crate) fn parse_value(s: &str) -> Result<Value, StitchError> {
    let mut p = Parser {
        b: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.b.len() {
        return p.err("trailing data after JSON value");
    }
    Ok(v)
}

// ---------------------------------------------------------------------
// Value → StageDump
// ---------------------------------------------------------------------

fn schema<T>(msg: impl Into<String>) -> Result<T, StitchError> {
    Err(StitchError::Schema(msg.into()))
}

impl Value {
    pub(crate) fn as_u64(&self, what: &str) -> Result<u64, StitchError> {
        match self {
            Value::Num(n) => Ok(*n),
            _ => schema(format!("{what}: expected number")),
        }
    }

    pub(crate) fn as_u32(&self, what: &str) -> Result<u32, StitchError> {
        let n = self.as_u64(what)?;
        u32::try_from(n).map_err(|_| StitchError::Schema(format!("{what}: {n} exceeds u32")))
    }

    pub(crate) fn as_opt_u32(&self, what: &str) -> Result<Option<u32>, StitchError> {
        match self {
            Value::Null => Ok(None),
            v => v.as_u32(what).map(Some),
        }
    }

    pub(crate) fn as_str(&self, what: &str) -> Result<&str, StitchError> {
        match self {
            Value::Str(s) => Ok(s),
            _ => schema(format!("{what}: expected string")),
        }
    }

    pub(crate) fn as_arr(&self, what: &str) -> Result<&[Value], StitchError> {
        match self {
            Value::Arr(a) => Ok(a),
            _ => schema(format!("{what}: expected array")),
        }
    }

    pub(crate) fn get<'v>(&'v self, key: &str) -> Option<&'v Value> {
        match self {
            Value::Obj(items) => items.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn field<'v>(&'v self, key: &str) -> Result<&'v Value, StitchError> {
        self.get(key)
            .ok_or_else(|| StitchError::Schema(format!("missing field '{key}'")))
    }
}

fn u32_list(v: &Value, what: &str) -> Result<Vec<u32>, StitchError> {
    v.as_arr(what)?.iter().map(|x| x.as_u32(what)).collect()
}

fn u64_list(v: &Value, what: &str) -> Result<Vec<u64>, StitchError> {
    v.as_arr(what)?.iter().map(|x| x.as_u64(what)).collect()
}

fn atom_of(v: &Value) -> Result<DumpAtom, StitchError> {
    let Value::Obj(items) = v else {
        return schema("atom: expected {\"Variant\": ...}");
    };
    if items.len() != 1 {
        return schema("atom: expected exactly one variant key");
    }
    let (k, payload) = &items[0];
    match k.as_str() {
        "Frame" => Ok(DumpAtom::Frame(payload.as_u32("Frame")?)),
        "Path" => Ok(DumpAtom::Path(u32_list(payload, "Path")?)),
        "Remote" => Ok(DumpAtom::Remote(u64_list(payload, "Remote")?)),
        other => schema(format!("atom: unknown variant '{other}'")),
    }
}

fn node_of(v: &Value) -> Result<DumpNode, StitchError> {
    Ok(DumpNode {
        frame: v.field("frame")?.as_opt_u32("frame")?,
        parent: v.field("parent")?.as_opt_u32("parent")?,
        samples: v.field("samples")?.as_u64("samples")?,
        cycles: v.field("cycles")?.as_u64("cycles")?,
        calls: v.field("calls")?.as_u64("calls")?,
    })
}

fn dump_of(v: &Value) -> Result<StageDump, StitchError> {
    let contexts = v
        .field("contexts")?
        .as_arr("contexts")?
        .iter()
        .map(|c| {
            Ok(DumpContext {
                atoms: c
                    .field("atoms")?
                    .as_arr("atoms")?
                    .iter()
                    .map(atom_of)
                    .collect::<Result<_, _>>()?,
            })
        })
        .collect::<Result<_, StitchError>>()?;
    let ccts = v
        .field("ccts")?
        .as_arr("ccts")?
        .iter()
        .map(|c| {
            Ok(DumpCct {
                ctx: c.field("ctx")?.as_u32("ctx")?,
                nodes: c
                    .field("nodes")?
                    .as_arr("nodes")?
                    .iter()
                    .map(node_of)
                    .collect::<Result<_, _>>()?,
            })
        })
        .collect::<Result<_, StitchError>>()?;
    let synopses = v
        .field("synopses")?
        .as_arr("synopses")?
        .iter()
        .map(|p| {
            let pair = p.as_arr("synopsis pair")?;
            if pair.len() != 2 {
                return schema("synopsis pair: expected [raw, ctx]");
            }
            Ok((pair[0].as_u64("synopsis")?, pair[1].as_u32("synopsis ctx")?))
        })
        .collect::<Result<_, StitchError>>()?;
    let crosstalk_pairs = v
        .field("crosstalk_pairs")?
        .as_arr("crosstalk_pairs")?
        .iter()
        .map(|p| {
            Ok(DumpCrosstalkPair {
                waiter: p.field("waiter")?.as_u32("waiter")?,
                holder: p.field("holder")?.as_u32("holder")?,
                count: p.field("count")?.as_u64("count")?,
                total_wait: p.field("total_wait")?.as_u64("total_wait")?,
            })
        })
        .collect::<Result<_, StitchError>>()?;
    let crosstalk_waiters = v
        .field("crosstalk_waiters")?
        .as_arr("crosstalk_waiters")?
        .iter()
        .map(|w| {
            Ok(DumpCrosstalkWaiter {
                waiter: w.field("waiter")?.as_u32("waiter")?,
                count: w.field("count")?.as_u64("count")?,
                total_wait: w.field("total_wait")?.as_u64("total_wait")?,
            })
        })
        .collect::<Result<_, StitchError>>()?;
    Ok(StageDump {
        proc: v.field("proc")?.as_u32("proc")?,
        stage_name: v.field("stage_name")?.as_str("stage_name")?.to_owned(),
        frames: v
            .field("frames")?
            .as_arr("frames")?
            .iter()
            .map(|f| f.as_str("frame name").map(str::to_owned))
            .collect::<Result<_, _>>()?,
        contexts,
        ccts,
        synopses,
        crosstalk_pairs,
        crosstalk_waiters,
        piggyback_bytes: v.field("piggyback_bytes")?.as_u64("piggyback_bytes")?,
        messages: v.field("messages")?.as_u64("messages")?,
    })
}

/// Parses one stage dump.
pub fn dump_from_json(s: &str) -> Result<StageDump, StitchError> {
    dump_of(&parse_value(s)?)
}

/// Parses a set of stage dumps (the on-disk profile file).
pub fn from_json(s: &str) -> Result<Vec<StageDump>, StitchError> {
    parse_value(s)?
        .as_arr("top level")?
        .iter()
        .map(dump_of)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StageDump {
        StageDump {
            proc: 3,
            stage_name: "tomcat \"quoted\"\n".into(),
            frames: vec!["main".into(), "doGet".into()],
            contexts: vec![
                DumpContext::default(),
                DumpContext {
                    atoms: vec![
                        DumpAtom::Frame(1),
                        DumpAtom::Path(vec![0, 1]),
                        DumpAtom::Remote(vec![0x0100_0001, 0x0200_0007]),
                    ],
                },
            ],
            ccts: vec![DumpCct {
                ctx: 1,
                nodes: vec![
                    DumpNode {
                        frame: None,
                        parent: None,
                        samples: 1,
                        cycles: 10,
                        calls: 0,
                    },
                    DumpNode {
                        frame: Some(1),
                        parent: Some(0),
                        samples: 2,
                        cycles: 20,
                        calls: 3,
                    },
                ],
            }],
            synopses: vec![(0x0300_0001, 1)],
            crosstalk_pairs: vec![DumpCrosstalkPair {
                waiter: 1,
                holder: 0,
                count: 2,
                total_wait: 300,
            }],
            crosstalk_waiters: vec![DumpCrosstalkWaiter {
                waiter: 1,
                count: 5,
                total_wait: 500,
            }],
            piggyback_bytes: 99,
            messages: 12,
        }
    }

    #[test]
    fn roundtrip_single_and_multi() {
        let d = sample();
        let back = dump_from_json(&dump_to_json(&d)).unwrap();
        assert_eq!(d, back);
        let set = vec![d.clone(), StageDump::default(), d];
        let back = from_json(&to_json(&set)).unwrap();
        assert_eq!(set, back);
    }

    #[test]
    fn unicode_and_escapes_roundtrip() {
        let d = StageDump {
            stage_name: "héllo→世界\t\\".into(),
            ..Default::default()
        };
        let back = dump_from_json(&dump_to_json(&d)).unwrap();
        assert_eq!(d.stage_name, back.stage_name);
        // \u escapes parse too.
        let j = dump_to_json(&d).replace("héllo", "h\\u00e9llo");
        let back = dump_from_json(&j).unwrap();
        assert_eq!(d.stage_name, back.stage_name);
    }

    #[test]
    fn malformed_input_is_an_error_not_a_panic() {
        for bad in [
            "",
            "{",
            "[{]",
            "{\"proc\": -3}",
            "{\"proc\": 1.5}",
            "nonsense",
            "[{\"proc\":1}]",
            "{\"proc\": 99999999999999999999}",
            "[1,2,",
            "\"unterminated",
            "{\"proc\": 1} trailing",
        ] {
            assert!(from_json(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn unknown_fields_are_ignored() {
        let d = StageDump::default();
        let j = dump_to_json(&d).replacen('{', "{\n  \"future_field\": [1, {\"x\": true}],", 1);
        assert_eq!(dump_from_json(&j).unwrap(), d);
    }
}
