//! Transaction flow through events (§4.1, Figure 4).
//!
//! An event-driven program executes a transaction as a sequence of event
//! handlers, linked by continuations. The paper's instrumented
//! `libevent` (Figure 4) does two things:
//!
//! 1. In the event loop, before a handler runs, the *current transaction
//!    context* becomes the event's stored context concatenated with the
//!    handler (collapsing repeats and pruning loops).
//! 2. When a new event is registered, it captures the current
//!    transaction context.
//!
//! [`EventTracker`] is that logic, independent of any concrete event
//! loop; `whodunit-sim`'s event loop and the profiler drive it.

use crate::context::{ContextTable, CtxId};
use crate::frame::FrameId;

/// Transaction context stored on an event/continuation.
///
/// This is the paper's `ev_tran_ctxt` field added to `struct event`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EventCtx(pub CtxId);

impl Default for EventCtx {
    fn default() -> Self {
        EventCtx(CtxId::ROOT)
    }
}

/// The Figure 4 bookkeeping: tracks `curr_tran_ctxt` for one event loop.
#[derive(Debug, Default)]
pub struct EventTracker {
    current: Option<CtxId>,
}

impl EventTracker {
    /// Creates a tracker with no transaction executing.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current transaction context (`curr_tran_ctxt`), if a handler
    /// is executing.
    pub fn current(&self) -> Option<CtxId> {
        self.current
    }

    /// Figure 4 lines 5–6: a handler is about to run for `ev`.
    ///
    /// Computes and installs the new current context: the event's stored
    /// context concatenated with the handler frame (the table's policy
    /// collapses repeats and prunes loops). Returns the installed
    /// context so the profiler can switch CCTs.
    pub fn dispatch(&mut self, table: &mut ContextTable, ev: EventCtx, handler: FrameId) -> CtxId {
        let ctx = table.append_frame(ev.0, handler);
        self.current = Some(ctx);
        ctx
    }

    /// Figure 4 line 12: a new event is created and registered while a
    /// handler executes; it captures the current transaction context.
    ///
    /// When called outside any handler (the initial event registration
    /// in `main`), the captured context is the root, matching the paper:
    /// "when the initial event handler is scheduled, its transaction
    /// context is simply the call path".
    pub fn make_event(&self) -> EventCtx {
        EventCtx(self.current.unwrap_or(CtxId::ROOT))
    }

    /// The handler returned: no transaction context is current anymore.
    pub fn handler_done(&mut self) {
        self.current = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextAtom;

    #[test]
    fn initial_event_carries_root_context() {
        let t = EventTracker::new();
        assert_eq!(t.make_event(), EventCtx(CtxId::ROOT));
    }

    #[test]
    fn handler_sequences_accumulate() {
        let mut ctxs = ContextTable::default();
        let mut t = EventTracker::new();
        let accept = FrameId(1);
        let read = FrameId(2);

        let c1 = t.dispatch(&mut ctxs, EventCtx::default(), accept);
        let ev = t.make_event();
        assert_eq!(ev.0, c1);
        t.handler_done();
        assert_eq!(t.current(), None);

        let c2 = t.dispatch(&mut ctxs, ev, read);
        assert_eq!(
            ctxs.value(c2).atoms(),
            &[ContextAtom::Frame(accept), ContextAtom::Frame(read)]
        );
    }

    #[test]
    fn rescheduled_handler_collapses() {
        // §4.1: a read handler that needs several iterations appears
        // once in the context.
        let mut ctxs = ContextTable::default();
        let mut t = EventTracker::new();
        let read = FrameId(2);
        let c1 = t.dispatch(&mut ctxs, EventCtx::default(), read);
        let ev = t.make_event();
        let c2 = t.dispatch(&mut ctxs, ev, read);
        assert_eq!(c1, c2);
    }

    #[test]
    fn persistent_connection_loops_prune() {
        // §4.1: [accept, read, write] + read → [accept, read].
        let mut ctxs = ContextTable::default();
        let mut t = EventTracker::new();
        let (accept, read, write) = (FrameId(1), FrameId(2), FrameId(3));
        let c = t.dispatch(&mut ctxs, EventCtx::default(), accept);
        let c = t.dispatch(&mut ctxs, EventCtx(c), read);
        let after_read = c;
        let c = t.dispatch(&mut ctxs, EventCtx(c), write);
        let c = t.dispatch(&mut ctxs, EventCtx(c), read);
        assert_eq!(c, after_read);
    }
}
