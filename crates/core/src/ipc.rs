//! Message-passing transaction propagation (§5, §7.4).
//!
//! Whodunit wraps send and receive operations. On send, the wrapper
//! computes the sender's transaction context at the send point, mints a
//! synopsis for it, and piggybacks a synopsis chain on the message. On
//! receive, the wrapper scans the chain: if any synopsis in it was
//! minted by the receiver, the message is a *response* to a request the
//! receiver sent earlier (the paper's "prefix originated from itself"
//! test) and the receiver switches back to the CCT it was using then;
//! otherwise the message is a *request* and the receiver adopts the
//! chain as its transaction context.
//!
//! This module holds the wire-level logic; [`crate::profiler`] plugs it
//! into the runtime.

use crate::context::{ContextAtom, ContextTable, CtxId};
use crate::synopsis::{SynChain, Synopsis, SynopsisTable};
use std::collections::{HashMap, VecDeque};

/// What a send wrapper hands the substrate to put on the wire.
#[derive(Clone, Debug, Default)]
pub struct SendInfo {
    /// The piggybacked synopsis chain (absent when profiling is off).
    pub chain: Option<SynChain>,
    /// Extra wire bytes the piggyback occupies.
    pub extra_bytes: u64,
    /// Bookkeeping cycles to charge the sender.
    pub cycles: u64,
}

/// What a receive wrapper concluded about an incoming message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecvKind {
    /// No piggyback: the peer is unprofiled.
    Unprofiled,
    /// A request: the receiver adopts the sender's context.
    Request {
        /// The context adopted (a `Remote` context).
        ctx: CtxId,
    },
    /// A response to a request this process sent earlier.
    Response {
        /// The synopsis of ours found in the chain.
        ours: Synopsis,
        /// The context to switch back to.
        restore: CtxId,
    },
    /// A response to a request whose send-point association was
    /// already pruned (the reply arrived after the TTL — a late or
    /// duplicate answer from a slow or flaky peer). The receiver keeps
    /// its current context: adopting the chain would mis-attribute the
    /// work, and there is no base left to restore.
    Stale {
        /// The synopsis of ours found in the chain.
        ours: Synopsis,
    },
}

/// Per-process IPC bookkeeping: the send-point associations of §7.4.
///
/// Associations are stamped with a send **epoch** and pruned once they
/// age past a TTL (see [`IpcTracker::advance_epoch`]). Without pruning
/// every request whose answer never arrives — a crashed peer, a dropped
/// reply — leaks its dictionary entry forever, which matters exactly in
/// the degraded runs where answers go missing.
#[derive(Debug, Default)]
pub struct IpcTracker {
    /// Synopsis we sent → the base context to restore when the
    /// response comes back ("switch back to the CCT from which the
    /// request originated"), stamped with the epoch of the send.
    assoc: HashMap<Synopsis, (CtxId, u64)>,
    /// Age queue for lazy pruning: `(epoch at send, synopsis)` in send
    /// order. An entry whose stamp no longer matches `assoc` was
    /// refreshed by a later send of the same synopsis and is skipped.
    age: VecDeque<(u64, Synopsis)>,
    /// Current epoch (advanced by [`IpcTracker::advance_epoch`]).
    epoch: u64,
    /// Associations pruned unanswered so far.
    pub pruned: u64,
    /// Total piggyback bytes sent (the paper reports 0.95 MB of
    /// transaction context against 92.52 MB of data on TPC-W).
    pub piggyback_bytes: u64,
    /// Messages sent with a piggyback.
    pub messages: u64,
}

impl IpcTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Associations still held (answered or not, until pruned).
    pub fn pending(&self) -> usize {
        self.assoc.len()
    }

    /// Advances the epoch clock and prunes associations older than
    /// `ttl` epochs. The caller decides what an epoch is — the
    /// profiler advances once per send, making the TTL "survives this
    /// many subsequent sends".
    pub fn advance_epoch(&mut self, ttl: u64) {
        self.epoch += 1;
        while let Some(&(e, s)) = self.age.front() {
            if e.saturating_add(ttl) >= self.epoch {
                break;
            }
            self.age.pop_front();
            // Lazy deletion: only drop the association if this queue
            // entry is still its live stamp.
            if self.assoc.get(&s).is_some_and(|&(_, stamp)| stamp == e) {
                self.assoc.remove(&s);
                self.pruned += 1;
            }
        }
    }

    /// The send wrapper (§7.4).
    ///
    /// `base` is the sender thread's base transaction context and
    /// `ctx_at_send` the full context at the send point (base plus call
    /// path). The outgoing chain is the base context's remote prefix (if
    /// the work arrived from upstream) extended with a synopsis of the
    /// full send-point context; receivers that find their own synopsis
    /// in the chain recognize a response, everyone else sees a request
    /// with complete upstream history.
    pub fn send(
        &mut self,
        ctxs: &ContextTable,
        syns: &mut SynopsisTable,
        base: CtxId,
        ctx_at_send: CtxId,
    ) -> SynChain {
        let local = syns.synopsis_of(ctx_at_send);
        self.assoc.insert(local, (base, self.epoch));
        self.age.push_back((self.epoch, local));
        let mut chain = match ctxs.value(base).atoms().first() {
            Some(ContextAtom::Remote(prefix)) => prefix.clone(),
            _ => SynChain::default(),
        };
        chain.0.push(local);
        self.piggyback_bytes += chain.wire_bytes();
        self.messages += 1;
        chain
    }

    /// The receive wrapper (§7.4).
    ///
    /// Scans the chain from the end for a synopsis this process minted;
    /// the deepest such synopsis is the most recent request we sent, so
    /// the message is its response. Otherwise the chain is adopted as a
    /// remote context.
    pub fn recv(
        &mut self,
        ctxs: &mut ContextTable,
        syns: &SynopsisTable,
        chain: Option<&SynChain>,
    ) -> RecvKind {
        let Some(chain) = chain else {
            return RecvKind::Unprofiled;
        };
        for &s in chain.0.iter().rev() {
            if syns.is_mine(s) {
                return match self.assoc.get(&s) {
                    Some(&(restore, _)) => RecvKind::Response { ours: s, restore },
                    // Ours, but the association aged out: a late reply,
                    // not a fresh request — never adopt a chain that
                    // contains our own synopsis.
                    None => RecvKind::Stale { ours: s },
                };
            }
        }
        RecvKind::Request {
            ctx: ctxs.from_remote(chain.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameId;
    use crate::ids::ProcId;

    fn setup(p: u32) -> (ContextTable, SynopsisTable, IpcTracker) {
        (
            ContextTable::default(),
            SynopsisTable::new(ProcId(p)),
            IpcTracker::new(),
        )
    }

    #[test]
    fn request_then_response_roundtrip() {
        // Caller (proc 1) sends a request; callee (proc 2) adopts it,
        // responds; caller recognizes the response and restores.
        let (mut ctxs1, mut syns1, mut ipc1) = setup(1);
        let (mut ctxs2, mut syns2, mut ipc2) = setup(2);

        // Caller at base ROOT, send point under call path [foo].
        let ctx_send = ctxs1.append_path(CtxId::ROOT, &[FrameId(1)]);
        let req = ipc1.send(&ctxs1, &mut syns1, CtxId::ROOT, ctx_send);
        assert_eq!(req.len(), 1);

        // Callee receives a request.
        let kind = ipc2.recv(&mut ctxs2, &syns2, Some(&req));
        let callee_base = match kind {
            RecvKind::Request { ctx } => ctx,
            k => panic!("expected request, got {k:?}"),
        };

        // Callee responds from a send point under its own path.
        let callee_send = ctxs2.append_path(callee_base, &[FrameId(9)]);
        let resp = ipc2.send(&ctxs2, &mut syns2, callee_base, callee_send);
        assert_eq!(resp.len(), 2, "response must be prefix#suffix");
        assert_eq!(resp.0[0], req.0[0]);

        // Caller recognizes its own prefix.
        let kind = ipc1.recv(&mut ctxs1, &syns1, Some(&resp));
        match kind {
            RecvKind::Response { ours, restore } => {
                assert_eq!(ours, req.0[0]);
                assert_eq!(restore, CtxId::ROOT);
            }
            k => panic!("expected response, got {k:?}"),
        }
    }

    #[test]
    fn three_tier_middle_stage_disambiguates() {
        // squid → tomcat → mysql: tomcat must see mysql's reply as a
        // response (its own synopsis is in the chain) even though the
        // chain *head* is squid's.
        let (mut ctxs_s, mut syns_s, mut ipc_s) = setup(1);
        let (mut ctxs_t, mut syns_t, mut ipc_t) = setup(2);
        let (mut ctxs_m, mut syns_m, mut ipc_m) = setup(3);

        let s_send = ctxs_s.append_path(CtxId::ROOT, &[FrameId(1)]);
        let req_st = ipc_s.send(&ctxs_s, &mut syns_s, CtxId::ROOT, s_send);

        let t_base = match ipc_t.recv(&mut ctxs_t, &syns_t, Some(&req_st)) {
            RecvKind::Request { ctx } => ctx,
            k => panic!("{k:?}"),
        };
        let t_send = ctxs_t.append_path(t_base, &[FrameId(2)]);
        let req_tm = ipc_t.send(&ctxs_t, &mut syns_t, t_base, t_send);
        assert_eq!(req_tm.len(), 2, "request chain carries upstream prefix");

        let m_base = match ipc_m.recv(&mut ctxs_m, &syns_m, Some(&req_tm)) {
            RecvKind::Request { ctx } => ctx,
            k => panic!("mysql must see a request, got {k:?}"),
        };
        let m_send = ctxs_m.append_path(m_base, &[FrameId(3)]);
        let resp_mt = ipc_m.send(&ctxs_m, &mut syns_m, m_base, m_send);
        assert_eq!(resp_mt.len(), 3);

        // Tomcat: chain head is squid's synopsis, but tomcat's own is
        // inside — must classify as response and restore t_base.
        match ipc_t.recv(&mut ctxs_t, &syns_t, Some(&resp_mt)) {
            RecvKind::Response { restore, .. } => assert_eq!(restore, t_base),
            k => panic!("tomcat must see a response, got {k:?}"),
        }

        // Tomcat then responds to squid.
        let t_send2 = ctxs_t.append_path(t_base, &[FrameId(4)]);
        let resp_ts = ipc_t.send(&ctxs_t, &mut syns_t, t_base, t_send2);
        match ipc_s.recv(&mut ctxs_s, &syns_s, Some(&resp_ts)) {
            RecvKind::Response { restore, .. } => assert_eq!(restore, CtxId::ROOT),
            k => panic!("squid must see a response, got {k:?}"),
        }
    }

    #[test]
    fn unpiggybacked_messages_are_unprofiled() {
        let (mut ctxs, syns, mut ipc) = setup(1);
        assert_eq!(ipc.recv(&mut ctxs, &syns, None), RecvKind::Unprofiled);
    }

    #[test]
    fn two_callers_paths_reach_callee_as_distinct_contexts() {
        // Figure 6/7: RPCs through foo and bar must establish two
        // different transaction contexts at the callee.
        let (mut ctxs1, mut syns1, mut ipc1) = setup(1);
        let (mut ctxs2, syns2, mut ipc2) = setup(2);
        let foo = ctxs1.append_path(CtxId::ROOT, &[FrameId(1), FrameId(10)]);
        let bar = ctxs1.append_path(CtxId::ROOT, &[FrameId(2), FrameId(10)]);
        let req_foo = ipc1.send(&ctxs1, &mut syns1, CtxId::ROOT, foo);
        let req_bar = ipc1.send(&ctxs1, &mut syns1, CtxId::ROOT, bar);
        let a = ipc2.recv(&mut ctxs2, &syns2, Some(&req_foo));
        let b = ipc2.recv(&mut ctxs2, &syns2, Some(&req_bar));
        match (a, b) {
            (RecvKind::Request { ctx: ca }, RecvKind::Request { ctx: cb }) => {
                assert_ne!(ca, cb);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unanswered_associations_age_out() {
        let (mut ctxs, mut syns, mut ipc) = setup(1);
        let c = ctxs.append_path(CtxId::ROOT, &[FrameId(1)]);
        let req = ipc.send(&ctxs, &mut syns, CtxId::ROOT, c);
        assert_eq!(ipc.pending(), 1);
        // TTL 3: survives three epochs, pruned on the fourth.
        for _ in 0..3 {
            ipc.advance_epoch(3);
        }
        assert_eq!(ipc.pending(), 1);
        ipc.advance_epoch(3);
        assert_eq!(ipc.pending(), 0);
        assert_eq!(ipc.pruned, 1);
        // The late reply is now stale, not a request.
        let mut chain = req.clone();
        chain.0.push(Synopsis::new(2, 1));
        match ipc.recv(&mut ctxs, &syns, Some(&chain)) {
            RecvKind::Stale { ours } => assert_eq!(ours, req.0[0]),
            k => panic!("expected stale, got {k:?}"),
        }
    }

    #[test]
    fn resend_refreshes_the_stamp() {
        let (mut ctxs, mut syns, mut ipc) = setup(1);
        let c = ctxs.append_path(CtxId::ROOT, &[FrameId(1)]);
        let req = ipc.send(&ctxs, &mut syns, CtxId::ROOT, c);
        ipc.advance_epoch(2);
        ipc.advance_epoch(2);
        // Re-send of the same context re-stamps the same synopsis.
        ipc.send(&ctxs, &mut syns, CtxId::ROOT, c);
        ipc.advance_epoch(2);
        // The original entry's age-queue slot expires here, but the
        // refreshed stamp keeps the association alive (lazy deletion).
        assert_eq!(ipc.pending(), 1);
        assert_eq!(ipc.pruned, 0);
        match ipc.recv(&mut ctxs, &syns, Some(&req)) {
            RecvKind::Response { restore, .. } => assert_eq!(restore, CtxId::ROOT),
            k => panic!("expected response, got {k:?}"),
        }
    }

    #[test]
    fn zero_advances_never_prune() {
        let (mut ctxs, mut syns, mut ipc) = setup(1);
        let c = ctxs.append_path(CtxId::ROOT, &[FrameId(1)]);
        ipc.send(&ctxs, &mut syns, CtxId::ROOT, c);
        assert_eq!(ipc.pending(), 1, "no epoch advance, no pruning");
        // And a huge TTL never prunes even across many epochs.
        for _ in 0..100 {
            ipc.advance_epoch(u64::MAX);
        }
        assert_eq!(ipc.pending(), 1);
    }

    #[test]
    fn duplicate_response_is_idempotent() {
        // The same response chain received twice restores the same
        // base both times and never creates a second remote context.
        let (mut ctxs1, mut syns1, mut ipc1) = setup(1);
        let (mut ctxs2, mut syns2, mut ipc2) = setup(2);
        let c = ctxs1.append_path(CtxId::ROOT, &[FrameId(1)]);
        let req = ipc1.send(&ctxs1, &mut syns1, CtxId::ROOT, c);
        let callee_base = match ipc2.recv(&mut ctxs2, &syns2, Some(&req)) {
            RecvKind::Request { ctx } => ctx,
            k => panic!("{k:?}"),
        };
        let resp = ipc2.send(&ctxs2, &mut syns2, callee_base, callee_base);
        let a = ipc1.recv(&mut ctxs1, &syns1, Some(&resp));
        let b = ipc1.recv(&mut ctxs1, &syns1, Some(&resp));
        assert_eq!(a, b);
        assert!(matches!(a, RecvKind::Response { restore, .. } if restore == CtxId::ROOT));
    }

    #[test]
    fn piggyback_accounting_accumulates() {
        let (mut ctxs, mut syns, mut ipc) = setup(1);
        let c = ctxs.append_path(CtxId::ROOT, &[FrameId(1)]);
        ipc.send(&ctxs, &mut syns, CtxId::ROOT, c);
        ipc.send(&ctxs, &mut syns, CtxId::ROOT, c);
        assert_eq!(ipc.messages, 2);
        assert_eq!(ipc.piggyback_bytes, 8);
    }
}
