//! Transaction flow through SEDA stages (§4.2, Figure 5).
//!
//! SEDA stages communicate via stage queues; each queue element carries
//! a transaction context (`elem->tran_ctxt`). When a stage worker
//! dequeues an element, the current context becomes the element's
//! context concatenated with the executing stage; when it enqueues a new
//! element, the element captures the current context.
//!
//! The logic is deliberately the same shape as [`crate::events`] — the
//! paper stresses the similarity of Figures 4 and 5 — but it is tracked
//! *per worker thread*, because a SEDA program runs many stage workers
//! concurrently while an event loop is single-threaded.

use crate::context::{ContextTable, CtxId};
use crate::frame::FrameId;
use crate::ids::ThreadId;
use std::collections::HashMap;

/// Transaction context attached to a stage-queue element.
///
/// This is the paper's `elem->tran_ctxt` field.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StageElemCtx(pub CtxId);

impl Default for StageElemCtx {
    fn default() -> Self {
        StageElemCtx(CtxId::ROOT)
    }
}

/// The Figure 5 bookkeeping for all stage worker threads of a process.
#[derive(Debug, Default)]
pub struct StageTracker {
    current: HashMap<ThreadId, CtxId>,
}

impl StageTracker {
    /// Creates a tracker with no element executing anywhere.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current transaction context of worker `t`, if it is
    /// executing a dequeued element.
    pub fn current(&self, t: ThreadId) -> Option<CtxId> {
        self.current.get(&t).copied()
    }

    /// Figure 5 lines 5–6: worker `t` dequeued `elem` and starts
    /// executing it in `stage`.
    pub fn dequeue(
        &mut self,
        table: &mut ContextTable,
        t: ThreadId,
        elem: StageElemCtx,
        stage: FrameId,
    ) -> CtxId {
        let ctx = table.append_frame(elem.0, stage);
        self.current.insert(t, ctx);
        ctx
    }

    /// Figure 5 line 12: worker `t` creates a new queue element; it
    /// captures the worker's current transaction context.
    pub fn make_elem(&self, t: ThreadId) -> StageElemCtx {
        StageElemCtx(self.current.get(&t).copied().unwrap_or(CtxId::ROOT))
    }

    /// Worker `t` finished executing its element.
    pub fn elem_done(&mut self, t: ThreadId) {
        self.current.remove(&t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextAtom;

    const W1: ThreadId = ThreadId(1);
    const W2: ThreadId = ThreadId(2);

    #[test]
    fn stages_accumulate_per_worker() {
        let mut ctxs = ContextTable::default();
        let mut t = StageTracker::new();
        let listen = FrameId(1);
        let read = FrameId(2);

        let c1 = t.dequeue(&mut ctxs, W1, StageElemCtx::default(), listen);
        let elem = t.make_elem(W1);
        assert_eq!(elem.0, c1);
        t.elem_done(W1);

        let c2 = t.dequeue(&mut ctxs, W2, elem, read);
        assert_eq!(
            ctxs.value(c2).atoms(),
            &[ContextAtom::Frame(listen), ContextAtom::Frame(read)]
        );
    }

    #[test]
    fn workers_are_independent() {
        let mut ctxs = ContextTable::default();
        let mut t = StageTracker::new();
        let a = FrameId(1);
        let b = FrameId(2);
        t.dequeue(&mut ctxs, W1, StageElemCtx::default(), a);
        t.dequeue(&mut ctxs, W2, StageElemCtx::default(), b);
        assert_ne!(t.current(W1), t.current(W2));
        let e1 = t.make_elem(W1);
        let e2 = t.make_elem(W2);
        assert_ne!(e1.0, e2.0);
    }

    #[test]
    fn elem_created_outside_execution_is_root() {
        let t = StageTracker::new();
        assert_eq!(t.make_elem(W1).0, CtxId::ROOT);
    }

    #[test]
    fn stage_loops_prune_like_events() {
        let mut ctxs = ContextTable::default();
        let mut t = StageTracker::new();
        let (s1, s2, s3) = (FrameId(1), FrameId(2), FrameId(3));
        let c = t.dequeue(&mut ctxs, W1, StageElemCtx::default(), s1);
        let c = t.dequeue(&mut ctxs, W1, StageElemCtx(c), s2);
        let keep = c;
        let c = t.dequeue(&mut ctxs, W1, StageElemCtx(c), s3);
        let c = t.dequeue(&mut ctxs, W1, StageElemCtx(c), s2);
        assert_eq!(c, keep);
    }
}
