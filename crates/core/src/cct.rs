//! Calling Context Trees (§7.1).
//!
//! Whodunit's call-path profiler core maintains one Calling Context Tree
//! (CCT, Ammons–Ball–Larus) per transaction context. Each node names a
//! procedure frame; the path from the root to a node is a call path.
//! Profile samples are accumulated at the node whose root-path equals
//! the sampled call stack.
//!
//! Metrics are *exclusive* per node; inclusive values are computed on
//! demand by summing subtrees.

use crate::frame::FrameId;

/// Index of a node within one [`Cct`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct CctNodeId(pub u32);

impl CctNodeId {
    /// The root node of every CCT.
    pub const ROOT: CctNodeId = CctNodeId(0);
}

/// Exclusive profile metrics accumulated at one CCT node.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Metrics {
    /// Statistical profile samples attributed here.
    pub samples: u64,
    /// Exact CPU cycles attributed here (ground truth the simulator
    /// knows; real csprof only has samples).
    pub cycles: u64,
    /// Procedure invocations counted here (used by the gprof baseline).
    pub calls: u64,
}

impl Metrics {
    /// Component-wise sum.
    pub fn add(&mut self, other: Metrics) {
        self.samples += other.samples;
        self.cycles += other.cycles;
        self.calls += other.calls;
    }
}

/// Sentinel for "no node" in the intra-arena links below.
const NO_NODE: u32 = u32::MAX;

/// Children a node can hold inline before spilling to the CCT's flat
/// lookup table. Most CCT nodes have 0–2 children (call trees are
/// deep, not bushy), so the common case needs no table probe at all.
const INLINE_CHILDREN: usize = 2;

/// One inline child entry: the child's frame and its node index.
#[derive(Clone, Copy, Debug, Default)]
struct InlineChild {
    frame: u32,
    child: u32,
}

/// A CCT node. Children are reachable two ways: the
/// `first_child`/`next_sibling` chain enumerates them (newest first),
/// and lookup-by-frame goes through the inline slots, falling back to
/// the owning [`Cct`]'s spill table once the inline slots are full.
/// Compared to the previous per-node `HashMap<FrameId, CctNodeId>`,
/// this removes a heap allocation per interior node and keeps the
/// whole tree in one contiguous arena.
#[derive(Clone, Debug)]
struct Node {
    frame: Option<FrameId>,
    parent: u32,
    first_child: u32,
    next_sibling: u32,
    inline: [InlineChild; INLINE_CHILDREN],
    inline_len: u8,
    metrics: Metrics,
}

impl Node {
    fn new(frame: Option<FrameId>, parent: u32) -> Self {
        Node {
            frame,
            parent,
            first_child: NO_NODE,
            next_sibling: NO_NODE,
            inline: [InlineChild::default(); INLINE_CHILDREN],
            inline_len: 0,
            metrics: Metrics::default(),
        }
    }
}

/// One slot of a [`SpillTable`]: the packed `(parent, frame)` key and
/// the child node index biased by one (0 = empty slot).
#[derive(Clone, Copy, Debug, Default)]
struct SpillSlot {
    key: u64,
    child_p1: u32,
}

/// The per-CCT flat child table: an open-addressed FNV map from
/// `(parent node, frame) → child node` holding only the overflow
/// children of bushy nodes. One table per tree (not per node), probed
/// with linear scanning; entries are never removed.
#[derive(Clone, Debug, Default)]
struct SpillTable {
    slots: Vec<SpillSlot>,
    len: usize,
}

fn spill_key(parent: u32, frame: FrameId) -> u64 {
    ((parent as u64) << 32) | frame.0 as u64
}

fn spill_hash(key: u64) -> u64 {
    let mut h = crate::hash::Fnv64::new();
    h.write_u64(key);
    h.finish()
}

impl SpillTable {
    fn get(&self, key: u64) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (spill_hash(key) as usize) & mask;
        loop {
            let s = self.slots[i];
            if s.child_p1 == 0 {
                return None;
            }
            if s.key == key {
                return Some(s.child_p1 - 1);
            }
            i = (i + 1) & mask;
        }
    }

    /// Records `key → child`; the caller has established it is absent.
    fn insert(&mut self, key: u64, child: u32) {
        if self.slots.len() * 7 <= (self.len + 1) * 8 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (spill_hash(key) as usize) & mask;
        while self.slots[i].child_p1 != 0 {
            i = (i + 1) & mask;
        }
        self.slots[i] = SpillSlot {
            key,
            child_p1: child + 1,
        };
        self.len += 1;
    }

    fn grow(&mut self) {
        let cap = (self.slots.len() * 2).max(16);
        let old = std::mem::replace(&mut self.slots, vec![SpillSlot::default(); cap]);
        let mask = cap - 1;
        for s in old {
            if s.child_p1 == 0 {
                continue;
            }
            let mut i = (spill_hash(s.key) as usize) & mask;
            while self.slots[i].child_p1 != 0 {
                i = (i + 1) & mask;
            }
            self.slots[i] = s;
        }
    }
}

/// A Calling Context Tree with per-node exclusive metrics.
///
/// # Examples
///
/// ```
/// use whodunit_core::cct::{Cct, Metrics};
/// use whodunit_core::frame::FrameId;
///
/// let mut cct = Cct::new();
/// let path = [FrameId(0), FrameId(1)];
/// cct.record(&path, Metrics { samples: 3, cycles: 300, calls: 1 });
/// let node = cct.path_node(&path);
/// assert_eq!(cct.metrics(node).cycles, 300);
/// assert_eq!(cct.total().samples, 3);
/// ```
#[derive(Clone, Debug)]
pub struct Cct {
    nodes: Vec<Node>,
    spill: SpillTable,
}

impl Default for Cct {
    fn default() -> Self {
        Self::new()
    }
}

impl Cct {
    /// Creates a CCT holding only the (frameless) root.
    pub fn new() -> Self {
        Cct {
            nodes: vec![Node::new(None, NO_NODE)],
            spill: SpillTable::default(),
        }
    }

    /// Number of nodes including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// The frame at `node` (`None` for the root).
    pub fn frame(&self, node: CctNodeId) -> Option<FrameId> {
        self.nodes[node.0 as usize].frame
    }

    /// The parent of `node` (`None` for the root).
    pub fn parent(&self, node: CctNodeId) -> Option<CctNodeId> {
        match self.nodes[node.0 as usize].parent {
            NO_NODE => None,
            p => Some(CctNodeId(p)),
        }
    }

    /// Exclusive metrics at `node`.
    pub fn metrics(&self, node: CctNodeId) -> Metrics {
        self.nodes[node.0 as usize].metrics
    }

    /// Child of `node` for `frame`, creating it if missing.
    pub fn child(&mut self, node: CctNodeId, frame: FrameId) -> CctNodeId {
        if let Some(c) = self.find_child(node, frame) {
            return c;
        }
        let id = u32::try_from(self.nodes.len()).expect("more than u32::MAX CCT nodes");
        assert!(id != NO_NODE, "CCT node id space exhausted");
        let mut n = Node::new(Some(frame), node.0);
        n.next_sibling = self.nodes[node.0 as usize].first_child;
        self.nodes.push(n);
        let parent = &mut self.nodes[node.0 as usize];
        parent.first_child = id;
        if (parent.inline_len as usize) < INLINE_CHILDREN {
            parent.inline[parent.inline_len as usize] = InlineChild {
                frame: frame.0,
                child: id,
            };
            parent.inline_len += 1;
        } else {
            self.spill.insert(spill_key(node.0, frame), id);
        }
        CctNodeId(id)
    }

    /// Child of `node` for `frame` without creating it.
    pub fn find_child(&self, node: CctNodeId, frame: FrameId) -> Option<CctNodeId> {
        let nd = &self.nodes[node.0 as usize];
        for s in &nd.inline[..nd.inline_len as usize] {
            if s.frame == frame.0 {
                return Some(CctNodeId(s.child));
            }
        }
        if (nd.inline_len as usize) < INLINE_CHILDREN {
            // The inline slots never filled, so nothing spilled either.
            return None;
        }
        self.spill.get(spill_key(node.0, frame)).map(CctNodeId)
    }

    /// Resolves (creating as needed) the node for a full call path.
    pub fn path_node(&mut self, path: &[FrameId]) -> CctNodeId {
        let mut n = CctNodeId::ROOT;
        for &f in path {
            n = self.child(n, f);
        }
        n
    }

    /// Records exclusive metrics at the node for `path`.
    pub fn record(&mut self, path: &[FrameId], m: Metrics) {
        let n = self.path_node(path);
        self.nodes[n.0 as usize].metrics.add(m);
    }

    /// Records exclusive metrics at an already resolved node.
    pub fn record_at(&mut self, node: CctNodeId, m: Metrics) {
        self.nodes[node.0 as usize].metrics.add(m);
    }

    /// The call path from the root to `node` (root excluded).
    pub fn path_of(&self, node: CctNodeId) -> Vec<FrameId> {
        let mut path = Vec::new();
        let mut cur = node.0;
        while cur != NO_NODE {
            if let Some(f) = self.nodes[cur as usize].frame {
                path.push(f);
            }
            cur = self.nodes[cur as usize].parent;
        }
        path.reverse();
        path
    }

    /// Pushes the sibling chain of `node`'s children onto `stack`.
    fn push_children(&self, node: u32, stack: &mut Vec<u32>) {
        let mut c = self.nodes[node as usize].first_child;
        while c != NO_NODE {
            stack.push(c);
            c = self.nodes[c as usize].next_sibling;
        }
    }

    /// Inclusive metrics of `node`: its own plus all descendants'.
    pub fn inclusive(&self, node: CctNodeId) -> Metrics {
        let mut total = self.nodes[node.0 as usize].metrics;
        let mut stack: Vec<u32> = Vec::new();
        self.push_children(node.0, &mut stack);
        while let Some(n) = stack.pop() {
            total.add(self.nodes[n as usize].metrics);
            self.push_children(n, &mut stack);
        }
        total
    }

    /// Total metrics in the whole tree.
    pub fn total(&self) -> Metrics {
        self.inclusive(CctNodeId::ROOT)
    }

    /// Children of `node`, sorted by frame id for deterministic output.
    pub fn children_sorted(&self, node: CctNodeId) -> Vec<CctNodeId> {
        let mut v: Vec<(FrameId, u32)> = Vec::new();
        let mut c = self.nodes[node.0 as usize].first_child;
        while c != NO_NODE {
            let nd = &self.nodes[c as usize];
            v.push((nd.frame.expect("non-root node has a frame"), c));
            c = nd.next_sibling;
        }
        v.sort_by_key(|&(f, _)| f);
        v.into_iter().map(|(_, c)| CctNodeId(c)).collect()
    }

    /// Iterates over every node id (root first, then creation order).
    pub fn node_ids(&self) -> impl Iterator<Item = CctNodeId> {
        (0..self.nodes.len() as u32).map(CctNodeId)
    }

    /// The `n` call paths with the largest exclusive sample counts,
    /// heaviest first (a profiler's "hot paths" view). Ties are broken
    /// by path order, so the result is a pure function of the tree.
    pub fn hot_paths(&self, n: usize) -> Vec<(Vec<FrameId>, Metrics)> {
        if n == 0 {
            return Vec::new();
        }
        let mut ranked: Vec<(u64, CctNodeId)> = self
            .node_ids()
            .filter(|&id| self.nodes[id.0 as usize].metrics.samples > 0)
            .map(|id| (self.nodes[id.0 as usize].metrics.samples, id))
            .collect();
        // Select on sample counts alone before materializing paths:
        // every node strictly above the n-th count is in the result
        // regardless of tie-break, and only ties at the boundary need
        // path order to settle — so paths (an O(depth) allocation per
        // node) are built for the few candidates, not the whole tree.
        // Live snapshots ask for the top path of the *hottest* origins
        // mid-ingest, where the full materialize-and-sort is the
        // dominant query cost.
        if ranked.len() > n {
            let (_, nth, _) = ranked.select_nth_unstable_by(n - 1, |a, b| b.0.cmp(&a.0));
            let floor = nth.0;
            ranked.retain(|&(s, _)| s >= floor);
        }
        let mut v: Vec<(Vec<FrameId>, Metrics)> = ranked
            .into_iter()
            .map(|(_, id)| (self.path_of(id), self.metrics(id)))
            .collect();
        v.sort_by(|a, b| b.1.samples.cmp(&a.1.samples).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Merges `other` into `self`, node by node along matching paths.
    pub fn merge(&mut self, other: &Cct) {
        // Walk `other` depth-first, carrying the corresponding node in
        // `self`; the pair always names the same call path.
        let mut stack = vec![(CctNodeId::ROOT, CctNodeId::ROOT)];
        while let Some((mine, theirs)) = stack.pop() {
            self.nodes[mine.0 as usize]
                .metrics
                .add(other.nodes[theirs.0 as usize].metrics);
            let mut tc = other.nodes[theirs.0 as usize].first_child;
            while tc != NO_NODE {
                let f = other.nodes[tc as usize].frame.expect("non-root node has a frame");
                let mc = self.child(mine, f);
                stack.push((mc, CctNodeId(tc)));
                tc = other.nodes[tc as usize].next_sibling;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid(n: u32) -> FrameId {
        FrameId(n)
    }

    fn m(samples: u64, cycles: u64) -> Metrics {
        Metrics {
            samples,
            cycles,
            calls: 0,
        }
    }

    #[test]
    fn child_creation_is_idempotent() {
        let mut cct = Cct::new();
        let a = cct.child(CctNodeId::ROOT, fid(1));
        let b = cct.child(CctNodeId::ROOT, fid(1));
        assert_eq!(a, b);
        assert_eq!(cct.len(), 2);
        assert_eq!(cct.frame(a), Some(fid(1)));
        assert_eq!(cct.parent(a), Some(CctNodeId::ROOT));
    }

    #[test]
    fn record_and_path_roundtrip() {
        let mut cct = Cct::new();
        let path = [fid(1), fid(2), fid(3)];
        cct.record(&path, m(1, 100));
        let n = cct.path_node(&path);
        assert_eq!(cct.metrics(n).cycles, 100);
        assert_eq!(cct.path_of(n), path.to_vec());
    }

    #[test]
    fn inclusive_sums_subtree() {
        let mut cct = Cct::new();
        cct.record(&[fid(1)], m(0, 10));
        cct.record(&[fid(1), fid(2)], m(0, 20));
        cct.record(&[fid(1), fid(3)], m(0, 30));
        cct.record(&[fid(4)], m(0, 5));
        let n1 = cct.path_node(&[fid(1)]);
        assert_eq!(cct.inclusive(n1).cycles, 60);
        assert_eq!(cct.total().cycles, 65);
        assert_eq!(cct.metrics(n1).cycles, 10);
    }

    #[test]
    fn merge_adds_along_matching_paths() {
        let mut a = Cct::new();
        a.record(&[fid(1), fid(2)], m(1, 10));
        let mut b = Cct::new();
        b.record(&[fid(1), fid(2)], m(2, 20));
        b.record(&[fid(3)], m(1, 7));
        a.merge(&b);
        assert_eq!(a.total().cycles, 37);
        let n = a.path_node(&[fid(1), fid(2)]);
        assert_eq!(a.metrics(n).samples, 3);
        let n3 = a.path_node(&[fid(3)]);
        assert_eq!(a.metrics(n3).cycles, 7);
    }

    #[test]
    fn hot_paths_rank_by_exclusive_samples() {
        let mut cct = Cct::new();
        cct.record(&[fid(1)], m(5, 0));
        cct.record(&[fid(1), fid(2)], m(20, 0));
        cct.record(&[fid(3)], m(10, 0));
        let hot = cct.hot_paths(2);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].0, vec![fid(1), fid(2)]);
        assert_eq!(hot[0].1.samples, 20);
        assert_eq!(hot[1].0, vec![fid(3)]);
    }

    #[test]
    fn children_sorted_is_deterministic() {
        let mut cct = Cct::new();
        for f in [5u32, 1, 3, 2, 4] {
            cct.child(CctNodeId::ROOT, fid(f));
        }
        let frames: Vec<_> = cct
            .children_sorted(CctNodeId::ROOT)
            .into_iter()
            .map(|n| cct.frame(n).unwrap().0)
            .collect();
        assert_eq!(frames, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_tree_reports_empty() {
        let cct = Cct::new();
        assert!(cct.is_empty());
        assert_eq!(cct.total(), Metrics::default());
        assert_eq!(cct.path_of(CctNodeId::ROOT), Vec::<FrameId>::new());
    }
}
