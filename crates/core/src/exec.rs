//! Deterministic work-stealing execution for the analysis tiers.
//!
//! Every parallel surface in the system (the phased pipeline, the
//! collector's deferred fold groups, the federation's per-leaf ingest)
//! funnels through [`run`]: `n` independent items executed by real
//! scoped OS threads with per-worker deques and work stealing, results
//! landing in per-item slots and merged in ascending item order. The
//! determinism contract (DESIGN.md §14):
//!
//! 1. The item count is fixed by the input, never by the worker count.
//! 2. Each item is a pure function of its inputs — workers share the
//!    inputs read-only and never communicate through side effects.
//! 3. Results are slotted by item index. *Which* worker computes an
//!    item and *when* is scheduling noise; the merged output cannot
//!    observe it.
//!
//! Steal ordering is therefore free to be adversarial, and the stress
//! harness exploits that: a [`StealPlan`] seeds both the initial deque
//! distribution and each thief's victim rotation, so the differential
//! suites can sweep wildly different schedules and assert byte
//! identity. `StealPlan::CANONICAL` (seed 0) reproduces the classic
//! `item % workers` round-robin distribution.
//!
//! Panic policy: every item runs under `catch_unwind`. The first
//! observed panic raises an abort flag that stops further claims; once
//! all workers drain, the panic with the *lowest item index* is
//! surfaced as a [`ShardPanic`] — a clean error, never a deadlock and
//! never a partial result. `workers == 1` is the serial reference
//! path: the same closure runs on the calling thread in ascending item
//! order under the same panic policy.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// A seeded schedule perturbation for [`run`], plus an optional
/// deterministic panic injection — the chaos knobs of the thread-stress
/// harness. Scheduling must never influence output, so any plan is
/// safe to use in production; the harness sweeps many.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StealPlan {
    /// Seeds the initial item→deque distribution and each thief's
    /// victim rotation. `0` is the canonical schedule: item `i` starts
    /// on deque `i % workers`, thieves scan victims in ring order.
    pub seed: u64,
    /// When `Some((label, item))`, the executor panics deterministically
    /// in place of running item `item` of the run labelled `label` —
    /// fault injection for the panic-propagation tests.
    pub panic_at: Option<(&'static str, usize)>,
}

impl StealPlan {
    /// The canonical (production) schedule: round-robin distribution,
    /// ring-order stealing, no injected faults.
    pub const CANONICAL: StealPlan = StealPlan {
        seed: 0,
        panic_at: None,
    };

    /// A perturbed schedule with no injected faults.
    pub fn seeded(seed: u64) -> StealPlan {
        StealPlan {
            seed,
            panic_at: None,
        }
    }
}

impl Default for StealPlan {
    fn default() -> Self {
        StealPlan::CANONICAL
    }
}

/// A worker panic surfaced by [`run`]: which run, which item, and the
/// panic payload (when it was a string).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPanic {
    /// The `label` the run was invoked with.
    pub label: &'static str,
    /// The lowest item index that panicked.
    pub item: usize,
    /// The panic payload, or a placeholder for non-string payloads.
    pub message: String,
}

impl std::fmt::Display for ShardPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard panic in {} at item {}: {}",
            self.label, self.item, self.message
        )
    }
}

impl std::error::Error for ShardPanic {}

/// Scheduling diagnostics for one [`run`]. Steal counts are
/// timing-dependent and MUST stay out of every fingerprint surface —
/// they exist for live snapshots and bench output only.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    /// OS threads actually spawned (0 on the serial path).
    pub threads: usize,
    /// Items executed.
    pub items: usize,
    /// Successful steals (items executed by a non-owner worker).
    /// Nondeterministic; diagnostic only.
    pub steals: u64,
}

/// splitmix64 — the repo's standard cheap seeded mixer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The deque an item starts on: round-robin for the canonical seed, a
/// seeded hash otherwise. Pure function of `(plan, item, workers)` —
/// the *distribution* is deterministic even though execution order is
/// not, which is what makes steal counts merely diagnostic.
fn home_of(plan: StealPlan, item: usize, workers: usize) -> usize {
    if plan.seed == 0 {
        item % workers
    } else {
        (mix(plan.seed ^ (item as u64).wrapping_mul(0x9e37_79b9)) % workers as u64) as usize
    }
}

struct Recorded<T> {
    item: usize,
    out: Result<T, String>,
}

/// Runs `f(0..n)` on up to `workers` scoped OS threads with seeded
/// work stealing and returns the results in ascending item order.
///
/// See the module docs for the determinism contract and panic policy.
/// `workers <= 1` (or `n <= 1`) executes serially on the calling
/// thread — the reference path every parallel schedule must match
/// byte-for-byte.
pub fn run<T: Send>(
    label: &'static str,
    workers: usize,
    plan: StealPlan,
    n: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Result<(Vec<T>, RunStats), ShardPanic> {
    let call = |i: usize| -> Result<T, String> {
        catch_unwind(AssertUnwindSafe(|| {
            if plan.panic_at == Some((label, i)) {
                panic!("injected fault: {label} item {i}");
            }
            f(i)
        }))
        .map_err(payload_text)
    };

    if workers <= 1 || n <= 1 {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            match call(i) {
                Ok(v) => out.push(v),
                Err(message) => {
                    return Err(ShardPanic {
                        label,
                        item: i,
                        message,
                    })
                }
            }
        }
        return Ok((
            out,
            RunStats {
                threads: 0,
                items: n,
                steals: 0,
            },
        ));
    }

    let nw = workers.min(n);
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..nw).map(|_| Mutex::new(VecDeque::new())).collect();
    for i in 0..n {
        queues[home_of(plan, i, nw)]
            .lock()
            .expect("deque poisoned")
            .push_back(i);
    }
    let abort = AtomicBool::new(false);
    let steals = AtomicU64::new(0);

    let produced: Vec<Vec<Recorded<T>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..nw)
            .map(|k| {
                let queues = &queues;
                let abort = &abort;
                let steals = &steals;
                let call = &call;
                s.spawn(move || {
                    let mut got: Vec<Recorded<T>> = Vec::new();
                    let mut rot = mix(plan.seed ^ 0xd1f0 ^ k as u64);
                    loop {
                        if abort.load(Ordering::Acquire) {
                            break;
                        }
                        // Own work first (front: ascending affinity),
                        // then one seeded sweep over victims (back:
                        // classic steal end). Each lock is released
                        // before the next is taken — a guard held
                        // across a second `lock()` would let two
                        // empty-deque thieves deadlock on each other.
                        let mut claimed = queues[k].lock().expect("deque poisoned").pop_front();
                        if claimed.is_none() {
                            rot = mix(rot);
                            let start = (rot % nw as u64) as usize;
                            for t in 0..nw {
                                let v = (start + t) % nw;
                                if v == k {
                                    continue;
                                }
                                let stolen =
                                    queues[v].lock().expect("deque poisoned").pop_back();
                                if let Some(i) = stolen {
                                    steals.fetch_add(1, Ordering::Relaxed);
                                    claimed = Some(i);
                                    break;
                                }
                            }
                        }
                        let Some(i) = claimed else {
                            // Every deque empty: all items are done or
                            // in flight on other workers. Nothing ever
                            // re-enqueues, so exit — no wait, no
                            // deadlock.
                            break;
                        };
                        let out = call(i);
                        if out.is_err() {
                            abort.store(true, Ordering::Release);
                            got.push(Recorded { item: i, out });
                            break;
                        }
                        got.push(Recorded { item: i, out });
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("executor worker panicked outside catch_unwind"))
            .collect()
    });

    let stats = RunStats {
        threads: nw,
        items: n,
        steals: steals.load(Ordering::Relaxed),
    };
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let mut first_panic: Option<(usize, String)> = None;
    for rec in produced.into_iter().flatten() {
        match rec.out {
            Ok(v) => slots[rec.item] = Some(v),
            Err(msg) => {
                // Several workers can panic before the abort flag
                // lands; surface the lowest item index so the error is
                // schedule-independent whenever the panic set is.
                if first_panic.as_ref().is_none_or(|(i, _)| rec.item < *i) {
                    first_panic = Some((rec.item, msg));
                }
            }
        }
    }
    if let Some((item, message)) = first_panic {
        return Err(ShardPanic {
            label,
            item,
            message,
        });
    }
    let out: Vec<T> = slots
        .into_iter()
        .map(|s| s.expect("abort not raised, so every item completed"))
        .collect();
    Ok((out, stats))
}

fn payload_text(p: Box<dyn std::any::Any + Send>) -> String {
    match p.downcast::<String>() {
        Ok(s) => *s,
        Err(p) => match p.downcast::<&str>() {
            Ok(s) => (*s).to_owned(),
            Err(_) => "non-string panic payload".to_owned(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squares(workers: usize, plan: StealPlan, n: usize) -> Vec<usize> {
        let (v, stats) = run("squares", workers, plan, n, |i| i * i).expect("no faults");
        assert_eq!(stats.items, n);
        v
    }

    #[test]
    fn serial_matches_parallel_across_schedules() {
        let want: Vec<usize> = (0..97).map(|i| i * i).collect();
        assert_eq!(squares(1, StealPlan::CANONICAL, 97), want);
        for workers in [2, 3, 4, 8] {
            for seed in [0, 1, 7, 0xdead_beef] {
                assert_eq!(squares(workers, StealPlan::seeded(seed), 97), want);
            }
        }
    }

    #[test]
    fn empty_and_single_item_runs() {
        assert_eq!(squares(4, StealPlan::seeded(3), 0), Vec::<usize>::new());
        assert_eq!(squares(4, StealPlan::seeded(3), 1), vec![0]);
    }

    #[test]
    fn injected_panic_surfaces_clean_error() {
        for workers in [1, 2, 4, 8] {
            for item in [0, 5, 11] {
                let plan = StealPlan {
                    seed: 42,
                    panic_at: Some(("faulty", item)),
                };
                let err = run("faulty", workers, plan, 12, |i| i).unwrap_err();
                assert_eq!(err.label, "faulty");
                assert_eq!(err.item, item, "workers={workers}");
                assert!(err.message.contains("injected fault"), "{}", err.message);
            }
        }
    }

    #[test]
    fn real_panic_in_item_closure_is_caught() {
        let err = run("explode", 4, StealPlan::seeded(9), 8, |i| {
            if i == 3 {
                panic!("boom {i}");
            }
            i
        })
        .unwrap_err();
        assert_eq!((err.label, err.item), ("explode", 3));
        assert_eq!(err.message, "boom 3");
    }

    #[test]
    fn panic_label_mismatch_does_not_fire() {
        let plan = StealPlan {
            seed: 0,
            panic_at: Some(("other-run", 2)),
        };
        let (v, _) = run("this-run", 4, plan, 6, |i| i).expect("label gates injection");
        assert_eq!(v, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn home_distribution_is_deterministic() {
        for seed in [0, 1, 99] {
            let plan = StealPlan::seeded(seed);
            for i in 0..64 {
                assert_eq!(home_of(plan, i, 5), home_of(plan, i, 5));
                assert!(home_of(plan, i, 5) < 5);
            }
        }
        // Canonical = round robin.
        assert_eq!(home_of(StealPlan::CANONICAL, 7, 3), 1);
    }
}
