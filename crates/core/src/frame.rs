//! Interned frame names.
//!
//! A *frame* is one element of an execution path: a procedure in a call
//! path, an event handler in an event-driven program, or a stage in a
//! SEDA program (§2.1 of the paper treats all three uniformly as
//! "stages" of execution). Frames are interned into small integer ids so
//! call paths and transaction contexts are cheap to hash and compare.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// An interned frame name.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FrameId(pub u32);

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// What kind of execution element a frame names.
///
/// The kind does not change any tracking semantics — the paper treats
/// procedures, handlers, and stages uniformly — but it makes rendered
/// profiles much easier to read.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum FrameKind {
    /// An ordinary procedure in a call path.
    #[default]
    Procedure,
    /// An event handler in an event-driven program (§4.1).
    EventHandler,
    /// A SEDA stage (§4.2).
    Stage,
}

/// Bidirectional intern table for frame names.
#[derive(Debug, Default)]
pub struct FrameTable {
    by_name: HashMap<String, FrameId>,
    names: Vec<String>,
    kinds: Vec<FrameKind>,
}

impl FrameTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name` as a [`FrameKind::Procedure`].
    pub fn intern(&mut self, name: &str) -> FrameId {
        self.intern_kind(name, FrameKind::Procedure)
    }

    /// Interns `name` with an explicit kind.
    ///
    /// If the name is already interned, the existing id is returned and
    /// the previously recorded kind is kept.
    pub fn intern_kind(&mut self, name: &str, kind: FrameKind) -> FrameId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id =
            FrameId(u32::try_from(self.names.len()).expect("more than u32::MAX interned frames"));
        self.by_name.insert(name.to_owned(), id);
        self.names.push(name.to_owned());
        self.kinds.push(kind);
        id
    }

    /// Looks up an already interned name.
    pub fn get(&self, name: &str) -> Option<FrameId> {
        self.by_name.get(name).copied()
    }

    /// Returns the name for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn name(&self, id: FrameId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Returns the kind recorded for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn kind(&self, id: FrameId) -> FrameKind {
        self.kinds[id.0 as usize]
    }

    /// Number of interned frames.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (FrameId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (FrameId(i as u32), n.as_str()))
    }
}

/// A frame table shared between a substrate and its profiling runtimes.
///
/// The simulation is single-threaded, so `Rc<RefCell<_>>` suffices.
pub type SharedFrameTable = Rc<RefCell<FrameTable>>;

/// Creates a new shared frame table.
pub fn shared_frame_table() -> SharedFrameTable {
    Rc::new(RefCell::new(FrameTable::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = FrameTable::new();
        let a = t.intern("main");
        let b = t.intern("main");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
        assert_eq!(t.name(a), "main");
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let mut t = FrameTable::new();
        let a = t.intern("foo");
        let b = t.intern("bar");
        assert_ne!(a, b);
        assert_eq!(t.name(a), "foo");
        assert_eq!(t.name(b), "bar");
        assert_eq!(t.get("foo"), Some(a));
        assert_eq!(t.get("baz"), None);
    }

    #[test]
    fn kind_is_kept_from_first_intern() {
        let mut t = FrameTable::new();
        let a = t.intern_kind("ReadStage", FrameKind::Stage);
        let b = t.intern_kind("ReadStage", FrameKind::Procedure);
        assert_eq!(a, b);
        assert_eq!(t.kind(a), FrameKind::Stage);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut t = FrameTable::new();
        t.intern("a");
        t.intern("b");
        let v: Vec<_> = t.iter().map(|(_, n)| n.to_owned()).collect();
        assert_eq!(v, vec!["a", "b"]);
    }
}
