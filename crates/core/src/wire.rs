//! The versioned columnar binary wire format of the streaming tier.
//!
//! Everything the streaming and federation tiers ship between processes
//! — stream headers, per-epoch delta batches, federation summary
//! frames, quantile-sketch digests, chaos repro bundles — has exactly
//! one binary encoding, defined here (DESIGN.md §16). The format is
//! built from three layers:
//!
//! 1. **Primitives**: LEB128 varints (little-endian base-128), length-
//!    prefixed UTF-8 strings, and zigzag **delta-of-delta** columns
//!    ([`DodWriter`]/[`DodReader`]) for integer sequences that are
//!    nearly arithmetic (sorted ctx ids, bucket indices). The DoD
//!    residuals are computed in `i128`, so the column codec round-trips
//!    *arbitrary* `u64` sequences — monotonicity makes it small, but is
//!    never required for correctness.
//! 2. **Sections**: one varint-packed array per *field* (all ctx ids,
//!    then all costs, then all timestamps …) instead of one struct per
//!    event, so a decoder runs tight homogeneous loops and an encoder
//!    never pads.
//! 3. **The frame envelope**: `"WDW"` magic, a version byte, a kind
//!    byte, a `u32` little-endian body length, the body, and a trailing
//!    FNV-1a digest of the body. [`open_frame`] verifies all five
//!    before a single body byte is parsed, so damaged input surfaces as
//!    a typed [`WireError`] — never a panic, never a silent
//!    misparse — and slots into the collector's §12 quarantine /
//!    resync machinery like any other lost or corrupt delta.
//!
//! Decoding offers two paths. [`decode_batch`] materializes the
//! [`EpochBatch`] structs (the differential-testing path: the struct
//! codecs must round-trip bit-exactly, `decode(encode(b)) == b`).
//! [`apply_batch`] is the ingest hot path: it streams the columns
//! **directly into [`StageAccumulator`]'s dense Vec-by-ctx-id
//! layouts**, never materializing per-event structs — and because the
//! envelope digest already authenticated every body byte, it skips the
//! per-delta lane-checksum recompute that dominates the struct apply
//! path.
//!
//! The hand-rolled byte packing that previously accumulated in
//! [`crate::sketch`] (`to_wire`/`from_wire` sparse buckets),
//! [`crate::summary`] (frame freight), and [`crate::repro`] (bundle
//! files) now rides on these primitives: [`encode_sketch`],
//! [`encode_summary`], and [`encode_repro`].

use crate::delta::{CctDelta, EpochBatch, StageAccumulator, StageDelta, StreamHeader, StreamStage};
use crate::dumpjson::esc;
use crate::hash::fnv1a;
use crate::repro::{ChaosRepro, FaultEntry, ReproWindow};
use crate::sketch::QuantileSketch;
use crate::stitch::{DumpAtom, DumpContext, DumpCrosstalkPair, DumpCrosstalkWaiter, DumpNode};
use crate::summary::{LeafGauges, SummaryFrame, TierSketch};
use std::collections::HashMap;
use std::fmt;

/// The three magic bytes every wire frame starts with.
pub const WIRE_MAGIC: [u8; 3] = *b"WDW";

/// The format version this build encodes and accepts. A frame carrying
/// any other version is rejected with [`WireError::BadVersion`] before
/// its body is touched (version negotiation is pinned in DESIGN.md §16:
/// there is exactly one live version per deployment epoch; mixed fleets
/// quarantine foreign frames and resync rather than guess).
pub const WIRE_VERSION: u8 = 1;

/// Frame kind: a [`StreamHeader`].
pub const KIND_HEADER: u8 = 1;
/// Frame kind: an [`EpochBatch`] of stage deltas.
pub const KIND_BATCH: u8 = 2;
/// Frame kind: a federation [`SummaryFrame`].
pub const KIND_SUMMARY: u8 = 3;
/// Frame kind: a [`ChaosRepro`] bundle.
pub const KIND_REPRO: u8 = 4;
/// Frame kind: a [`QuantileSketch`] digest.
pub const KIND_SKETCH: u8 = 5;

/// Bytes of envelope before the body (magic + version + kind + length).
pub const ENVELOPE_HEAD: usize = 9;
/// Bytes of envelope after the body (the FNV-1a digest).
pub const ENVELOPE_TAIL: usize = 8;

/// Why a wire frame could not be decoded. Every variant is a *detected*
/// failure: the decoder never panics and never returns partially
/// misparsed data.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The buffer does not start with [`WIRE_MAGIC`].
    BadMagic,
    /// The frame carries an unsupported format version.
    BadVersion(u8),
    /// The frame kind is not the one the caller expected.
    BadKind {
        /// The kind the caller asked [`open_frame`] for.
        expected: u8,
        /// The kind byte the frame carried.
        got: u8,
    },
    /// The buffer ends before the frame does.
    Truncated,
    /// The body's FNV-1a digest does not match the stored trailer.
    Checksum,
    /// The envelope verified but the body violates the format (a
    /// version-logic bug or a deliberately crafted frame — random
    /// damage is caught by [`WireError::Checksum`] first).
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "wire frame: bad magic"),
            WireError::BadVersion(v) => write!(f, "wire frame: unsupported version {v}"),
            WireError::BadKind { expected, got } => {
                write!(f, "wire frame: kind {got} where {expected} was expected")
            }
            WireError::Truncated => write!(f, "wire frame: truncated"),
            WireError::Checksum => write!(f, "wire frame: body checksum mismatch"),
            WireError::Malformed(what) => write!(f, "wire frame: malformed body: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------
// Varint / string / column primitives
// ---------------------------------------------------------------------

/// Appends `v` as a LEB128 varint (7 value bits per byte, little-endian
/// groups, high bit = continuation).
pub fn put_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

/// Appends `v` as a LEB128 varint (shared encoding with [`put_u64`]).
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    put_u64(buf, v as u64);
}

fn put_u128(buf: &mut Vec<u8>, mut v: u128) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

/// Appends `s` as a varint byte length followed by its UTF-8 bytes.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn zigzag(v: i128) -> u128 {
    ((v << 1) ^ (v >> 127)) as u128
}

fn unzigzag(v: u128) -> i128 {
    ((v >> 1) as i128) ^ -((v & 1) as i128)
}

/// A zero-copy cursor over one frame body.
///
/// Every read is bounds-checked and returns a typed [`WireError`]; a
/// `Reader` can therefore be driven over arbitrary bytes (the fuzz
/// suites do) without panicking.
#[derive(Clone, Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads one raw byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a LEB128 varint into a `u64`, rejecting encodings that
    /// overflow 64 bits.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift == 63 && (b & 0x7f) > 1 {
                return Err(WireError::Malformed("varint overflows u64"));
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::Malformed("varint too long"));
            }
        }
    }

    /// Reads a LEB128 varint and narrows it to `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        as_u32(self.u64()?)
    }

    fn u128(&mut self) -> Result<u128, WireError> {
        let mut v = 0u128;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift == 126 && (b & 0x7f) > 3 {
                return Err(WireError::Malformed("varint overflows u128"));
            }
            v |= ((b & 0x7f) as u128) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 126 {
                return Err(WireError::Malformed("varint too long"));
            }
        }
    }

    /// Reads a `u64` stored as 8 raw little-endian bytes (used for the
    /// stored end-to-end checksums, which must round-trip even when
    /// they do not match their content).
    pub fn fixed_u64(&mut self) -> Result<u64, WireError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Borrows the next `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a length-prefixed UTF-8 string, borrowing the bytes.
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        let n = self.count()?;
        let b = self.bytes(n)?;
        std::str::from_utf8(b).map_err(|_| WireError::Malformed("string is not UTF-8"))
    }

    /// Reads an element count and sanity-bounds it against the bytes
    /// left in the frame (every counted element occupies at least one
    /// byte), so a hostile length field cannot trigger a huge
    /// allocation before the mismatch is noticed.
    pub fn count(&mut self) -> Result<usize, WireError> {
        let n = self.u64()?;
        if n > self.remaining() as u64 {
            return Err(WireError::Malformed("count exceeds frame size"));
        }
        Ok(n as usize)
    }
}

fn as_u32(v: u64) -> Result<u32, WireError> {
    u32::try_from(v).map_err(|_| WireError::Malformed("value overflows u32"))
}

fn as_usize(v: u64) -> Result<usize, WireError> {
    usize::try_from(v).map_err(|_| WireError::Malformed("value overflows usize"))
}

/// `Option<u32>` on the wire as `value + 1` with `None -> 0` (the same
/// convention the delta lane checksums use).
fn opt_u32(v: u64) -> Result<Option<u32>, WireError> {
    if v == 0 {
        Ok(None)
    } else {
        as_u32(v - 1).map(Some)
    }
}

fn put_opt_u32(buf: &mut Vec<u8>, v: Option<u32>) {
    put_u64(buf, v.map_or(0, |x| x as u64 + 1));
}

/// Streaming delta-of-delta column encoder.
///
/// The first value is stored raw, the second as a zigzag first
/// difference, and every later value as the zigzag difference *of*
/// differences — near-arithmetic sequences (sorted ids, timestamps)
/// collapse to runs of single `0x00` bytes. Differences are taken in
/// `i128`, so any `u64` sequence round-trips exactly.
#[derive(Clone, Debug, Default)]
pub struct DodWriter {
    n: u64,
    prev: u64,
    prev_d: i128,
}

impl DodWriter {
    /// A fresh column encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the next column value to `buf`.
    pub fn push(&mut self, buf: &mut Vec<u8>, v: u64) {
        if self.n == 0 {
            put_u64(buf, v);
        } else {
            let d = v as i128 - self.prev as i128;
            let resid = if self.n == 1 { d } else { d - self.prev_d };
            put_u128(buf, zigzag(resid));
            self.prev_d = d;
        }
        self.prev = v;
        self.n += 1;
    }
}

/// Streaming decoder for a [`DodWriter`] column. All arithmetic is
/// checked: a crafted residual that walks the value out of `u64` range
/// is a [`WireError::Malformed`], never a wrap or a panic.
#[derive(Clone, Debug, Default)]
pub struct DodReader {
    n: u64,
    prev: u64,
    prev_d: i128,
}

impl DodReader {
    /// A fresh column decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the next column value.
    pub fn next(&mut self, r: &mut Reader<'_>) -> Result<u64, WireError> {
        let v = if self.n == 0 {
            r.u64()?
        } else {
            let resid = unzigzag(r.u128()?);
            let d = if self.n == 1 {
                resid
            } else {
                self.prev_d
                    .checked_add(resid)
                    .ok_or(WireError::Malformed("delta-of-delta overflow"))?
            };
            let val = (self.prev as i128)
                .checked_add(d)
                .ok_or(WireError::Malformed("delta-of-delta overflow"))?;
            if !(0..=u64::MAX as i128).contains(&val) {
                return Err(WireError::Malformed("column value out of u64 range"));
            }
            self.prev_d = d;
            val as u64
        };
        self.prev = v;
        self.n += 1;
        Ok(v)
    }
}

// ---------------------------------------------------------------------
// Frame envelope
// ---------------------------------------------------------------------

/// Starts a frame of `kind` in `buf`: magic, version, kind, and a
/// length placeholder. Returns the body-start offset to hand back to
/// [`end_frame`]. Body bytes are appended directly to `buf` in between.
pub fn begin_frame(buf: &mut Vec<u8>, kind: u8) -> usize {
    buf.extend_from_slice(&WIRE_MAGIC);
    buf.push(WIRE_VERSION);
    buf.push(kind);
    buf.extend_from_slice(&[0u8; 4]);
    buf.len()
}

/// Finishes the frame opened at `body_start`: backpatches the body
/// length and appends the FNV-1a digest of the body bytes.
pub fn end_frame(buf: &mut Vec<u8>, body_start: usize) {
    let body_len = buf.len() - body_start;
    assert!(body_len <= u32::MAX as usize, "wire frame body over 4 GiB");
    let lenb = (body_len as u32).to_le_bytes();
    buf[body_start - 4..body_start].copy_from_slice(&lenb);
    let digest = fnv1a(&buf[body_start..]);
    buf.extend_from_slice(&digest.to_le_bytes());
}

/// Verifies the envelope of the frame at the start of `buf` — magic,
/// version, expected kind, length, and body digest, in that order —
/// and returns a body [`Reader`] plus the total frame size (so callers
/// can walk concatenated frames). No body byte is interpreted before
/// the digest matches.
pub fn open_frame(buf: &[u8], kind: u8) -> Result<(Reader<'_>, usize), WireError> {
    if buf.len() < ENVELOPE_HEAD {
        return Err(WireError::Truncated);
    }
    if buf[..3] != WIRE_MAGIC {
        return Err(WireError::BadMagic);
    }
    if buf[3] != WIRE_VERSION {
        return Err(WireError::BadVersion(buf[3]));
    }
    if buf[4] != kind {
        return Err(WireError::BadKind {
            expected: kind,
            got: buf[4],
        });
    }
    let len = u32::from_le_bytes(buf[5..9].try_into().expect("4-byte slice")) as usize;
    let total = ENVELOPE_HEAD
        .checked_add(len)
        .and_then(|t| t.checked_add(ENVELOPE_TAIL))
        .ok_or(WireError::Truncated)?;
    if buf.len() < total {
        return Err(WireError::Truncated);
    }
    let body = &buf[ENVELOPE_HEAD..ENVELOPE_HEAD + len];
    let stored = u64::from_le_bytes(
        buf[ENVELOPE_HEAD + len..total]
            .try_into()
            .expect("8-byte slice"),
    );
    if fnv1a(body) != stored {
        return Err(WireError::Checksum);
    }
    Ok((Reader::new(body), total))
}

// ---------------------------------------------------------------------
// Stage-delta section (shared by batch and summary frames)
// ---------------------------------------------------------------------

const ATOM_FRAME: u8 = 1;
const ATOM_PATH: u8 = 2;
const ATOM_REMOTE: u8 = 3;

// Per-delta section-presence flags. Steady-state deltas are sparse —
// most epochs bring no new interned frames, contexts, or synopses, and
// often no crosstalk — so every section is gated behind a bit and
// empty sections cost nothing. `F_CHECKSUM` marks a stored checksum
// that differs from the canonical [`StageDelta::compute_checksum`] of
// the content (a corrupt emitter, preserved verbatim for the struct
// path to quarantine); clean deltas omit the 8 bytes and the decoder
// re-derives the canonical value.
const F_FRAMES: u64 = 1 << 0;
const F_CONTEXTS: u64 = 1 << 1;
const F_SYNOPSES: u64 = 1 << 2;
const F_CCTS: u64 = 1 << 3;
const F_PAIRS: u64 = 1 << 4;
const F_WAITERS: u64 = 1 << 5;
const F_PIGGYBACK: u64 = 1 << 6;
const F_MESSAGES: u64 = 1 << 7;
const F_CHECKSUM: u64 = 1 << 8;
const F_ALL: u64 = (1 << 9) - 1;

fn put_atom(buf: &mut Vec<u8>, a: &DumpAtom) {
    match a {
        DumpAtom::Frame(f) => {
            buf.push(ATOM_FRAME);
            put_u32(buf, *f);
        }
        DumpAtom::Path(p) => {
            buf.push(ATOM_PATH);
            put_u64(buf, p.len() as u64);
            for &f in p {
                put_u32(buf, f);
            }
        }
        DumpAtom::Remote(chain) => {
            buf.push(ATOM_REMOTE);
            put_u64(buf, chain.len() as u64);
            for &s in chain {
                put_u64(buf, s);
            }
        }
    }
}

fn get_atom(r: &mut Reader<'_>) -> Result<DumpAtom, WireError> {
    match r.u8()? {
        ATOM_FRAME => Ok(DumpAtom::Frame(r.u32()?)),
        ATOM_PATH => {
            let n = r.count()?;
            let mut p = Vec::with_capacity(n);
            for _ in 0..n {
                p.push(r.u32()?);
            }
            Ok(DumpAtom::Path(p))
        }
        ATOM_REMOTE => {
            let n = r.count()?;
            let mut c = Vec::with_capacity(n);
            for _ in 0..n {
                c.push(r.u64()?);
            }
            Ok(DumpAtom::Remote(c))
        }
        _ => Err(WireError::Malformed("unknown context atom tag")),
    }
}

/// Appends one delta's columnar section to a frame body. Layout (all
/// varints unless noted): stage, seq, section-presence flags; then
/// only the sections whose flag bit is set — frame strings; contexts
/// (tagged atoms — inherently ragged, so row-encoded); synopsis ctx
/// column (DoD) + raw column; CCT header columns (ctx DoD, baseline
/// sizes, new-node counts, grown counts) followed by the node field
/// columns across *all* CCTs (frame+1, parent+1, samples, cycles,
/// calls) and the grown field columns (index, Δsamples, Δcycles,
/// Δcalls); crosstalk pair columns (waiter DoD, holder, count, wait);
/// waiter columns; piggyback bytes; messages; and — only when it
/// differs from the canonical recomputable value — the stored
/// end-to-end checksum as 8 raw bytes (a wrong checksum must
/// round-trip verbatim: the struct path revalidates it, which is what
/// the damage matrix locks).
/// Builds the per-frame interned string table over a run of deltas:
/// every distinct `new_frames` string, in first-use order. Delta frame
/// sections then reference strings by table index, so a fleet of
/// replicas interning the same frame names pays each name's bytes once
/// per wire frame instead of once per stage.
fn collect_dict(deltas: &[StageDelta]) -> (Vec<&str>, HashMap<&str, u64>) {
    let mut table = Vec::new();
    let mut dict = HashMap::new();
    for d in deltas {
        for f in &d.new_frames {
            let s = f.as_str();
            if !dict.contains_key(s) {
                dict.insert(s, table.len() as u64);
                table.push(s);
            }
        }
    }
    (table, dict)
}

/// Appends a [`collect_dict`] string table: count, then the strings.
fn put_dict(buf: &mut Vec<u8>, table: &[&str]) {
    put_u64(buf, table.len() as u64);
    for s in table {
        put_str(buf, s);
    }
}

/// Reads a frame's string table back as borrowed slices of the frame
/// body — deltas copy out only the strings they actually intern.
fn get_dict<'a>(r: &mut Reader<'a>) -> Result<Vec<&'a str>, WireError> {
    let n = r.count()?;
    let mut table = Vec::with_capacity(n);
    for _ in 0..n {
        table.push(r.str()?);
    }
    Ok(table)
}

pub(crate) fn put_delta(buf: &mut Vec<u8>, d: &StageDelta, dict: &HashMap<&str, u64>) {
    let mut flags = 0u64;
    if !d.new_frames.is_empty() {
        flags |= F_FRAMES;
    }
    if !d.new_contexts.is_empty() {
        flags |= F_CONTEXTS;
    }
    if !d.new_synopses.is_empty() {
        flags |= F_SYNOPSES;
    }
    if !d.ccts.is_empty() {
        flags |= F_CCTS;
    }
    if !d.pairs.is_empty() {
        flags |= F_PAIRS;
    }
    if !d.waiters.is_empty() {
        flags |= F_WAITERS;
    }
    if d.piggyback_bytes != 0 {
        flags |= F_PIGGYBACK;
    }
    if d.messages != 0 {
        flags |= F_MESSAGES;
    }
    if d.checksum != d.compute_checksum() {
        flags |= F_CHECKSUM;
    }
    put_u64(buf, d.stage as u64);
    put_u64(buf, d.seq);
    put_u64(buf, flags);
    if flags & F_FRAMES != 0 {
        put_u64(buf, d.new_frames.len() as u64);
        for f in &d.new_frames {
            put_u64(buf, dict[f.as_str()]);
        }
    }
    if flags & F_CONTEXTS != 0 {
        put_u64(buf, d.new_contexts.len() as u64);
        for c in &d.new_contexts {
            put_u64(buf, c.atoms.len() as u64);
            for a in &c.atoms {
                put_atom(buf, a);
            }
        }
    }
    if flags & F_SYNOPSES != 0 {
        put_u64(buf, d.new_synopses.len() as u64);
        let mut w = DodWriter::new();
        for &(_, ctx) in &d.new_synopses {
            w.push(buf, ctx as u64);
        }
        for &(raw, _) in &d.new_synopses {
            put_u64(buf, raw);
        }
    }
    if flags & F_CCTS != 0 {
        put_u64(buf, d.ccts.len() as u64);
        let mut w = DodWriter::new();
        for c in &d.ccts {
            w.push(buf, c.ctx as u64);
        }
        for c in &d.ccts {
            put_u64(buf, c.nodes_before as u64);
        }
        for c in &d.ccts {
            put_u64(buf, c.new_nodes.len() as u64);
        }
        for c in &d.ccts {
            put_u64(buf, c.grown.len() as u64);
        }
        for c in &d.ccts {
            for n in &c.new_nodes {
                put_opt_u32(buf, n.frame);
            }
        }
        for c in &d.ccts {
            for n in &c.new_nodes {
                put_opt_u32(buf, n.parent);
            }
        }
        for c in &d.ccts {
            for n in &c.new_nodes {
                put_u64(buf, n.samples);
            }
        }
        for c in &d.ccts {
            for n in &c.new_nodes {
                put_u64(buf, n.cycles);
            }
        }
        for c in &d.ccts {
            for n in &c.new_nodes {
                put_u64(buf, n.calls);
            }
        }
        for c in &d.ccts {
            for &(i, ..) in &c.grown {
                put_u64(buf, i as u64);
            }
        }
        for c in &d.ccts {
            for &(_, s, ..) in &c.grown {
                put_u64(buf, s);
            }
        }
        for c in &d.ccts {
            for &(_, _, cy, _) in &c.grown {
                put_u64(buf, cy);
            }
        }
        for c in &d.ccts {
            for &(.., ca) in &c.grown {
                put_u64(buf, ca);
            }
        }
    }
    if flags & F_PAIRS != 0 {
        put_u64(buf, d.pairs.len() as u64);
        let mut w = DodWriter::new();
        for p in &d.pairs {
            w.push(buf, p.waiter as u64);
        }
        for p in &d.pairs {
            put_u64(buf, p.holder as u64);
        }
        for p in &d.pairs {
            put_u64(buf, p.count);
        }
        for p in &d.pairs {
            put_u64(buf, p.total_wait);
        }
    }
    if flags & F_WAITERS != 0 {
        put_u64(buf, d.waiters.len() as u64);
        let mut w = DodWriter::new();
        for x in &d.waiters {
            w.push(buf, x.waiter as u64);
        }
        for x in &d.waiters {
            put_u64(buf, x.count);
        }
        for x in &d.waiters {
            put_u64(buf, x.total_wait);
        }
    }
    if flags & F_PIGGYBACK != 0 {
        put_u64(buf, d.piggyback_bytes);
    }
    if flags & F_MESSAGES != 0 {
        put_u64(buf, d.messages);
    }
    if flags & F_CHECKSUM != 0 {
        buf.extend_from_slice(&d.checksum.to_le_bytes());
    }
}

/// Parses one delta section back into a [`StageDelta`] (the struct /
/// differential-testing path; [`apply_batch`] is the hot path).
pub(crate) fn get_delta(r: &mut Reader<'_>, table: &[&str]) -> Result<StageDelta, WireError> {
    let stage = as_usize(r.u64()?)?;
    let seq = r.u64()?;
    let flags = r.u64()?;
    if flags & !F_ALL != 0 {
        return Err(WireError::Malformed("unknown delta section flag"));
    }
    let mut new_frames = Vec::new();
    if flags & F_FRAMES != 0 {
        let nf = r.count()?;
        new_frames.reserve(nf);
        for _ in 0..nf {
            let i = as_usize(r.u64()?)?;
            let s = *table
                .get(i)
                .ok_or(WireError::Malformed("frame string index out of range"))?;
            new_frames.push(s.to_owned());
        }
    }
    let mut new_contexts = Vec::new();
    if flags & F_CONTEXTS != 0 {
        let ncx = r.count()?;
        new_contexts.reserve(ncx);
        for _ in 0..ncx {
            let na = r.count()?;
            let mut atoms = Vec::with_capacity(na);
            for _ in 0..na {
                atoms.push(get_atom(r)?);
            }
            new_contexts.push(DumpContext { atoms });
        }
    }
    let mut new_synopses = Vec::new();
    if flags & F_SYNOPSES != 0 {
        let ns = r.count()?;
        let mut syn_ctx = Vec::with_capacity(ns);
        let mut dr = DodReader::new();
        for _ in 0..ns {
            syn_ctx.push(as_u32(dr.next(r)?)?);
        }
        new_synopses.reserve(ns);
        for &ctx in &syn_ctx {
            new_synopses.push((r.u64()?, ctx));
        }
    }
    let ccts = if flags & F_CCTS != 0 {
        get_cct_section(r)?
    } else {
        Vec::new()
    };
    let mut pairs = Vec::new();
    if flags & F_PAIRS != 0 {
        let np = r.count()?;
        let mut waiter_col = Vec::with_capacity(np);
        let mut dr = DodReader::new();
        for _ in 0..np {
            waiter_col.push(as_u32(dr.next(r)?)?);
        }
        let mut holder_col = Vec::with_capacity(np);
        for _ in 0..np {
            holder_col.push(r.u32()?);
        }
        let mut count_col = Vec::with_capacity(np);
        for _ in 0..np {
            count_col.push(r.u64()?);
        }
        pairs.reserve(np);
        for i in 0..np {
            pairs.push(DumpCrosstalkPair {
                waiter: waiter_col[i],
                holder: holder_col[i],
                count: count_col[i],
                total_wait: r.u64()?,
            });
        }
    }
    let mut waiters = Vec::new();
    if flags & F_WAITERS != 0 {
        let nw = r.count()?;
        let mut wwaiter_col = Vec::with_capacity(nw);
        let mut dr = DodReader::new();
        for _ in 0..nw {
            wwaiter_col.push(as_u32(dr.next(r)?)?);
        }
        let mut wcount_col = Vec::with_capacity(nw);
        for _ in 0..nw {
            wcount_col.push(r.u64()?);
        }
        waiters.reserve(nw);
        for i in 0..nw {
            waiters.push(DumpCrosstalkWaiter {
                waiter: wwaiter_col[i],
                count: wcount_col[i],
                total_wait: r.u64()?,
            });
        }
    }
    let piggyback_bytes = if flags & F_PIGGYBACK != 0 { r.u64()? } else { 0 };
    let messages = if flags & F_MESSAGES != 0 { r.u64()? } else { 0 };
    let checksum = if flags & F_CHECKSUM != 0 {
        Some(r.fixed_u64()?)
    } else {
        None
    };
    let mut d = StageDelta {
        stage,
        seq,
        new_frames,
        new_contexts,
        new_synopses,
        ccts,
        pairs,
        waiters,
        piggyback_bytes,
        messages,
        checksum: 0,
    };
    d.checksum = checksum.unwrap_or_else(|| d.compute_checksum());
    Ok(d)
}

/// Reads the CCT header columns and node/grown field columns back into
/// per-context [`CctDelta`]s.
fn get_cct_section(r: &mut Reader<'_>) -> Result<Vec<CctDelta>, WireError> {
    let nc = r.count()?;
    let mut ctx_col = Vec::with_capacity(nc);
    let mut dr = DodReader::new();
    for _ in 0..nc {
        let ctx = as_u32(dr.next(r)?)?;
        // One CCT per context, sorted by ctx — same rule [`apply_batch`]
        // enforces, so both decode paths reject identical frames.
        if ctx_col.last().is_some_and(|&prev| prev >= ctx) {
            return Err(WireError::Malformed("CCT ctx column not strictly increasing"));
        }
        ctx_col.push(ctx);
    }
    let mut before_col = Vec::with_capacity(nc);
    for _ in 0..nc {
        before_col.push(r.u32()?);
    }
    let mut nnew = Vec::with_capacity(nc);
    let mut total_new = 0u64;
    for _ in 0..nc {
        let n = r.u64()?;
        if n > r.remaining() as u64 {
            return Err(WireError::Malformed("count exceeds frame size"));
        }
        total_new += n;
        nnew.push(as_usize(n)?);
    }
    let mut ngrown = Vec::with_capacity(nc);
    let mut total_grown = 0u64;
    for _ in 0..nc {
        let n = r.u64()?;
        if n > r.remaining() as u64 {
            return Err(WireError::Malformed("count exceeds frame size"));
        }
        total_grown += n;
        ngrown.push(as_usize(n)?);
    }
    if total_new > r.remaining() as u64 || total_grown > r.remaining() as u64 {
        return Err(WireError::Malformed("count exceeds frame size"));
    }
    let (total_new, total_grown) = (total_new as usize, total_grown as usize);
    let mut frame_col = Vec::with_capacity(total_new);
    for _ in 0..total_new {
        frame_col.push(opt_u32(r.u64()?)?);
    }
    let mut parent_col = Vec::with_capacity(total_new);
    for _ in 0..total_new {
        parent_col.push(opt_u32(r.u64()?)?);
    }
    let mut samples_col = Vec::with_capacity(total_new);
    for _ in 0..total_new {
        samples_col.push(r.u64()?);
    }
    let mut cycles_col = Vec::with_capacity(total_new);
    for _ in 0..total_new {
        cycles_col.push(r.u64()?);
    }
    let mut calls_col = Vec::with_capacity(total_new);
    for _ in 0..total_new {
        calls_col.push(r.u64()?);
    }
    let mut gidx_col = Vec::with_capacity(total_grown);
    for _ in 0..total_grown {
        gidx_col.push(r.u32()?);
    }
    let mut gs_col = Vec::with_capacity(total_grown);
    for _ in 0..total_grown {
        gs_col.push(r.u64()?);
    }
    let mut gcy_col = Vec::with_capacity(total_grown);
    for _ in 0..total_grown {
        gcy_col.push(r.u64()?);
    }
    let mut ccts = Vec::with_capacity(nc);
    let (mut ni, mut gi) = (0usize, 0usize);
    for k in 0..nc {
        let mut new_nodes = Vec::with_capacity(nnew[k]);
        for _ in 0..nnew[k] {
            new_nodes.push(DumpNode {
                frame: frame_col[ni],
                parent: parent_col[ni],
                samples: samples_col[ni],
                cycles: cycles_col[ni],
                calls: calls_col[ni],
            });
            ni += 1;
        }
        let mut grown = Vec::with_capacity(ngrown[k]);
        for _ in 0..ngrown[k] {
            grown.push((gidx_col[gi], gs_col[gi], gcy_col[gi], r.u64()?));
            gi += 1;
        }
        ccts.push(CctDelta {
            ctx: ctx_col[k],
            nodes_before: before_col[k],
            new_nodes,
            grown,
        });
    }
    Ok(ccts)
}

// ---------------------------------------------------------------------
// Frame codecs: header, batch, summary, sketch, repro
// ---------------------------------------------------------------------

/// Encodes a [`StreamHeader`] as a [`KIND_HEADER`] frame.
pub fn encode_header(h: &StreamHeader) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    let body = begin_frame(&mut buf, KIND_HEADER);
    put_u64(&mut buf, h.stages.len() as u64);
    for s in &h.stages {
        put_u64(&mut buf, s.proc as u64);
        put_str(&mut buf, &s.stage_name);
    }
    end_frame(&mut buf, body);
    buf
}

/// Decodes a [`KIND_HEADER`] frame, returning the header and the total
/// frame size consumed from `buf`.
pub fn decode_header(buf: &[u8]) -> Result<(StreamHeader, usize), WireError> {
    let (mut r, consumed) = open_frame(buf, KIND_HEADER)?;
    let n = r.count()?;
    let mut stages = Vec::with_capacity(n);
    for _ in 0..n {
        stages.push(StreamStage {
            proc: r.u32()?,
            stage_name: r.str()?.to_owned(),
        });
    }
    if r.remaining() != 0 {
        return Err(WireError::Malformed("trailing bytes in header body"));
    }
    Ok((StreamHeader { stages }, consumed))
}

/// Encodes an [`EpochBatch`] as a [`KIND_BATCH`] frame.
pub fn encode_batch(b: &EpochBatch) -> Vec<u8> {
    let mut buf = Vec::with_capacity(256);
    let body = begin_frame(&mut buf, KIND_BATCH);
    put_u64(&mut buf, b.epoch);
    put_u64(&mut buf, b.seq);
    put_u64(&mut buf, b.end);
    let (table, dict) = collect_dict(&b.deltas);
    put_dict(&mut buf, &table);
    put_u64(&mut buf, b.deltas.len() as u64);
    for d in &b.deltas {
        put_delta(&mut buf, d, &dict);
    }
    end_frame(&mut buf, body);
    buf
}

/// Decodes a [`KIND_BATCH`] frame into the [`EpochBatch`] structs (the
/// differential-testing path; ingest uses [`apply_batch`]), returning
/// the batch and the total frame size consumed.
pub fn decode_batch(buf: &[u8]) -> Result<(EpochBatch, usize), WireError> {
    let (mut r, consumed) = open_frame(buf, KIND_BATCH)?;
    let epoch = r.u64()?;
    let seq = r.u64()?;
    let end = r.u64()?;
    let table = get_dict(&mut r)?;
    let n = r.count()?;
    let mut deltas = Vec::with_capacity(n);
    for _ in 0..n {
        deltas.push(get_delta(&mut r, &table)?);
    }
    if r.remaining() != 0 {
        return Err(WireError::Malformed("trailing bytes in batch body"));
    }
    Ok((
        EpochBatch {
            epoch,
            seq,
            end,
            deltas,
        },
        consumed,
    ))
}

/// Appends a sparse bucket list (ascending indices) as an index DoD
/// column plus a count column — the shared tail of the sketch and
/// summary codecs.
pub(crate) fn put_buckets(buf: &mut Vec<u8>, buckets: &[(u32, u64)]) {
    put_u64(buf, buckets.len() as u64);
    let mut w = DodWriter::new();
    for &(b, _) in buckets {
        w.push(buf, b as u64);
    }
    for &(_, c) in buckets {
        put_u64(buf, c);
    }
}

/// Reads a [`put_buckets`] bucket list back.
pub(crate) fn get_buckets(r: &mut Reader<'_>) -> Result<Vec<(u32, u64)>, WireError> {
    let n = r.count()?;
    let mut idx = Vec::with_capacity(n);
    let mut dr = DodReader::new();
    for _ in 0..n {
        idx.push(as_u32(dr.next(r)?)?);
    }
    let mut out = Vec::with_capacity(n);
    for &b in &idx {
        out.push((b, r.u64()?));
    }
    Ok(out)
}

/// Encodes a federation [`SummaryFrame`] as a [`KIND_SUMMARY`] frame —
/// the byte form the federation links ship. Deltas reuse the batch
/// delta section; freight (sketches, leaf mass, gauges) is columnar.
pub fn encode_summary(f: &SummaryFrame) -> Vec<u8> {
    let mut buf = Vec::with_capacity(256);
    let body = begin_frame(&mut buf, KIND_SUMMARY);
    put_u64(&mut buf, f.src as u64);
    put_u64(&mut buf, f.seq);
    put_u64(&mut buf, f.first_epoch);
    put_u64(&mut buf, f.last_epoch);
    put_u64(&mut buf, f.end);
    let (table, dict) = collect_dict(&f.deltas);
    put_dict(&mut buf, &table);
    put_u64(&mut buf, f.deltas.len() as u64);
    for d in &f.deltas {
        put_delta(&mut buf, d, &dict);
    }
    put_u64(&mut buf, f.sketches.len() as u64);
    for s in &f.sketches {
        put_str(&mut buf, &s.tier);
        put_u64(&mut buf, s.max);
        put_buckets(&mut buf, &s.buckets);
    }
    put_u64(&mut buf, f.leaf_mass.len() as u64);
    let mut w = DodWriter::new();
    for &(leaf, _) in &f.leaf_mass {
        w.push(&mut buf, leaf as u64);
    }
    for &(_, m) in &f.leaf_mass {
        put_u64(&mut buf, m);
    }
    put_u64(&mut buf, f.gauges.len() as u64);
    let mut w = DodWriter::new();
    for &(leaf, _) in &f.gauges {
        w.push(&mut buf, leaf as u64);
    }
    for &(_, g) in &f.gauges {
        put_u64(&mut buf, g.last_epoch);
    }
    for &(_, g) in &f.gauges {
        put_u64(&mut buf, g.events);
    }
    for &(_, g) in &f.gauges {
        put_u64(&mut buf, g.mass);
    }
    for &(_, g) in &f.gauges {
        put_u64(&mut buf, g.lag_frames);
    }
    for &(_, g) in &f.gauges {
        put_u64(&mut buf, g.checkpoints);
    }
    for &(_, g) in &f.gauges {
        put_u64(&mut buf, g.recoveries);
    }
    buf.extend_from_slice(&f.checksum.to_le_bytes());
    end_frame(&mut buf, body);
    buf
}

/// Decodes a [`KIND_SUMMARY`] frame, returning the frame and the total
/// bytes consumed. The stored end-to-end checksum round-trips verbatim;
/// callers still run [`SummaryFrame::verify`] as on the struct path.
pub fn decode_summary(buf: &[u8]) -> Result<(SummaryFrame, usize), WireError> {
    let (mut r, consumed) = open_frame(buf, KIND_SUMMARY)?;
    let src = r.u32()?;
    let seq = r.u64()?;
    let first_epoch = r.u64()?;
    let last_epoch = r.u64()?;
    let end = r.u64()?;
    let table = get_dict(&mut r)?;
    let nd = r.count()?;
    let mut deltas = Vec::with_capacity(nd);
    for _ in 0..nd {
        deltas.push(get_delta(&mut r, &table)?);
    }
    let nsk = r.count()?;
    let mut sketches = Vec::with_capacity(nsk);
    for _ in 0..nsk {
        let tier = r.str()?.to_owned();
        let max = r.u64()?;
        let buckets = get_buckets(&mut r)?;
        sketches.push(TierSketch { tier, max, buckets });
    }
    let nlm = r.count()?;
    let mut leaf_col = Vec::with_capacity(nlm);
    let mut dr = DodReader::new();
    for _ in 0..nlm {
        leaf_col.push(as_u32(dr.next(&mut r)?)?);
    }
    let mut leaf_mass = Vec::with_capacity(nlm);
    for &leaf in &leaf_col {
        leaf_mass.push((leaf, r.u64()?));
    }
    let ng = r.count()?;
    let mut gleaf_col = Vec::with_capacity(ng);
    let mut dr = DodReader::new();
    for _ in 0..ng {
        gleaf_col.push(as_u32(dr.next(&mut r)?)?);
    }
    let mut gauges: Vec<(u32, LeafGauges)> = gleaf_col
        .iter()
        .map(|&leaf| (leaf, LeafGauges::default()))
        .collect();
    for g in &mut gauges {
        g.1.last_epoch = r.u64()?;
    }
    for g in &mut gauges {
        g.1.events = r.u64()?;
    }
    for g in &mut gauges {
        g.1.mass = r.u64()?;
    }
    for g in &mut gauges {
        g.1.lag_frames = r.u64()?;
    }
    for g in &mut gauges {
        g.1.checkpoints = r.u64()?;
    }
    for g in &mut gauges {
        g.1.recoveries = r.u64()?;
    }
    let checksum = r.fixed_u64()?;
    if r.remaining() != 0 {
        return Err(WireError::Malformed("trailing bytes in summary body"));
    }
    Ok((
        SummaryFrame {
            src,
            seq,
            first_epoch,
            last_epoch,
            end,
            deltas,
            sketches,
            leaf_mass,
            gauges,
            checksum,
        },
        consumed,
    ))
}

/// Encodes a [`QuantileSketch`] digest (its sparse wire form) as a
/// [`KIND_SKETCH`] frame.
pub fn encode_sketch(s: &QuantileSketch) -> Vec<u8> {
    let (max, buckets) = s.to_wire();
    let mut buf = Vec::with_capacity(64);
    let body = begin_frame(&mut buf, KIND_SKETCH);
    put_u64(&mut buf, max);
    put_buckets(&mut buf, &buckets);
    end_frame(&mut buf, body);
    buf
}

/// Decodes a [`KIND_SKETCH`] frame back into a sketch that merges and
/// queries bit-identically to the encoded one.
pub fn decode_sketch(buf: &[u8]) -> Result<(QuantileSketch, usize), WireError> {
    let (mut r, consumed) = open_frame(buf, KIND_SKETCH)?;
    let max = r.u64()?;
    let buckets = get_buckets(&mut r)?;
    if r.remaining() != 0 {
        return Err(WireError::Malformed("trailing bytes in sketch body"));
    }
    Ok((QuantileSketch::from_wire(max, &buckets), consumed))
}

const FAULT_DROP: u8 = 1;
const FAULT_DUP: u8 = 2;
const FAULT_DELAY: u8 = 3;
const FAULT_CRASH: u8 = 4;
const FAULT_SLOWDOWN: u8 = 5;

/// Encodes a [`ChaosRepro`] bundle as a [`KIND_REPRO`] frame — the
/// binary sibling of [`crate::repro::repro_to_json`], for embedding
/// repro bundles in wire streams (the JSON form stays the on-disk
/// format).
pub fn encode_repro(rep: &ChaosRepro) -> Vec<u8> {
    let mut buf = Vec::with_capacity(128);
    let body = begin_frame(&mut buf, KIND_REPRO);
    put_u64(&mut buf, rep.seed);
    put_str(&mut buf, &rep.policy);
    put_u64(&mut buf, rep.workload.len() as u64);
    for (k, v) in &rep.workload {
        put_str(&mut buf, k);
        put_u64(&mut buf, *v);
    }
    put_u64(&mut buf, rep.faults.len() as u64);
    for f in &rep.faults {
        match f {
            FaultEntry::Drop { chan, ppm } => {
                buf.push(FAULT_DROP);
                put_str(&mut buf, chan);
                put_u64(&mut buf, *ppm);
            }
            FaultEntry::Dup { chan, ppm } => {
                buf.push(FAULT_DUP);
                put_str(&mut buf, chan);
                put_u64(&mut buf, *ppm);
            }
            FaultEntry::Delay { chan, ppm, cycles } => {
                buf.push(FAULT_DELAY);
                put_str(&mut buf, chan);
                put_u64(&mut buf, *ppm);
                put_u64(&mut buf, *cycles);
            }
            FaultEntry::Crash { proc, at } => {
                buf.push(FAULT_CRASH);
                put_str(&mut buf, proc);
                put_u64(&mut buf, *at);
            }
            FaultEntry::Slowdown {
                machine,
                from,
                until,
                factor,
            } => {
                buf.push(FAULT_SLOWDOWN);
                put_str(&mut buf, machine);
                put_u64(&mut buf, *from);
                put_u64(&mut buf, *until);
                put_u64(&mut buf, *factor);
            }
        }
    }
    match &rep.violation {
        Some(v) => {
            buf.push(1);
            put_str(&mut buf, v);
        }
        None => buf.push(0),
    }
    match &rep.window {
        Some(w) => {
            buf.push(1);
            put_u64(&mut buf, w.epoch_len);
            put_u64(&mut buf, w.start);
            put_u64(&mut buf, w.end);
            put_str(&mut buf, &w.dimension);
        }
        None => buf.push(0),
    }
    end_frame(&mut buf, body);
    buf
}

/// Decodes a [`KIND_REPRO`] frame, returning the bundle and the total
/// bytes consumed.
pub fn decode_repro(buf: &[u8]) -> Result<(ChaosRepro, usize), WireError> {
    let (mut r, consumed) = open_frame(buf, KIND_REPRO)?;
    let seed = r.u64()?;
    let policy = r.str()?.to_owned();
    let nw = r.count()?;
    let mut workload = Vec::with_capacity(nw);
    for _ in 0..nw {
        let k = r.str()?.to_owned();
        workload.push((k, r.u64()?));
    }
    let nf = r.count()?;
    let mut faults = Vec::with_capacity(nf);
    for _ in 0..nf {
        faults.push(match r.u8()? {
            FAULT_DROP => FaultEntry::Drop {
                chan: r.str()?.to_owned(),
                ppm: r.u64()?,
            },
            FAULT_DUP => FaultEntry::Dup {
                chan: r.str()?.to_owned(),
                ppm: r.u64()?,
            },
            FAULT_DELAY => FaultEntry::Delay {
                chan: r.str()?.to_owned(),
                ppm: r.u64()?,
                cycles: r.u64()?,
            },
            FAULT_CRASH => FaultEntry::Crash {
                proc: r.str()?.to_owned(),
                at: r.u64()?,
            },
            FAULT_SLOWDOWN => FaultEntry::Slowdown {
                machine: r.str()?.to_owned(),
                from: r.u64()?,
                until: r.u64()?,
                factor: r.u64()?,
            },
            _ => return Err(WireError::Malformed("unknown fault tag")),
        });
    }
    let violation = match r.u8()? {
        0 => None,
        1 => Some(r.str()?.to_owned()),
        _ => return Err(WireError::Malformed("bad option tag")),
    };
    let window = match r.u8()? {
        0 => None,
        1 => Some(ReproWindow {
            epoch_len: r.u64()?,
            start: r.u64()?,
            end: r.u64()?,
            dimension: r.str()?.to_owned(),
        }),
        _ => return Err(WireError::Malformed("bad option tag")),
    };
    if r.remaining() != 0 {
        return Err(WireError::Malformed("trailing bytes in repro body"));
    }
    Ok((
        ChaosRepro {
            seed,
            policy,
            workload,
            faults,
            violation,
            window,
        },
        consumed,
    ))
}

// ---------------------------------------------------------------------
// The ingest fast path: columns straight into the accumulator
// ---------------------------------------------------------------------

/// What [`apply_batch`] learned about the frame it applied.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WireBatchInfo {
    /// Epoch index the batch covers.
    pub epoch: u64,
    /// Global batch sequence number.
    pub seq: u64,
    /// Virtual time at the end of the epoch.
    pub end: u64,
    /// Total change events applied (matches [`EpochBatch::events`]).
    pub events: u64,
    /// Total frame bytes consumed from the buffer.
    pub consumed: usize,
}

/// Reusable column scratch so a stream of batches allocates once, not
/// once per delta.
#[derive(Default)]
struct ApplyScratch {
    syn_ctx: Vec<u32>,
    cct_ctx: Vec<u32>,
    cct_new: Vec<usize>,
    cct_grown: Vec<usize>,
    cct_start: Vec<usize>,
    grown_idx: Vec<u32>,
    key_a: Vec<u32>,
    key_b: Vec<u32>,
    val_a: Vec<u64>,
}

/// Decodes a [`KIND_BATCH`] frame **directly into** the per-stage
/// accumulators — the ingest hot path. No [`StageDelta`] or
/// [`EpochBatch`] is materialized: each column is streamed straight
/// into the accumulator's dense Vec-by-ctx-id layout.
///
/// Sequence numbers and structural baselines (CCT sizes, growth
/// targets, synopsis re-mints) are still validated, but the per-delta
/// lane-checksum recompute of [`StageAccumulator::apply`] is skipped:
/// the envelope's byte digest — verified by [`open_frame`] before any
/// parsing — already authenticated the transport. Unlike the struct
/// path, a mid-frame error is **not** transactional: the accumulators
/// may hold a prefix of the batch and must be discarded (the collector
/// keeps its own quarantine mirror for that; the benches only feed
/// this path verified-clean streams).
pub fn apply_batch(
    accs: &mut [StageAccumulator],
    buf: &[u8],
) -> Result<WireBatchInfo, WireError> {
    let (mut r, consumed) = open_frame(buf, KIND_BATCH)?;
    let epoch = r.u64()?;
    let seq = r.u64()?;
    let end = r.u64()?;
    let table = get_dict(&mut r)?;
    let nd = r.count()?;
    let mut events = 0u64;
    let mut scratch = ApplyScratch::default();
    for _ in 0..nd {
        events += apply_delta(accs, &mut r, &mut scratch, &table)?;
    }
    if r.remaining() != 0 {
        return Err(WireError::Malformed("trailing bytes in batch body"));
    }
    Ok(WireBatchInfo {
        epoch,
        seq,
        end,
        events,
        consumed,
    })
}

fn apply_delta(
    accs: &mut [StageAccumulator],
    r: &mut Reader<'_>,
    sc: &mut ApplyScratch,
    table: &[&str],
) -> Result<u64, WireError> {
    let stage = as_usize(r.u64()?)?;
    if stage >= accs.len() {
        return Err(WireError::Malformed("stage index out of range"));
    }
    let seq = r.u64()?;
    let acc = &mut accs[stage];
    if seq != acc.next_seq {
        return Err(WireError::Malformed("sequence gap on fast apply"));
    }
    let flags = r.u64()?;
    if flags & !F_ALL != 0 {
        return Err(WireError::Malformed("unknown delta section flag"));
    }
    let mut events = 0u64;

    // Intern-table tails.
    if flags & F_FRAMES != 0 {
        let nf = r.count()?;
        acc.frames.reserve(nf);
        for _ in 0..nf {
            let i = as_usize(r.u64()?)?;
            let s = *table
                .get(i)
                .ok_or(WireError::Malformed("frame string index out of range"))?;
            acc.frames.push(s.to_owned());
        }
        events += nf as u64;
    }
    if flags & F_CONTEXTS != 0 {
        let ncx = r.count()?;
        acc.contexts.reserve(ncx);
        for _ in 0..ncx {
            let na = r.count()?;
            let mut atoms = Vec::with_capacity(na);
            for _ in 0..na {
                atoms.push(get_atom(r)?);
            }
            acc.contexts.push(DumpContext { atoms });
        }
        events += ncx as u64;
    }

    // Synopses: ctx column, then raw column applied in place.
    if flags & F_SYNOPSES != 0 {
        let ns = r.count()?;
        sc.syn_ctx.clear();
        let mut dr = DodReader::new();
        for _ in 0..ns {
            sc.syn_ctx.push(as_u32(dr.next(r)?)?);
        }
        for i in 0..ns {
            let raw = r.u64()?;
            let ctx = sc.syn_ctx[i] as usize;
            if acc.synopses.len() <= ctx {
                acc.synopses.resize(ctx + 1, None);
            }
            if acc.synopses[ctx].is_some() {
                return Err(WireError::Malformed("synopsis re-minted for a context"));
            }
            acc.synopses[ctx] = Some(raw);
        }
        events += ns as u64;
    }

    // CCT header columns, baseline validation, placeholder extension.
    let nc = if flags & F_CCTS != 0 { r.count()? } else { 0 };
    sc.cct_ctx.clear();
    let mut dr = DodReader::new();
    for _ in 0..nc {
        let ctx = as_u32(dr.next(r)?)?;
        // diff_dump emits at most one CCT per context, sorted by ctx.
        // A repeated id would let a later, smaller resize shrink a
        // range an earlier entry's column fills still index — so the
        // column must be strictly increasing before anything mutates.
        if sc.cct_ctx.last().is_some_and(|&prev| prev >= ctx) {
            return Err(WireError::Malformed("CCT ctx column not strictly increasing"));
        }
        sc.cct_ctx.push(ctx);
    }
    sc.cct_start.clear();
    for k in 0..nc {
        let before = as_usize(r.u64()?)?;
        let i = sc.cct_ctx[k] as usize;
        if acc.ccts.len() <= i {
            acc.ccts.resize_with(i + 1, || None);
        }
        let nodes = acc.ccts[i].get_or_insert_with(Vec::new);
        if nodes.len() != before {
            return Err(WireError::Malformed("CCT baseline size mismatch"));
        }
        sc.cct_start.push(before);
    }
    sc.cct_new.clear();
    let mut total_new = 0u64;
    for k in 0..nc {
        let n = r.u64()?;
        if n > r.remaining() as u64 {
            return Err(WireError::Malformed("count exceeds frame size"));
        }
        total_new += n;
        let n = as_usize(n)?;
        sc.cct_new.push(n);
        let nodes = acc.ccts[sc.cct_ctx[k] as usize]
            .as_mut()
            .expect("cct slot initialized above");
        nodes.resize(
            sc.cct_start[k] + n,
            DumpNode {
                frame: None,
                parent: None,
                samples: 0,
                cycles: 0,
                calls: 0,
            },
        );
    }
    sc.cct_grown.clear();
    let mut total_grown = 0u64;
    for _ in 0..nc {
        let n = r.u64()?;
        if n > r.remaining() as u64 {
            return Err(WireError::Malformed("count exceeds frame size"));
        }
        total_grown += n;
        sc.cct_grown.push(as_usize(n)?);
    }
    events += total_new + total_grown;

    // Node field columns, filled in place across all CCTs.
    for k in 0..nc {
        let nodes = acc.ccts[sc.cct_ctx[k] as usize]
            .as_mut()
            .expect("cct slot initialized above");
        for j in 0..sc.cct_new[k] {
            nodes[sc.cct_start[k] + j].frame = opt_u32(r.u64()?)?;
        }
    }
    for k in 0..nc {
        let nodes = acc.ccts[sc.cct_ctx[k] as usize]
            .as_mut()
            .expect("cct slot initialized above");
        for j in 0..sc.cct_new[k] {
            nodes[sc.cct_start[k] + j].parent = opt_u32(r.u64()?)?;
        }
    }
    for k in 0..nc {
        let nodes = acc.ccts[sc.cct_ctx[k] as usize]
            .as_mut()
            .expect("cct slot initialized above");
        for j in 0..sc.cct_new[k] {
            nodes[sc.cct_start[k] + j].samples = r.u64()?;
        }
    }
    for k in 0..nc {
        let nodes = acc.ccts[sc.cct_ctx[k] as usize]
            .as_mut()
            .expect("cct slot initialized above");
        for j in 0..sc.cct_new[k] {
            nodes[sc.cct_start[k] + j].cycles = r.u64()?;
        }
    }
    for k in 0..nc {
        let nodes = acc.ccts[sc.cct_ctx[k] as usize]
            .as_mut()
            .expect("cct slot initialized above");
        for j in 0..sc.cct_new[k] {
            nodes[sc.cct_start[k] + j].calls = r.u64()?;
        }
    }

    // Grown columns: indices first (validated against the baseline),
    // then the three increment columns folded in place.
    sc.grown_idx.clear();
    for _ in 0..total_grown {
        sc.grown_idx.push(r.u32()?);
    }
    {
        let mut g = 0usize;
        for k in 0..nc {
            for _ in 0..sc.cct_grown[k] {
                if sc.grown_idx[g] as usize >= sc.cct_start[k] {
                    return Err(WireError::Malformed("CCT growth targets a missing node"));
                }
                g += 1;
            }
        }
    }
    let mut g = 0usize;
    for k in 0..nc {
        let nodes = acc.ccts[sc.cct_ctx[k] as usize]
            .as_mut()
            .expect("cct slot initialized above");
        for _ in 0..sc.cct_grown[k] {
            nodes[sc.grown_idx[g] as usize].samples += r.u64()?;
            g += 1;
        }
    }
    let mut g = 0usize;
    for k in 0..nc {
        let nodes = acc.ccts[sc.cct_ctx[k] as usize]
            .as_mut()
            .expect("cct slot initialized above");
        for _ in 0..sc.cct_grown[k] {
            nodes[sc.grown_idx[g] as usize].cycles += r.u64()?;
            g += 1;
        }
    }
    let mut g = 0usize;
    for k in 0..nc {
        let nodes = acc.ccts[sc.cct_ctx[k] as usize]
            .as_mut()
            .expect("cct slot initialized above");
        for _ in 0..sc.cct_grown[k] {
            nodes[sc.grown_idx[g] as usize].calls += r.u64()?;
            g += 1;
        }
    }

    // Crosstalk pair columns.
    let np = if flags & F_PAIRS != 0 { r.count()? } else { 0 };
    sc.key_a.clear();
    sc.key_b.clear();
    sc.val_a.clear();
    let mut dr = DodReader::new();
    for _ in 0..np {
        sc.key_a.push(as_u32(dr.next(r)?)?);
    }
    for _ in 0..np {
        sc.key_b.push(r.u32()?);
    }
    for _ in 0..np {
        sc.val_a.push(r.u64()?);
    }
    for i in 0..np {
        let e = acc
            .pairs
            .entry((sc.key_a[i], sc.key_b[i]))
            .or_insert((0, 0));
        e.0 += sc.val_a[i];
        e.1 += r.u64()?;
    }
    events += np as u64;

    // Crosstalk waiter columns.
    let nw = if flags & F_WAITERS != 0 { r.count()? } else { 0 };
    sc.key_a.clear();
    sc.val_a.clear();
    let mut dr = DodReader::new();
    for _ in 0..nw {
        sc.key_a.push(as_u32(dr.next(r)?)?);
    }
    for _ in 0..nw {
        sc.val_a.push(r.u64()?);
    }
    for i in 0..nw {
        let e = acc.waiters.entry(sc.key_a[i]).or_insert((0, 0));
        e.0 += sc.val_a[i];
        e.1 += r.u64()?;
    }
    events += nw as u64;

    if flags & F_PIGGYBACK != 0 {
        acc.piggyback_bytes += r.u64()?;
    }
    if flags & F_MESSAGES != 0 {
        acc.messages += r.u64()?;
    }
    // A divergent stored end-to-end checksum, when present: transport
    // integrity was already settled by the envelope digest, so it is
    // skipped, not recomputed.
    if flags & F_CHECKSUM != 0 {
        let _stored = r.fixed_u64()?;
    }
    acc.next_seq += 1;
    Ok(events)
}

// ---------------------------------------------------------------------
// JSON edge encoding (the legacy form and the compression baseline)
// ---------------------------------------------------------------------

fn atom_to_json(a: &DumpAtom, out: &mut String) {
    match a {
        DumpAtom::Frame(f) => {
            out.push_str("{\"Frame\":");
            out.push_str(&f.to_string());
            out.push('}');
        }
        DumpAtom::Path(p) => {
            out.push_str("{\"Path\":[");
            for (i, f) in p.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&f.to_string());
            }
            out.push_str("]}");
        }
        DumpAtom::Remote(chain) => {
            out.push_str("{\"Remote\":[");
            for (i, s) in chain.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&s.to_string());
            }
            out.push_str("]}");
        }
    }
}

fn opt_to_json(v: Option<u32>, out: &mut String) {
    match v {
        Some(x) => out.push_str(&x.to_string()),
        None => out.push_str("null"),
    }
}

fn delta_to_json(d: &StageDelta, out: &mut String) {
    out.push_str(&format!("{{\"stage\":{},\"seq\":{}", d.stage, d.seq));
    out.push_str(",\"new_frames\":[");
    for (i, f) in d.new_frames.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        esc(f, out);
    }
    out.push_str("],\"new_contexts\":[");
    for (i, c) in d.new_contexts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"atoms\":[");
        for (j, a) in c.atoms.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            atom_to_json(a, out);
        }
        out.push_str("]}");
    }
    out.push_str("],\"new_synopses\":[");
    for (i, &(raw, ctx)) in d.new_synopses.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{raw},{ctx}]"));
    }
    out.push_str("],\"ccts\":[");
    for (i, c) in d.ccts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"ctx\":{},\"nodes_before\":{},\"new_nodes\":[",
            c.ctx, c.nodes_before
        ));
        for (j, n) in c.new_nodes.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("{\"frame\":");
            opt_to_json(n.frame, out);
            out.push_str(",\"parent\":");
            opt_to_json(n.parent, out);
            out.push_str(&format!(
                ",\"samples\":{},\"cycles\":{},\"calls\":{}}}",
                n.samples, n.cycles, n.calls
            ));
        }
        out.push_str("],\"grown\":[");
        for (j, &(node, s, cy, ca)) in c.grown.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{node},{s},{cy},{ca}]"));
        }
        out.push_str("]}");
    }
    out.push_str("],\"pairs\":[");
    for (i, p) in d.pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"waiter\":{},\"holder\":{},\"count\":{},\"total_wait\":{}}}",
            p.waiter, p.holder, p.count, p.total_wait
        ));
    }
    out.push_str("],\"waiters\":[");
    for (i, w) in d.waiters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"waiter\":{},\"count\":{},\"total_wait\":{}}}",
            w.waiter, w.count, w.total_wait
        ));
    }
    out.push_str(&format!(
        "],\"piggyback_bytes\":{},\"messages\":{},\"checksum\":{}}}",
        d.piggyback_bytes, d.messages, d.checksum
    ));
}

/// The JSON edge encoding of an [`EpochBatch`] — the legacy wire form
/// kept for differential testing, and the honest baseline the
/// `bytes_per_event` compression gate divides against (same field set,
/// same [`crate::dumpjson`] house style as the stage dumps).
pub fn batch_to_json(b: &EpochBatch) -> String {
    let mut out = String::with_capacity(256);
    out.push_str(&format!(
        "{{\"epoch\":{},\"seq\":{},\"end\":{},\"deltas\":[",
        b.epoch, b.seq, b.end
    ));
    for (i, d) in b.deltas.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        delta_to_json(d, &mut out);
    }
    out.push_str("]}");
    out
}

/// The JSON edge encoding of a federation [`SummaryFrame`] — the
/// legacy link form the federation byte counters compare the binary
/// codec against.
pub fn summary_to_json(f: &SummaryFrame) -> String {
    let mut out = String::with_capacity(256);
    out.push_str(&format!(
        "{{\"src\":{},\"seq\":{},\"first_epoch\":{},\"last_epoch\":{},\"end\":{},\"deltas\":[",
        f.src, f.seq, f.first_epoch, f.last_epoch, f.end
    ));
    for (i, d) in f.deltas.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        delta_to_json(d, &mut out);
    }
    out.push_str("],\"sketches\":[");
    for (i, s) in f.sketches.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"tier\":");
        esc(&s.tier, &mut out);
        out.push_str(&format!(",\"max\":{},\"buckets\":[", s.max));
        for (j, &(b, c)) in s.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{b},{c}]"));
        }
        out.push_str("]}");
    }
    out.push_str("],\"leaf_mass\":[");
    for (i, &(leaf, m)) in f.leaf_mass.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{leaf},{m}]"));
    }
    out.push_str("],\"gauges\":[");
    for (i, &(leaf, g)) in f.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "[{leaf},{{\"last_epoch\":{},\"events\":{},\"mass\":{},\"lag_frames\":{},\"checkpoints\":{},\"recoveries\":{}}}]",
            g.last_epoch, g.events, g.mass, g.lag_frames, g.checkpoints, g.recoveries
        ));
    }
    out.push_str(&format!("],\"checksum\":{}}}", f.checksum));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::diff_dump;
    use crate::stitch::{DumpCct, StageDump};
    use crate::summary::seal_delta;

    fn node(frame: Option<u32>, parent: Option<u32>, cycles: u64) -> DumpNode {
        DumpNode {
            frame,
            parent,
            samples: cycles / 100,
            cycles,
            calls: 1,
        }
    }

    fn base_dump() -> StageDump {
        StageDump {
            proc: 1,
            stage_name: "app".into(),
            frames: vec!["main".into(), "handle \"x\"".into()],
            contexts: vec![
                DumpContext { atoms: vec![] },
                DumpContext {
                    atoms: vec![
                        DumpAtom::Frame(1),
                        DumpAtom::Path(vec![0, 1]),
                        DumpAtom::Remote(vec![0x0100_0001, u64::MAX]),
                    ],
                },
            ],
            ccts: vec![DumpCct {
                ctx: 1,
                nodes: vec![node(None, None, 100), node(Some(1), Some(0), 300)],
            }],
            synopses: vec![(0x0100_0001, 1)],
            crosstalk_pairs: vec![DumpCrosstalkPair {
                waiter: 1,
                holder: 0,
                count: 2,
                total_wait: 50,
            }],
            crosstalk_waiters: vec![DumpCrosstalkWaiter {
                waiter: 1,
                count: 4,
                total_wait: 50,
            }],
            piggyback_bytes: 8,
            messages: 2,
        }
    }

    fn grown_dump() -> StageDump {
        let mut d = base_dump();
        d.frames.push("query".into());
        d.contexts.push(DumpContext {
            atoms: vec![DumpAtom::Remote(vec![0x0100_0001])],
        });
        d.ccts[0].nodes[1].samples += 2;
        d.ccts[0].nodes[1].cycles += 120;
        d.ccts[0].nodes.push(node(Some(2), Some(1), 40));
        d.ccts.insert(
            0,
            DumpCct {
                ctx: 0,
                nodes: vec![node(None, None, 10)],
            },
        );
        d.synopses.push((0x0100_0002, 2));
        d.crosstalk_pairs[0].count += 1;
        d.crosstalk_pairs[0].total_wait += 25;
        d.crosstalk_waiters.push(DumpCrosstalkWaiter {
            waiter: 2,
            count: 1,
            total_wait: 0,
        });
        d.piggyback_bytes += 4;
        d.messages += 1;
        d
    }

    fn sample_batches() -> (StreamHeader, Vec<EpochBatch>) {
        let header = StreamHeader {
            stages: vec![StreamStage {
                proc: 1,
                stage_name: "app".into(),
            }],
        };
        let a = base_dump();
        let b = grown_dump();
        let d0 = diff_dump(0, 0, None, &a).unwrap();
        let d1 = diff_dump(0, 1, Some(&a), &b).unwrap();
        let batches = vec![
            EpochBatch {
                epoch: 0,
                seq: 0,
                end: 100,
                deltas: vec![d0],
            },
            EpochBatch {
                epoch: 1,
                seq: 1,
                end: 200,
                deltas: vec![d1],
            },
        ];
        (header, batches)
    }

    #[test]
    fn varints_round_trip() {
        let mut buf = Vec::new();
        let vals = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &vals {
            put_u64(&mut buf, v);
        }
        let mut r = Reader::new(&buf);
        for &v in &vals {
            assert_eq!(r.u64().unwrap(), v);
        }
        assert_eq!(r.remaining(), 0);
        // An 11-byte continuation run cannot be a u64.
        let mut r = Reader::new(&[0x80; 11]);
        assert!(r.u64().is_err());
        // Varint value bits past 64 are rejected, not truncated.
        let mut r = Reader::new(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02]);
        assert!(r.u64().is_err());
    }

    #[test]
    fn dod_round_trips_arbitrary_sequences() {
        let seqs: &[&[u64]] = &[
            &[],
            &[0],
            &[u64::MAX],
            &[1, 2, 3, 4, 5],
            &[5, 4, 3, 0, u64::MAX, 0, u64::MAX],
            &[100, 100, 100, 7, 9, 11, 13],
        ];
        for seq in seqs {
            let mut buf = Vec::new();
            let mut w = DodWriter::new();
            for &v in *seq {
                w.push(&mut buf, v);
            }
            let mut r = Reader::new(&buf);
            let mut dr = DodReader::new();
            for &v in *seq {
                assert_eq!(dr.next(&mut r).unwrap(), v, "seq {seq:?}");
            }
            assert_eq!(r.remaining(), 0);
        }
        // An arithmetic run costs one byte per element after the head.
        let mut buf = Vec::new();
        let mut w = DodWriter::new();
        for v in (1000..1100).map(|x| x * 8) {
            w.push(&mut buf, v);
        }
        assert!(buf.len() <= 2 + 2 + 98, "dod run not compact: {}", buf.len());
    }

    #[test]
    fn envelope_rejects_damage() {
        let (header, _) = sample_batches();
        let frame = encode_header(&header);
        assert_eq!(decode_header(&frame).unwrap().0, header);

        let mut bad = frame.clone();
        bad[0] = b'X';
        assert_eq!(decode_header(&bad), Err(WireError::BadMagic));
        let mut bad = frame.clone();
        bad[3] = 9;
        assert_eq!(decode_header(&bad), Err(WireError::BadVersion(9)));
        assert_eq!(
            open_frame(&frame, KIND_BATCH).unwrap_err(),
            WireError::BadKind {
                expected: KIND_BATCH,
                got: KIND_HEADER
            }
        );
        for cut in [0, 5, frame.len() - 1] {
            assert_eq!(
                decode_header(&frame[..cut]),
                Err(WireError::Truncated),
                "cut {cut}"
            );
        }
        // Every single-bit flip in the body or trailer is detected.
        for byte in ENVELOPE_HEAD..frame.len() {
            let mut bad = frame.clone();
            bad[byte] ^= 0x40;
            assert_eq!(decode_header(&bad), Err(WireError::Checksum), "byte {byte}");
        }
    }

    #[test]
    fn batch_round_trip_is_exact() {
        let (_, batches) = sample_batches();
        for b in &batches {
            let frame = encode_batch(b);
            let (back, consumed) = decode_batch(&frame).unwrap();
            assert_eq!(&back, b);
            assert_eq!(consumed, frame.len());
        }
        // Concatenated frames parse in sequence via `consumed`.
        let stream: Vec<u8> = batches.iter().flat_map(encode_batch).collect();
        let mut at = 0;
        for b in &batches {
            let (back, consumed) = decode_batch(&stream[at..]).unwrap();
            assert_eq!(&back, b);
            at += consumed;
        }
        assert_eq!(at, stream.len());
    }

    #[test]
    fn bad_stored_checksum_round_trips_for_the_struct_path() {
        // A delta whose *end-to-end* checksum is wrong must survive the
        // wire unchanged so the accumulator still quarantines it.
        let (_, mut batches) = sample_batches();
        batches[0].deltas[0].checksum ^= 1;
        let frame = encode_batch(&batches[0]);
        let (back, _) = decode_batch(&frame).unwrap();
        assert_eq!(back, batches[0]);
    }

    #[test]
    fn apply_batch_matches_struct_apply() {
        let (header, batches) = sample_batches();
        let mut fast: Vec<StageAccumulator> =
            header.stages.iter().map(StageAccumulator::new).collect();
        let mut slow: Vec<StageAccumulator> =
            header.stages.iter().map(StageAccumulator::new).collect();
        let mut events = 0;
        for b in &batches {
            let frame = encode_batch(b);
            let info = apply_batch(&mut fast, &frame).unwrap();
            assert_eq!(
                (info.epoch, info.seq, info.end, info.consumed),
                (b.epoch, b.seq, b.end, frame.len())
            );
            events += info.events;
            for d in &b.deltas {
                slow[d.stage].apply(d).unwrap();
            }
        }
        assert_eq!(events, batches.iter().map(|b| b.events()).sum::<u64>());
        for (f, s) in fast.iter().zip(&slow) {
            assert_eq!(f.to_dump(), s.to_dump());
            assert_eq!(f.next_seq(), s.next_seq());
        }
    }

    #[test]
    fn apply_batch_rejects_inconsistent_frames() {
        let (header, batches) = sample_batches();
        let mk = || -> Vec<StageAccumulator> {
            header.stages.iter().map(StageAccumulator::new).collect()
        };
        // Sequence gap: the second batch cannot apply first.
        let mut accs = mk();
        assert!(apply_batch(&mut accs, &encode_batch(&batches[1])).is_err());
        // Stage out of range.
        let mut b = batches[0].clone();
        b.deltas[0].stage = 7;
        assert!(apply_batch(&mut mk(), &encode_batch(&b)).is_err());
        // Baseline mismatch.
        let mut b = batches[1].clone();
        b.deltas[0].ccts[0].nodes_before += 1;
        let mut accs = mk();
        apply_batch(&mut accs, &encode_batch(&batches[0])).unwrap();
        assert!(apply_batch(&mut accs, &encode_batch(&b)).is_err());
    }

    #[test]
    fn duplicate_cct_ctx_is_rejected_before_any_mutation() {
        // A checksum-valid frame whose CCT section lists the same ctx
        // twice with a smaller new-node count the second time: the
        // second resize would shrink the Vec below the range the first
        // entry's column fills index. Both decode paths must reject
        // the frame as malformed — never panic.
        let mut d = StageDelta {
            stage: 0,
            seq: 0,
            new_frames: vec![],
            new_contexts: vec![],
            new_synopses: vec![],
            ccts: vec![
                CctDelta {
                    ctx: 1,
                    nodes_before: 0,
                    new_nodes: vec![node(None, None, 100), node(Some(0), Some(0), 200)],
                    grown: vec![],
                },
                CctDelta {
                    ctx: 1,
                    nodes_before: 0,
                    new_nodes: vec![node(None, None, 300)],
                    grown: vec![],
                },
            ],
            pairs: vec![],
            waiters: vec![],
            piggyback_bytes: 0,
            messages: 0,
            checksum: 0,
        };
        d.checksum = d.compute_checksum();
        let frame = encode_batch(&EpochBatch {
            epoch: 0,
            seq: 0,
            end: 100,
            deltas: vec![d],
        });
        let expected = WireError::Malformed("CCT ctx column not strictly increasing");
        let mut accs = vec![StageAccumulator::new(&StreamStage {
            proc: 1,
            stage_name: "app".into(),
        })];
        assert_eq!(apply_batch(&mut accs, &frame).unwrap_err(), expected);
        assert_eq!(decode_batch(&frame).unwrap_err(), expected);
    }

    #[test]
    fn summary_round_trip_is_exact() {
        let (_, batches) = sample_batches();
        let mut sk = QuantileSketch::new();
        for v in [3u64, 90, 90, 4000, 1 << 40] {
            sk.record(v);
        }
        let frame = SummaryFrame {
            src: 3,
            seq: 5,
            first_epoch: 0,
            last_epoch: 4,
            end: 5_000,
            deltas: vec![seal_delta(batches[0].deltas[0].clone(), 0)],
            sketches: vec![TierSketch::of("app", &sk)],
            leaf_mass: vec![(3, 200), (9, 50)],
            gauges: vec![
                (
                    3,
                    LeafGauges {
                        last_epoch: 4,
                        events: 100,
                        mass: 200,
                        lag_frames: 1,
                        checkpoints: 2,
                        recoveries: 0,
                    },
                ),
                (9, LeafGauges::default()),
            ],
            checksum: 0,
        }
        .seal();
        let bytes = encode_summary(&frame);
        let (back, consumed) = decode_summary(&bytes).unwrap();
        assert_eq!(back, frame);
        assert_eq!(consumed, bytes.len());
        assert!(back.verify());
    }

    #[test]
    fn sketch_frame_round_trips_bit_identically() {
        let mut s = QuantileSketch::new();
        for v in [0u64, 3, 3, 99, 1 << 20, u64::MAX] {
            s.record(v);
        }
        let (back, _) = decode_sketch(&encode_sketch(&s)).unwrap();
        assert_eq!(back.count(), s.count());
        assert_eq!(back.max(), s.max());
        for q in [0u64, 500_000, 990_000, 1_000_000] {
            assert_eq!(back.quantile_ppm(q), s.quantile_ppm(q));
        }
    }

    #[test]
    fn repro_frame_round_trips() {
        let rep = ChaosRepro {
            seed: 0xF00D,
            policy: "perturb:7:250000".into(),
            workload: vec![("clients".into(), 40)],
            faults: vec![
                FaultEntry::Drop {
                    chan: "db".into(),
                    ppm: 50_000,
                },
                FaultEntry::Delay {
                    chan: "db".into(),
                    ppm: 100_000,
                    cycles: 24_000_000,
                },
                FaultEntry::Crash {
                    proc: "mysql".into(),
                    at: 240_000_000_000,
                },
                FaultEntry::Dup {
                    chan: "front".into(),
                    ppm: 1,
                },
                FaultEntry::Slowdown {
                    machine: "mysql".into(),
                    from: 1,
                    until: 2,
                    factor: 3,
                },
            ],
            violation: Some("mass-conservation".into()),
            window: Some(ReproWindow {
                epoch_len: 2_400_000_000,
                start: 17,
                end: 23,
                dimension: "slo-latency".into(),
            }),
        };
        let (back, _) = decode_repro(&encode_repro(&rep)).unwrap();
        assert_eq!(back, rep);
        // None variants too.
        let plain = ChaosRepro::default();
        let (back, _) = decode_repro(&encode_repro(&plain)).unwrap();
        assert_eq!(back, plain);
    }

    #[test]
    fn wire_beats_json_by_the_gate_margin() {
        let (_, batches) = sample_batches();
        for b in &batches {
            let wire = encode_batch(b).len();
            let json = batch_to_json(b).len();
            assert!(
                wire * 5 <= json,
                "wire {wire} vs json {json}: under 5x even on a tiny batch"
            );
        }
    }

    #[test]
    fn fuzzed_bodies_never_panic() {
        // Valid envelope, adversarial bodies: every outcome must be a
        // typed error or a successful parse, never a panic.
        let mut seed = 0x1234_5678_9abc_def0u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for len in 0..64 {
            for _ in 0..32 {
                let mut buf = Vec::new();
                let body = begin_frame(&mut buf, KIND_BATCH);
                for _ in 0..len {
                    buf.push(rng() as u8);
                }
                end_frame(&mut buf, body);
                let _ = decode_batch(&buf);
                let mut accs = vec![StageAccumulator::new(&StreamStage {
                    proc: 1,
                    stage_name: "app".into(),
                })];
                let _ = apply_batch(&mut accs, &buf);
            }
        }
    }
}
