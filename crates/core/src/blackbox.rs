//! Black-box communication logs: what a passive network observer sees.
//!
//! Whodunit proper assumes cooperating tiers that mint synopses. The
//! black-box request-tracing line of work (vPath and the "precise
//! request tracing for multi-tier services of black boxes" papers,
//! arXiv:1003.0955 / arXiv:1007.4057) shows that much of the causal
//! structure can be recovered *without* any in-process cooperation,
//! from three observables alone:
//!
//! 1. per-channel **send/recv events** with timestamps and endpoints
//!    (what a switch-port tap or kernel-level tracer records),
//! 2. the **causal order of events on each thread** (a thread that
//!    receives a message and then sends one acted *because of* the
//!    recv — the synchronous-worker assumption), and
//! 3. message **timing**: a recv can only pair with a send that
//!    happened earlier by at least the channel's base latency.
//!
//! This module defines the wire-neutral log types: [`CommEvent`] is one
//! observed send or recv, [`CommLog`] is the full trace of a run, and
//! [`CommRecorder`] is the builder the simulator drives. Because the
//! simulator knows the real message flow, the recorder also captures
//! the **ground truth** ([`CommTruth`]): which send produced each recv
//! and which root transaction each message belongs to. Inference
//! (`crates/infer`) consumes only [`CommLog::events`]; the truth half is
//! reserved for the scoring oracle
//! ([`crate::oracle::check_inference`]) — an inference pass that read it
//! would be cheating, and the oracle's fabrication checks exist to
//! catch exactly that.
//!
//! [`TierVisibility`] is the hybrid-mode knob: a `Cooperating` tier
//! exports its stage dump (synopses and all), an `Opaque` tier exports
//! nothing but its network footprint, so its edges must be inferred.

use std::collections::HashMap;

/// Identifier of one observed communication event, dense from 0 in
/// observation order. Doubles as the transaction-root id: a root is
/// named by the send event that started it.
pub type CommEventId = u64;

/// How much of a tier the profiling harness can see.
///
/// This is the hybrid-deployment knob: real fleets mix tiers that run
/// the Whodunit runtime with closed appliances that cannot be
/// instrumented. A `Cooperating` tier contributes its stage dump to
/// stitching; an `Opaque` tier contributes only what the network
/// observer saw, and its cross-tier edges fall back to black-box
/// inference.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum TierVisibility {
    /// The tier runs the profiler and exports synopses + stage dumps.
    #[default]
    Cooperating,
    /// The tier is a black box: no dump, no synopses, network
    /// footprint only.
    Opaque,
}

/// Direction of an observed communication event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CommKind {
    /// A message was handed to a channel.
    Send,
    /// A message was received from a channel (application-level
    /// delivery, not wire arrival).
    Recv,
}

/// One observed send or recv: the tuple a passive tap records.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CommEvent {
    /// Dense event id in observation order.
    pub id: CommEventId,
    /// Simulated time of the observation, in cycles.
    pub at: u64,
    /// Send or recv.
    pub kind: CommKind,
    /// The channel the message moved on.
    pub chan: u32,
    /// The process that performed the event.
    pub proc: u32,
    /// The thread (global id) that performed the event — this is what
    /// carries the causal-order observable.
    pub thread: u32,
    /// Observed payload bytes (piggyback bytes are invisible to the
    /// observer: they ride inside what it sees as opaque payload).
    pub bytes: u64,
}

/// Simulator-known ground truth about a [`CommLog`].
///
/// Everything here is keyed by event ids from the same log. Scoring
/// is per-recv: each recv has exactly one true source send and one
/// true root origin (dropped messages simply never produce a recv;
/// duplicated messages produce two recvs with the same source).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CommTruth {
    /// `(recv event id, send event id)` — the send that produced each
    /// received message. Sorted by recv id (recorded in recv order).
    pub pair_of: Vec<(CommEventId, CommEventId)>,
    /// `(recv event id, root send event id)` — the transaction root
    /// each received message serves. Sorted by recv id.
    pub origin_of: Vec<(CommEventId, CommEventId)>,
    /// Send event ids that minted fresh transaction roots.
    pub roots: Vec<CommEventId>,
}

/// The full communication trace of one simulated run.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CommLog {
    /// All observed events, id order == observation order.
    pub events: Vec<CommEvent>,
    /// Ground truth (oracle-only; inference must not read this).
    pub truth: CommTruth,
}

impl CommLog {
    /// Number of recorded recv events.
    pub fn recv_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == CommKind::Recv)
            .count()
    }

    /// Number of recorded send events.
    pub fn send_count(&self) -> usize {
        self.events.len() - self.recv_count()
    }

    /// Ground-truth `recv → send` pairing as a map.
    pub fn truth_pairs(&self) -> HashMap<CommEventId, CommEventId> {
        self.truth.pair_of.iter().copied().collect()
    }

    /// Ground-truth `recv → root` origin map.
    pub fn truth_origins(&self) -> HashMap<CommEventId, CommEventId> {
        self.truth.origin_of.iter().copied().collect()
    }
}

/// The truth tag a simulated message carries while in flight. Purely
/// bookkeeping: the profiler and the application never see it, so it
/// cannot perturb behavior.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CommTag {
    /// The send event that put this message on the wire.
    pub send_event: CommEventId,
    /// The transaction root the message serves.
    pub origin: CommEventId,
}

/// Builder the simulator drives while a run executes.
///
/// Per-thread origin propagation implements the ground-truth rule:
/// a thread inherits the origin of the last message it received; a
/// send from a thread on a *marked origin process* (an external
/// client) always mints a fresh root, as does a send from a thread
/// that has received nothing yet (a self-starting internal driver).
#[derive(Debug, Default)]
pub struct CommRecorder {
    log: CommLog,
    origin_procs: Vec<u32>,
    thread_origin: HashMap<u32, CommEventId>,
}

impl CommRecorder {
    /// A fresh recorder with no marked origin processes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks `proc` as an external origin: every send from its threads
    /// starts a new transaction (think: each client request).
    pub fn mark_origin_proc(&mut self, proc: u32) {
        if !self.origin_procs.contains(&proc) {
            self.origin_procs.push(proc);
        }
    }

    /// Records a send and returns the truth tag the in-flight message
    /// must carry so the matching recv can be attributed.
    pub fn on_send(&mut self, at: u64, chan: u32, proc: u32, thread: u32, bytes: u64) -> CommTag {
        let id = self.log.events.len() as CommEventId;
        self.log.events.push(CommEvent {
            id,
            at,
            kind: CommKind::Send,
            chan,
            proc,
            thread,
            bytes,
        });
        let inherited = if self.origin_procs.contains(&proc) {
            None
        } else {
            self.thread_origin.get(&thread).copied()
        };
        let origin = inherited.unwrap_or_else(|| {
            self.log.truth.roots.push(id);
            id
        });
        CommTag {
            send_event: id,
            origin,
        }
    }

    /// Records an application-level recv of a message carrying `tag`.
    pub fn on_recv(&mut self, at: u64, chan: u32, proc: u32, thread: u32, bytes: u64, tag: CommTag) {
        let id = self.log.events.len() as CommEventId;
        self.log.events.push(CommEvent {
            id,
            at,
            kind: CommKind::Recv,
            chan,
            proc,
            thread,
            bytes,
        });
        self.log.truth.pair_of.push((id, tag.send_event));
        self.log.truth.origin_of.push((id, tag.origin));
        self.thread_origin.insert(thread, tag.origin);
    }

    /// Consumes the recorder, yielding the finished log.
    pub fn finish(self) -> CommLog {
        self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_propagation_follows_thread_causality() {
        let mut rec = CommRecorder::new();
        rec.mark_origin_proc(9);
        // Client (proc 9, thread 90) sends a request: fresh root 0.
        let t0 = rec.on_send(100, 1, 9, 90, 400);
        assert_eq!(t0.origin, 0);
        // Server thread 10 receives it, then calls the DB: origin 0
        // propagates along the thread.
        rec.on_recv(150, 1, 0, 10, 400, t0);
        let t1 = rec.on_send(200, 2, 0, 10, 300);
        assert_eq!(t1.origin, 0);
        assert_eq!(t1.send_event, 2);
        // DB thread replies; server thread replies to client.
        rec.on_recv(250, 2, 1, 20, 300, t1);
        let t2 = rec.on_send(300, 3, 1, 20, 500);
        assert_eq!(t2.origin, 0);
        rec.on_recv(350, 3, 0, 10, 500, t2);
        let t3 = rec.on_send(400, 4, 0, 10, 600);
        assert_eq!(t3.origin, 0);
        rec.on_recv(450, 4, 9, 90, 600, t3);
        // The client's *next* request mints a fresh root even though
        // its thread just received origin-0 mass.
        let t4 = rec.on_send(500, 1, 9, 90, 400);
        assert_eq!(t4.origin, t4.send_event);
        let log = rec.finish();
        assert_eq!(log.truth.roots, vec![0, t4.send_event]);
        assert_eq!(log.send_count(), 5);
        assert_eq!(log.recv_count(), 4);
        assert_eq!(log.truth_pairs()[&1], 0);
        assert_eq!(log.truth_origins().values().filter(|&&o| o == 0).count(), 4);
    }

    #[test]
    fn selfstarting_internal_thread_mints_root() {
        let mut rec = CommRecorder::new();
        let t = rec.on_send(10, 1, 3, 30, 64);
        assert_eq!(t.origin, t.send_event);
        assert_eq!(rec.finish().truth.roots.len(), 1);
    }
}
