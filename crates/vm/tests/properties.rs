//! Property-based tests of the instruction emulator.

use proptest::prelude::*;
use whodunit_core::context::CtxId;
use whodunit_core::ids::{LockId, ThreadId};
use whodunit_core::shm::{FlowDetector, FlowEvent, MemEvent};
use whodunit_vm::programs::FdQueue;
use whodunit_vm::{
    assemble, Cpu, CsEmulator, ExecMode, GuestMem, Instr, Program, TranslationCache,
};

/// Strategy: straight-line instructions with bounded registers and
/// absolute addresses (guaranteed in-bounds for a 64-word memory).
fn instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (0u8..8, 0u8..8).prop_map(|(d, s)| Instr::MovRR { d, s }),
        (0u8..8, -100i64..100).prop_map(|(d, imm)| Instr::MovRI { d, imm }),
        (0u8..8, 0u64..64).prop_map(|(d, addr)| Instr::LoadA { d, addr }),
        (0u8..8, 0u64..64).prop_map(|(s, addr)| Instr::StoreA { s, addr }),
        (0u8..8, 0u8..8, 0u8..8).prop_map(|(d, a, b)| Instr::Add { d, a, b }),
        (0u8..8, 0u8..8, -50i64..50).prop_map(|(d, a, imm)| Instr::AddI { d, a, imm }),
        (0u8..8, 0u8..8, -4i64..4).prop_map(|(d, a, imm)| Instr::MulI { d, a, imm }),
        (0u64..64).prop_map(|addr| Instr::IncA { addr }),
        (0u64..64).prop_map(|addr| Instr::DecA { addr }),
        (0u8..8, 0u8..8).prop_map(|(a, b)| Instr::Cmp { a, b }),
        Just(Instr::Nop),
    ]
}

proptest! {
    /// Any straight-line program executes in both modes with identical
    /// final machine state; direct cost sums instruction costs; the
    /// emulated charge is at least the direct charge.
    #[test]
    fn direct_and_emulated_agree_on_state(body in proptest::collection::vec(instr(), 0..40)) {
        let mut instrs = vec![Instr::Lock { lock: 1 }];
        instrs.extend(body.iter().copied());
        instrs.push(Instr::Unlock { lock: 1 });
        instrs.push(Instr::Halt);
        let prog = Program::new("prop", instrs.clone());

        let mut cpu_d = Cpu::new(ThreadId(1));
        let mut mem_d = GuestMem::new(64);
        let emu = CsEmulator::default();
        let st_d = emu.run(&prog, &mut cpu_d, &mut mem_d, ExecMode::Direct, &mut |_| {});

        let mut cpu_e = Cpu::new(ThreadId(1));
        let mut mem_e = GuestMem::new(64);
        let mut tc = TranslationCache::new();
        let st_e = emu.run(
            &prog,
            &mut cpu_e,
            &mut mem_e,
            ExecMode::Emulated { tcache: &mut tc },
            &mut |_| {},
        );

        prop_assert_eq!(cpu_d.regs, cpu_e.regs);
        for a in 0..64u64 {
            prop_assert_eq!(mem_d.read(a), mem_e.read(a));
        }
        prop_assert_eq!(st_d.instrs, st_e.instrs);
        let want: u64 = instrs.iter().map(|i| i.direct_cost()).sum();
        prop_assert_eq!(st_d.cycles, want);
        prop_assert!(st_e.cycles >= st_d.cycles);
        prop_assert!(st_d.halted && st_e.halted);
    }

    /// Every `Use` event reported in the consume window refers to a
    /// location some windowed instruction actually read.
    #[test]
    fn window_event_stream_is_well_formed(body in proptest::collection::vec(instr(), 0..20)) {
        let mut instrs = vec![Instr::Lock { lock: 1 }, Instr::StoreA { s: 1, addr: 5 }, Instr::Unlock { lock: 1 }];
        instrs.extend(body.iter().copied());
        instrs.push(Instr::Halt);
        let prog = Program::new("w", instrs);
        let mut cpu = Cpu::new(ThreadId(1));
        let mut mem = GuestMem::new(64);
        let mut tc = TranslationCache::new();
        let mut in_cs = false;
        let mut ok = true;
        let emu = CsEmulator::default();
        emu.run(
            &prog,
            &mut cpu,
            &mut mem,
            ExecMode::Emulated { tcache: &mut tc },
            &mut |e| match e {
                MemEvent::CsEnter { .. } => in_cs = true,
                MemEvent::CsExit => in_cs = false,
                MemEvent::Mov { .. } | MemEvent::Modify { .. } => {
                    // Structural events only inside critical sections.
                    ok &= in_cs;
                }
                MemEvent::Use { .. } => {
                    // Uses only outside critical sections.
                    ok &= !in_cs;
                }
            },
        );
        prop_assert!(ok, "event stream violated CS/window structure");
    }

    /// FIFO value integrity and flow detection through the fd queue
    /// under any valid interleaving of pushes and pops (LIFO element
    /// order, as in Apache's array implementation).
    #[test]
    fn fd_queue_flow_under_random_interleavings(
        ops in proptest::collection::vec(any::<bool>(), 1..60)
    ) {
        let q = FdQueue::new(7);
        let mut mem = GuestMem::new(FdQueue::mem_words(64));
        FdQueue::init(&mut mem, 64);
        let mut det = FlowDetector::default();
        let mut tc = TranslationCache::new();
        let emu = CsEmulator::default();
        let mut stack: Vec<(i64, u32)> = Vec::new();
        let mut next_val = 100i64;

        for (i, &push) in ops.iter().enumerate() {
            let prod = ThreadId(1);
            let cons = ThreadId(2);
            if push && stack.len() < 60 {
                let ctx = 1000 + i as u32;
                let mut cpu = Cpu::new(prod);
                cpu.regs[1] = next_val;
                cpu.regs[2] = next_val + 1;
                let mut out = Vec::new();
                emu.run(&q.push, &mut cpu, &mut mem, ExecMode::Emulated { tcache: &mut tc }, &mut |e| {
                    det.on_event(prod, CtxId(ctx), e, &mut out);
                });
                stack.push((next_val, ctx));
                next_val += 10;
            } else if !push && !stack.is_empty() {
                let (want_val, want_ctx) = stack.pop().unwrap();
                let mut cpu = Cpu::new(cons);
                let mut out = Vec::new();
                emu.run(&q.pop, &mut cpu, &mut mem, ExecMode::Emulated { tcache: &mut tc }, &mut |e| {
                    det.on_event(cons, CtxId::ROOT, e, &mut out);
                });
                prop_assert_eq!(cpu.regs[5], want_val, "value integrity");
                prop_assert!(
                    out.iter().any(|e| matches!(
                        e,
                        FlowEvent::Consumed { ctx, .. } if *ctx == CtxId(want_ctx)
                    )),
                    "expected consume of ctx {} in {:?}", want_ctx, out
                );
            }
        }
        prop_assert!(det.flow_enabled(LockId(7)));
    }

    /// Assembler round trip: rendering a jump-free program and
    /// re-assembling it yields the same instructions.
    #[test]
    fn assembler_roundtrip(body in proptest::collection::vec(instr(), 0..30)) {
        // Negative offsets render as `+-n`, which the assembler does not
        // parse; the strategy avoids indexed operands entirely.
        let prog = Program::new("rt", body.clone());
        let text: String = prog.instrs.iter().map(|i| format!("{i}\n")).collect();
        let back = assemble("rt", &text).unwrap();
        prop_assert_eq!(back.instrs, body);
    }
}
