//! The guest instruction set.
//!
//! The §3 algorithm needs exactly one semantic distinction: *`MOV`
//! memory operations* (data moved unchanged from one location to
//! another) versus *every other modification* (immediate stores,
//! arithmetic, read-modify-write). The ISA below is a minimal register
//! machine with that distinction, word-addressed memory, compare/branch
//! control flow, and `lock`/`unlock` critical-section markers.
//!
//! Direct-execution cycle costs per instruction approximate a 2007-era
//! x86: ≈1 cycle for register ALU work, a few cycles for cache-hit
//! memory accesses, tens of cycles for the atomic operations inside
//! `pthread_mutex_lock`/`unlock`. They are what the "Direct Execution"
//! column of Table 3 measures.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// Number of general-purpose registers (`r0`–`r15`).
pub const NREGS: usize = 16;

/// Interned program identity.
///
/// Equal names always intern to the same id, so consumers like the
/// translation cache can key on a dense `u32` instead of hashing and
/// cloning name strings. Ids are process-global and never appear in
/// any output.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProgId(pub u32);

fn intern_prog_name(name: &str) -> ProgId {
    static IDS: OnceLock<Mutex<HashMap<String, u32>>> = OnceLock::new();
    let mut ids = IDS
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("program-name interner poisoned");
    if let Some(&id) = ids.get(name) {
        return ProgId(id);
    }
    let id = ids.len() as u32;
    ids.insert(name.to_owned(), id);
    ProgId(id)
}

/// A critical-section marker executed by the guest.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CsOp {
    /// `pthread_mutex_lock` on the given lock id.
    Enter(u32),
    /// `pthread_mutex_unlock`.
    Exit(u32),
}

/// One guest instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Instr {
    /// `rd ← rs` (a MOV).
    MovRR {
        /// Destination register.
        d: u8,
        /// Source register.
        s: u8,
    },
    /// `rd ← imm` (an immediate assignment: non-MOV).
    MovRI {
        /// Destination register.
        d: u8,
        /// Immediate value.
        imm: i64,
    },
    /// `rd ← mem[rbase + off]` (a MOV).
    Load {
        /// Destination register.
        d: u8,
        /// Base address register.
        base: u8,
        /// Word offset.
        off: i64,
    },
    /// `mem[rbase + off] ← rs` (a MOV).
    Store {
        /// Source register.
        s: u8,
        /// Base address register.
        base: u8,
        /// Word offset.
        off: i64,
    },
    /// `rd ← mem[addr]` (a MOV, absolute addressing).
    LoadA {
        /// Destination register.
        d: u8,
        /// Absolute word address.
        addr: u64,
    },
    /// `mem[addr] ← rs` (a MOV, absolute addressing).
    StoreA {
        /// Source register.
        s: u8,
        /// Absolute word address.
        addr: u64,
    },
    /// `rd ← ra + rb` (non-MOV).
    Add {
        /// Destination register.
        d: u8,
        /// First operand.
        a: u8,
        /// Second operand.
        b: u8,
    },
    /// `rd ← ra + imm` (non-MOV).
    AddI {
        /// Destination register.
        d: u8,
        /// Operand register.
        a: u8,
        /// Immediate.
        imm: i64,
    },
    /// `rd ← ra - rb` (non-MOV).
    Sub {
        /// Destination register.
        d: u8,
        /// First operand.
        a: u8,
        /// Second operand.
        b: u8,
    },
    /// `rd ← ra - imm` (non-MOV).
    SubI {
        /// Destination register.
        d: u8,
        /// Operand register.
        a: u8,
        /// Immediate.
        imm: i64,
    },
    /// `rd ← ra * imm` (non-MOV).
    MulI {
        /// Destination register.
        d: u8,
        /// Operand register.
        a: u8,
        /// Immediate.
        imm: i64,
    },
    /// `mem[rbase + off] += 1` (read-modify-write: non-MOV).
    IncM {
        /// Base address register.
        base: u8,
        /// Word offset.
        off: i64,
    },
    /// `mem[rbase + off] -= 1` (read-modify-write: non-MOV).
    DecM {
        /// Base address register.
        base: u8,
        /// Word offset.
        off: i64,
    },
    /// `mem[addr] += 1` (absolute; non-MOV).
    IncA {
        /// Absolute word address.
        addr: u64,
    },
    /// `mem[addr] -= 1` (absolute; non-MOV).
    DecA {
        /// Absolute word address.
        addr: u64,
    },
    /// Compare `ra` with `rb`; sets the flag.
    Cmp {
        /// First operand.
        a: u8,
        /// Second operand.
        b: u8,
    },
    /// Compare `ra` with an immediate; sets the flag.
    CmpI {
        /// Operand register.
        a: u8,
        /// Immediate.
        imm: i64,
    },
    /// Unconditional jump to an instruction index.
    Jmp {
        /// Target instruction index.
        target: usize,
    },
    /// Jump if the flag is "equal".
    Jz {
        /// Target instruction index.
        target: usize,
    },
    /// Jump if the flag is "not equal".
    Jnz {
        /// Target instruction index.
        target: usize,
    },
    /// Jump if the flag is "less than".
    Jlt {
        /// Target instruction index.
        target: usize,
    },
    /// Jump if the flag is "greater or equal".
    Jge {
        /// Target instruction index.
        target: usize,
    },
    /// Acquire a lock (critical-section marker; costs an atomic op).
    Lock {
        /// Lock id.
        lock: u32,
    },
    /// Release a lock.
    Unlock {
        /// Lock id.
        lock: u32,
    },
    /// No operation.
    Nop,
    /// Stop the program.
    Halt,
}

impl Instr {
    /// Cycle cost under direct (native) execution.
    pub fn direct_cost(&self) -> u64 {
        match self {
            Instr::Lock { .. } => 65,
            Instr::Unlock { .. } => 40,
            Instr::Load { .. } | Instr::LoadA { .. } => 3,
            Instr::Store { .. } | Instr::StoreA { .. } => 3,
            Instr::IncM { .. } | Instr::DecM { .. } | Instr::IncA { .. } | Instr::DecA { .. } => 6,
            Instr::Halt => 0,
            _ => 1,
        }
    }

    /// Whether this instruction is a `MOV` memory operation in the §3
    /// sense (moves a value unchanged between locations).
    pub fn is_mov(&self) -> bool {
        matches!(
            self,
            Instr::MovRR { .. }
                | Instr::Load { .. }
                | Instr::Store { .. }
                | Instr::LoadA { .. }
                | Instr::StoreA { .. }
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::MovRR { d, s } => write!(f, "mov r{d}, r{s}"),
            Instr::MovRI { d, imm } => write!(f, "mov r{d}, #{imm}"),
            Instr::Load { d, base, off } => write!(f, "load r{d}, [r{base}+{off}]"),
            Instr::Store { s, base, off } => write!(f, "store r{s}, [r{base}+{off}]"),
            Instr::LoadA { d, addr } => write!(f, "load r{d}, [@{addr}]"),
            Instr::StoreA { s, addr } => write!(f, "store r{s}, [@{addr}]"),
            Instr::Add { d, a, b } => write!(f, "add r{d}, r{a}, r{b}"),
            Instr::AddI { d, a, imm } => write!(f, "addi r{d}, r{a}, #{imm}"),
            Instr::Sub { d, a, b } => write!(f, "sub r{d}, r{a}, r{b}"),
            Instr::SubI { d, a, imm } => write!(f, "subi r{d}, r{a}, #{imm}"),
            Instr::MulI { d, a, imm } => write!(f, "muli r{d}, r{a}, #{imm}"),
            Instr::IncM { base, off } => write!(f, "inc [r{base}+{off}]"),
            Instr::DecM { base, off } => write!(f, "dec [r{base}+{off}]"),
            Instr::IncA { addr } => write!(f, "inc [@{addr}]"),
            Instr::DecA { addr } => write!(f, "dec [@{addr}]"),
            Instr::Cmp { a, b } => write!(f, "cmp r{a}, r{b}"),
            Instr::CmpI { a, imm } => write!(f, "cmpi r{a}, #{imm}"),
            Instr::Jmp { target } => write!(f, "jmp {target}"),
            Instr::Jz { target } => write!(f, "jz {target}"),
            Instr::Jnz { target } => write!(f, "jnz {target}"),
            Instr::Jlt { target } => write!(f, "jlt {target}"),
            Instr::Jge { target } => write!(f, "jge {target}"),
            Instr::Lock { lock } => write!(f, "lock #{lock}"),
            Instr::Unlock { lock } => write!(f, "unlock #{lock}"),
            Instr::Nop => write!(f, "nop"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

/// A named guest program.
#[derive(Clone, Debug)]
pub struct Program {
    /// Name (for display and assembly round-trips).
    pub name: String,
    /// Interned identity of `name` (the translation-cache key).
    pub id: ProgId,
    /// The instructions; execution starts at index 0.
    pub instrs: Vec<Instr>,
}

impl Program {
    /// Creates a program.
    pub fn new(name: impl Into<String>, instrs: Vec<Instr>) -> Self {
        let name = name.into();
        let id = intern_prog_name(&name);
        Program { name, id, instrs }
    }

    /// Static instruction count (what translation pays for).
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Total direct-execution cost if every instruction ran once.
    pub fn straightline_direct_cost(&self) -> u64 {
        self.instrs.iter().map(Instr::direct_cost).sum()
    }

    /// Checks structural well-formedness: every jump target lies within
    /// the program. Returns the index of the first bad instruction.
    pub fn validate(&self) -> Result<(), usize> {
        for (i, ins) in self.instrs.iter().enumerate() {
            let target = match *ins {
                Instr::Jmp { target }
                | Instr::Jz { target }
                | Instr::Jnz { target }
                | Instr::Jlt { target }
                | Instr::Jge { target } => Some(target),
                _ => None,
            };
            if let Some(t) = target {
                if t > self.instrs.len() {
                    return Err(i);
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; {}", self.name)?;
        for (i, ins) in self.instrs.iter().enumerate() {
            writeln!(f, "{i:4}: {ins}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mov_classification_matches_section3() {
        assert!(Instr::MovRR { d: 0, s: 1 }.is_mov());
        assert!(Instr::Load {
            d: 0,
            base: 1,
            off: 0
        }
        .is_mov());
        assert!(Instr::StoreA { s: 0, addr: 4 }.is_mov());
        // Immediate assignment and arithmetic are non-MOV (§3.2).
        assert!(!Instr::MovRI { d: 0, imm: 0 }.is_mov());
        assert!(!Instr::Add { d: 0, a: 1, b: 2 }.is_mov());
        assert!(!Instr::IncA { addr: 0 }.is_mov());
    }

    #[test]
    fn lock_ops_dominate_direct_cost() {
        let lock = Instr::Lock { lock: 1 }.direct_cost();
        let unlock = Instr::Unlock { lock: 1 }.direct_cost();
        assert!(lock > 10 * Instr::Nop.direct_cost());
        assert!(unlock > 10 * Instr::Nop.direct_cost());
    }

    #[test]
    fn validate_catches_wild_jumps() {
        let good = Program::new("g", vec![Instr::Jmp { target: 1 }, Instr::Halt]);
        assert_eq!(good.validate(), Ok(()));
        let bad = Program::new("b", vec![Instr::Jz { target: 99 }, Instr::Halt]);
        assert_eq!(bad.validate(), Err(0));
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(
            Instr::Load {
                d: 1,
                base: 2,
                off: 3
            }
            .to_string(),
            "load r1, [r2+3]"
        );
        assert_eq!(Instr::Lock { lock: 9 }.to_string(), "lock #9");
    }
}
