//! A small two-pass assembler for guest programs.
//!
//! Syntax (one instruction per line, `;` starts a comment):
//!
//! ```text
//! push:                     ; a label
//!     lock #3
//!     load r3, [@0]         ; absolute word address
//!     muli r4, r3, #2
//!     addi r4, r4, #1
//!     store r1, [r4+0]      ; register + offset
//!     inc [@0]
//!     unlock #3
//!     jmp push
//!     halt
//! ```
//!
//! Registers are `r0`–`r15`, immediates are `#n`, absolute addresses
//! are `[@n]`, and indexed operands are `[rB+off]` (offset may be
//! negative). Jump targets are labels.

use crate::isa::{Instr, Program, NREGS};
use std::collections::HashMap;

/// An assembly error with line information.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub msg: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, msg: impl Into<String>) -> AsmError {
    AsmError {
        line,
        msg: msg.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<u8, AsmError> {
    let t = tok.trim().trim_end_matches(',');
    let n: u8 = t
        .strip_prefix('r')
        .and_then(|d| d.parse().ok())
        .ok_or_else(|| err(line, format!("expected register, got `{t}`")))?;
    if (n as usize) < NREGS {
        Ok(n)
    } else {
        Err(err(line, format!("register r{n} out of range")))
    }
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, AsmError> {
    let t = tok.trim().trim_end_matches(',');
    t.strip_prefix('#')
        .and_then(|d| d.parse().ok())
        .ok_or_else(|| err(line, format!("expected immediate `#n`, got `{t}`")))
}

/// Parsed memory operand: absolute or base+offset.
enum MemOp {
    Abs(u64),
    Idx(u8, i64),
}

fn parse_memop(tok: &str, line: usize) -> Result<MemOp, AsmError> {
    let t = tok.trim().trim_end_matches(',');
    let inner = t
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected memory operand `[...]`, got `{t}`")))?;
    if let Some(a) = inner.strip_prefix('@') {
        let addr = a
            .parse()
            .map_err(|_| err(line, format!("bad absolute address `{a}`")))?;
        return Ok(MemOp::Abs(addr));
    }
    // `rB+off` or `rB-off` or bare `rB`.
    let (reg_part, off) = if let Some(i) = inner.find(['+', '-']) {
        let (r, o) = inner.split_at(i);
        let off: i64 = o
            .parse()
            .map_err(|_| err(line, format!("bad offset `{o}`")))?;
        (r, off)
    } else {
        (inner, 0)
    };
    Ok(MemOp::Idx(parse_reg(reg_part, line)?, off))
}

/// Assembles `source` into a [`Program`] named `name`.
///
/// # Examples
///
/// ```
/// use whodunit_vm::{assemble, Cpu, GuestMem};
/// use whodunit_core::ids::ThreadId;
///
/// let prog = assemble("double", "
///     mov r1, #21
///     add r2, r1, r1
///     halt
/// ").unwrap();
/// let mut cpu = Cpu::new(ThreadId(1));
/// let mut mem = GuestMem::new(4);
/// cpu.run(&prog, &mut mem, 100);
/// assert_eq!(cpu.regs[2], 42);
/// ```
pub fn assemble(name: &str, source: &str) -> Result<Program, AsmError> {
    // Pass 1: collect labels against instruction indices.
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut count = 0usize;
    for (ln, raw) in source.lines().enumerate() {
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            let l = label.trim();
            if labels.insert(l.to_owned(), count).is_some() {
                return Err(err(ln + 1, format!("duplicate label `{l}`")));
            }
        } else {
            count += 1;
        }
    }
    // Pass 2: parse instructions.
    let mut instrs = Vec::with_capacity(count);
    for (ln0, raw) in source.lines().enumerate() {
        let ln = ln0 + 1;
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() || line.ends_with(':') {
            continue;
        }
        let (op, rest) = match line.split_once(char::is_whitespace) {
            Some((o, r)) => (o, r.trim()),
            None => (line, ""),
        };
        let args: Vec<&str> = rest
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        let need = |n: usize| -> Result<(), AsmError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(err(
                    ln,
                    format!("`{op}` needs {n} operands, got {}", args.len()),
                ))
            }
        };
        let target = |t: &str| -> Result<usize, AsmError> {
            labels
                .get(t)
                .copied()
                .ok_or_else(|| err(ln, format!("unknown label `{t}`")))
        };
        let ins = match op {
            "mov" => {
                need(2)?;
                let d = parse_reg(args[0], ln)?;
                if args[1].starts_with('#') {
                    Instr::MovRI {
                        d,
                        imm: parse_imm(args[1], ln)?,
                    }
                } else {
                    Instr::MovRR {
                        d,
                        s: parse_reg(args[1], ln)?,
                    }
                }
            }
            "load" => {
                need(2)?;
                let d = parse_reg(args[0], ln)?;
                match parse_memop(args[1], ln)? {
                    MemOp::Abs(addr) => Instr::LoadA { d, addr },
                    MemOp::Idx(base, off) => Instr::Load { d, base, off },
                }
            }
            "store" => {
                need(2)?;
                let s = parse_reg(args[0], ln)?;
                match parse_memop(args[1], ln)? {
                    MemOp::Abs(addr) => Instr::StoreA { s, addr },
                    MemOp::Idx(base, off) => Instr::Store { s, base, off },
                }
            }
            "add" => {
                need(3)?;
                Instr::Add {
                    d: parse_reg(args[0], ln)?,
                    a: parse_reg(args[1], ln)?,
                    b: parse_reg(args[2], ln)?,
                }
            }
            "addi" => {
                need(3)?;
                Instr::AddI {
                    d: parse_reg(args[0], ln)?,
                    a: parse_reg(args[1], ln)?,
                    imm: parse_imm(args[2], ln)?,
                }
            }
            "sub" => {
                need(3)?;
                Instr::Sub {
                    d: parse_reg(args[0], ln)?,
                    a: parse_reg(args[1], ln)?,
                    b: parse_reg(args[2], ln)?,
                }
            }
            "subi" => {
                need(3)?;
                Instr::SubI {
                    d: parse_reg(args[0], ln)?,
                    a: parse_reg(args[1], ln)?,
                    imm: parse_imm(args[2], ln)?,
                }
            }
            "muli" => {
                need(3)?;
                Instr::MulI {
                    d: parse_reg(args[0], ln)?,
                    a: parse_reg(args[1], ln)?,
                    imm: parse_imm(args[2], ln)?,
                }
            }
            "inc" => {
                need(1)?;
                match parse_memop(args[0], ln)? {
                    MemOp::Abs(addr) => Instr::IncA { addr },
                    MemOp::Idx(base, off) => Instr::IncM { base, off },
                }
            }
            "dec" => {
                need(1)?;
                match parse_memop(args[0], ln)? {
                    MemOp::Abs(addr) => Instr::DecA { addr },
                    MemOp::Idx(base, off) => Instr::DecM { base, off },
                }
            }
            "cmp" => {
                need(2)?;
                Instr::Cmp {
                    a: parse_reg(args[0], ln)?,
                    b: parse_reg(args[1], ln)?,
                }
            }
            "cmpi" => {
                need(2)?;
                Instr::CmpI {
                    a: parse_reg(args[0], ln)?,
                    imm: parse_imm(args[1], ln)?,
                }
            }
            "jmp" => {
                need(1)?;
                Instr::Jmp {
                    target: target(args[0])?,
                }
            }
            "jz" => {
                need(1)?;
                Instr::Jz {
                    target: target(args[0])?,
                }
            }
            "jnz" => {
                need(1)?;
                Instr::Jnz {
                    target: target(args[0])?,
                }
            }
            "jlt" => {
                need(1)?;
                Instr::Jlt {
                    target: target(args[0])?,
                }
            }
            "jge" => {
                need(1)?;
                Instr::Jge {
                    target: target(args[0])?,
                }
            }
            "lock" => {
                need(1)?;
                Instr::Lock {
                    lock: parse_imm(args[0], ln)? as u32,
                }
            }
            "unlock" => {
                need(1)?;
                Instr::Unlock {
                    lock: parse_imm(args[0], ln)? as u32,
                }
            }
            "nop" => {
                need(0)?;
                Instr::Nop
            }
            "halt" => {
                need(0)?;
                Instr::Halt
            }
            other => return Err(err(ln, format!("unknown mnemonic `{other}`"))),
        };
        instrs.push(ins);
    }
    let prog = Program::new(name, instrs);
    debug_assert_eq!(prog.validate(), Ok(()), "labels always resolve in range");
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Cpu;
    use crate::mem::GuestMem;
    use whodunit_core::ids::ThreadId;

    #[test]
    fn assembles_and_runs_a_loop() {
        let p = assemble(
            "sum",
            r"
            ; sum 1..=5
                mov r1, #0
                mov r2, #1
            loop:
                cmpi r2, #6
                jge done
                add r1, r1, r2
                addi r2, r2, #1
                jmp loop
            done:
                halt
            ",
        )
        .unwrap();
        let mut cpu = Cpu::new(ThreadId(1));
        let mut mem = GuestMem::new(1);
        cpu.run(&p, &mut mem, 1000);
        assert_eq!(cpu.regs[1], 15);
    }

    #[test]
    fn memory_operand_forms_parse() {
        let p = assemble(
            "m",
            r"
                mov r1, #10
                mov r2, #3
                store r2, [@5]
                load r3, [@5]
                store r3, [r1+2]
                load r4, [r1+2]
                inc [@5]
                dec [r1+2]
                halt
            ",
        )
        .unwrap();
        let mut cpu = Cpu::new(ThreadId(1));
        let mut mem = GuestMem::new(16);
        cpu.run(&p, &mut mem, 100);
        assert_eq!(mem.read(5), 4);
        assert_eq!(mem.read(12), 2);
        assert_eq!(cpu.regs[4], 3);
    }

    #[test]
    fn negative_offsets_parse() {
        let p = assemble(
            "n",
            r"
                mov r1, #8
                store r1, [r1-4]
                halt
            ",
        )
        .unwrap();
        let mut cpu = Cpu::new(ThreadId(1));
        let mut mem = GuestMem::new(16);
        cpu.run(&p, &mut mem, 10);
        assert_eq!(mem.read(4), 8);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("bad", "mov r1, #0\nbogus r1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("bogus"));
        let e = assemble("bad", "jmp nowhere\n").unwrap_err();
        assert!(e.msg.contains("nowhere"));
        let e = assemble("bad", "mov r99, #0\n").unwrap_err();
        assert!(e.msg.contains("register"));
        let e = assemble("bad", "x:\nx:\n").unwrap_err();
        assert!(e.msg.contains("duplicate"));
    }

    #[test]
    fn lock_markers_assemble() {
        let p = assemble("cs", "lock #7\nunlock #7\nhalt\n").unwrap();
        assert_eq!(p.instrs[0], Instr::Lock { lock: 7 });
        assert_eq!(p.instrs[1], Instr::Unlock { lock: 7 });
    }

    #[test]
    fn display_roundtrips_through_reassembly() {
        // Program::Display renders jump targets as raw indices, which
        // the assembler does not accept, so roundtrip a jump-free body.
        let src = r"
            mov r1, #2
            load r2, [@3]
            store r2, [r1+1]
            addi r2, r2, #1
            halt
        ";
        let p1 = assemble("rt", src).unwrap();
        let rendered: String = p1.instrs.iter().map(|i| i.to_string() + "\n").collect();
        let p2 = assemble("rt", &rendered).unwrap();
        assert_eq!(p1.instrs, p2.instrs);
    }
}
