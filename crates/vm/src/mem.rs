//! Word-addressed guest memory.
//!
//! The §3 algorithm's dictionary operates on locations; tracking taint
//! at word granularity keeps the name space aligned with what the guest
//! programs actually move (pointers and word-sized fields, as in the
//! Figure 1 `fd_queue` code). Addresses are word indices.

/// Guest memory: a flat array of words.
#[derive(Clone, Debug)]
pub struct GuestMem {
    words: Vec<i64>,
}

impl GuestMem {
    /// Allocates `words` zeroed words.
    pub fn new(words: usize) -> Self {
        GuestMem {
            words: vec![0; words],
        }
    }

    /// Reads the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access — a guest program bug.
    pub fn read(&self, addr: u64) -> i64 {
        self.words[usize::try_from(addr).expect("guest address overflow")]
    }

    /// Writes the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access — a guest program bug.
    pub fn write(&mut self, addr: u64, value: i64) {
        let i = usize::try_from(addr).expect("guest address overflow");
        self.words[i] = value;
    }

    /// Memory size in words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the memory has zero words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut m = GuestMem::new(16);
        m.write(3, -77);
        assert_eq!(m.read(3), -77);
        assert_eq!(m.read(0), 0);
        assert_eq!(m.len(), 16);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let m = GuestMem::new(4);
        let _ = m.read(4);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_write_panics() {
        let mut m = GuestMem::new(4);
        m.write(9, 1);
    }
}
