//! Instruction-emulation substrate for Whodunit's shared-memory
//! transaction-flow detection (§3, §7.2, Table 3).
//!
//! The paper extracts QEMU's CPU-emulator core and uses it to emulate
//! the machine instructions of critical sections, classifying each as a
//! `MOV` or a non-`MOV` modification and feeding the §3 algorithm. This
//! crate is the equivalent substrate built from scratch:
//!
//! - [`isa`]: a small register ISA with the one distinction the
//!   algorithm cares about — `MOV`-like data movement versus everything
//!   else — plus `lock`/`unlock` markers delimiting critical sections.
//! - [`mem`]: word-addressed guest memory.
//! - [`cpu`]: the interpreter; every step reports its memory effects.
//! - [`asm`]: a tiny assembler so guest programs are written readably.
//! - [`tcache`]: the translation-cache cost model reproducing Table 3's
//!   direct / translate+emulate / cached-emulation cost regimes.
//! - [`emu`]: the critical-section emulation driver — traps at lock
//!   acquire, streams [`whodunit_core::shm::MemEvent`]s while inside
//!   the critical section, and keeps watching reads for `MAX = 128`
//!   instructions after exit (the §7.2 consume window).
//! - [`programs`]: the guest-code library — the Apache 2.x fd-queue
//!   push/pop of Figure 1, `sys/queue.h`-style lists, a priority queue,
//!   the Figure 2 shared counter, the Figure 3 memory allocator, and a
//!   nested-lock variant.

#![warn(missing_docs)]

pub mod asm;
pub mod cpu;
pub mod emu;
pub mod isa;
pub mod mem;
pub mod programs;
pub mod tcache;

pub use asm::assemble;
pub use cpu::{Cpu, Effect, Write};
pub use emu::{CsEmulator, EmuConfig, ExecMode, RunStats};
pub use isa::{CsOp, Instr, Program};
pub use mem::GuestMem;
pub use tcache::TranslationCache;
