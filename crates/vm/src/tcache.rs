//! The translation-cache cost model (Table 3, §9.2).
//!
//! The paper's emulator (QEMU's CPU core) translates guest code to
//! intermediate code once and caches the translation; subsequent
//! emulations of the same critical section pay only the (much cheaper)
//! dispatch cost of executing cached translations. Table 3 measures the
//! three regimes on Apache's fd-queue critical sections:
//!
//! | critical section | direct | translate+emulate | cached emulation |
//! |------------------|-------:|------------------:|-----------------:|
//! | `ap_queue_push`  | 131.64 | 62 508            | 11 606.8         |
//! | `ap_queue_pop`   | 109.72 | 40 852            | 12 118           |
//!
//! The model: translation costs `translate_per_instr` cycles per static
//! instruction, paid once per program; every emulated instruction costs
//! `dispatch_per_instr` cycles. Constants are calibrated to land in
//! Table 3's ranges for ≈20-instruction critical sections.

use crate::isa::ProgId;

/// Translation cache with per-instruction cost constants.
///
/// Keyed by interned [`ProgId`]s: membership is one dense bit-vector
/// index, with no string hashing or cloning on the emulation path.
#[derive(Clone, Debug)]
pub struct TranslationCache {
    translated: Vec<bool>,
    /// One-time translation cost per static instruction.
    pub translate_per_instr: u64,
    /// Dispatch cost per executed instruction when running from cache.
    pub dispatch_per_instr: u64,
    /// Total translation cycles spent so far.
    pub translate_cycles: u64,
    /// Total dispatch cycles spent so far.
    pub dispatch_cycles: u64,
}

impl Default for TranslationCache {
    fn default() -> Self {
        Self::new()
    }
}

impl TranslationCache {
    /// Creates a cache with the calibrated default constants.
    pub fn new() -> Self {
        TranslationCache {
            translated: Vec::new(),
            translate_per_instr: 2900,
            dispatch_per_instr: 800,
            translate_cycles: 0,
            dispatch_cycles: 0,
        }
    }

    /// Whether `program` is already translated.
    pub fn is_translated(&self, program: ProgId) -> bool {
        self.translated
            .get(program.0 as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Charges for entering `program` (translating it if this is its
    /// first execution). Returns the translation cycles charged (zero
    /// on a cache hit).
    pub fn enter(&mut self, program: ProgId, static_instrs: usize) -> u64 {
        let i = program.0 as usize;
        if self.translated.get(i).copied().unwrap_or(false) {
            return 0;
        }
        if self.translated.len() <= i {
            self.translated.resize(i + 1, false);
        }
        self.translated[i] = true;
        let c = static_instrs as u64 * self.translate_per_instr;
        self.translate_cycles += c;
        c
    }

    /// Charges dispatch for `executed` emulated instructions; returns
    /// the cycles charged.
    pub fn dispatch(&mut self, executed: u64) -> u64 {
        let c = executed * self.dispatch_per_instr;
        self.dispatch_cycles += c;
        c
    }

    /// Drops all cached translations (used by the Table 3 microbench to
    /// re-measure the translate+emulate regime).
    pub fn flush(&mut self) {
        self.translated.fill(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PUSH: ProgId = ProgId(1);
    const POP: ProgId = ProgId(2);

    #[test]
    fn first_entry_translates_then_caches() {
        let mut tc = TranslationCache::new();
        let c1 = tc.enter(PUSH, 20);
        assert_eq!(c1, 20 * tc.translate_per_instr);
        assert!(tc.is_translated(PUSH));
        assert!(!tc.is_translated(POP));
        let c2 = tc.enter(PUSH, 20);
        assert_eq!(c2, 0);
        assert_eq!(tc.translate_cycles, c1);
    }

    #[test]
    fn program_ids_are_stable_per_name() {
        let a = crate::isa::Program::new("tcache_id_test_a", Vec::new());
        let b = crate::isa::Program::new("tcache_id_test_b", Vec::new());
        let a2 = crate::isa::Program::new("tcache_id_test_a", Vec::new());
        assert_eq!(a.id, a2.id);
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn dispatch_accumulates() {
        let mut tc = TranslationCache::new();
        tc.dispatch(10);
        tc.dispatch(5);
        assert_eq!(tc.dispatch_cycles, 15 * tc.dispatch_per_instr);
    }

    #[test]
    fn flush_forces_retranslation() {
        let mut tc = TranslationCache::new();
        tc.enter(PUSH, 4);
        tc.flush();
        assert!(!tc.is_translated(PUSH));
        assert!(tc.enter(PUSH, 4) > 0);
    }

    #[test]
    fn regimes_are_ordered_like_table3() {
        // For a ~20-instruction critical section: direct ≪ cached
        // emulation ≪ translate+emulate.
        let mut tc = TranslationCache::new();
        let direct = 132u64;
        let translate = tc.enter(POP, 20);
        let emu = tc.dispatch(20);
        assert!(direct < emu);
        assert!(emu < translate + emu);
        // Within Table 3's order of magnitude.
        assert!((10_000..22_000).contains(&emu), "emu={emu}");
        assert!((40_000..90_000).contains(&(translate + emu)));
    }
}
