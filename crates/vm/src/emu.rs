//! The critical-section emulation driver (§7.2).
//!
//! Whodunit wraps `pthread_mutex_lock`; when a thread enters a critical
//! section whose lock still needs flow detection, the wrapper switches
//! from direct execution to emulation. Emulation continues through the
//! outermost unlock and for `MAX = 128` further instructions — the
//! *consume window* — because a consumer uses the value it dequeued
//! shortly after the critical section returns. Critical sections of
//! locks known not to carry transaction flow run natively (the paper's
//! performance optimization).
//!
//! [`CsEmulator::run`] executes one guest program in either mode,
//! streaming [`MemEvent`]s to a sink in emulated mode and accounting
//! cycles per the [`TranslationCache`] cost model.

use crate::cpu::{Cpu, Write};
use crate::isa::{CsOp, Program};
use crate::mem::GuestMem;
use crate::tcache::TranslationCache;
use whodunit_core::shm::MemEvent;

/// Driver configuration.
#[derive(Clone, Copy, Debug)]
pub struct EmuConfig {
    /// Consume-window length in instructions after the outermost
    /// unlock (`MAX` in §7.2; the paper uses 128).
    pub max_window: u64,
    /// Hard step bound (guards against guest bugs).
    pub max_steps: u64,
}

impl Default for EmuConfig {
    fn default() -> Self {
        EmuConfig {
            max_window: 128,
            max_steps: 100_000,
        }
    }
}

/// How to execute a guest program.
pub enum ExecMode<'a> {
    /// Native execution: direct costs, no events (the bail-out path).
    Direct,
    /// Emulation via the translation cache, reporting memory events.
    Emulated {
        /// The process's translation cache.
        tcache: &'a mut TranslationCache,
    },
}

/// Accounting for one guest run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total instructions executed.
    pub instrs: u64,
    /// Instructions executed under emulation.
    pub emulated_instrs: u64,
    /// Cycles to charge the executing thread for this run.
    pub cycles: u64,
    /// What the same run would have cost under direct execution.
    pub direct_cycles: u64,
    /// Translation cycles included in `cycles` (first run only).
    pub translate_cycles: u64,
    /// Whether the program ran to `halt`.
    pub halted: bool,
}

/// The emulation driver.
#[derive(Clone, Copy, Debug, Default)]
pub struct CsEmulator {
    cfg: EmuConfig,
}

impl CsEmulator {
    /// Creates a driver with the given configuration.
    pub fn new(cfg: EmuConfig) -> Self {
        CsEmulator { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> EmuConfig {
        self.cfg
    }

    /// Runs `prog` to halt on `cpu`/`mem`.
    ///
    /// In [`ExecMode::Emulated`], emulation begins at the first `lock`
    /// instruction (instructions before it run natively), continues
    /// through the outermost `unlock`, and keeps emulating reads as
    /// [`MemEvent::Use`] for the consume window; after the window the
    /// rest runs natively. Events are passed to `sink` in order.
    pub fn run(
        &self,
        prog: &Program,
        cpu: &mut Cpu,
        mem: &mut GuestMem,
        mode: ExecMode<'_>,
        sink: &mut dyn FnMut(&MemEvent),
    ) -> RunStats {
        match mode {
            ExecMode::Direct => self.run_direct(prog, cpu, mem),
            ExecMode::Emulated { tcache } => self.run_emulated(prog, cpu, mem, tcache, sink),
        }
    }

    fn run_direct(&self, prog: &Program, cpu: &mut Cpu, mem: &mut GuestMem) -> RunStats {
        let mut st = RunStats::default();
        while st.instrs < self.cfg.max_steps {
            let Some(ef) = cpu.step(prog, mem) else {
                st.halted = true;
                break;
            };
            st.instrs += 1;
            st.cycles += ef.cost;
            st.direct_cycles += ef.cost;
        }
        st.halted |= cpu.halted;
        st
    }

    fn run_emulated(
        &self,
        prog: &Program,
        cpu: &mut Cpu,
        mem: &mut GuestMem,
        tcache: &mut TranslationCache,
        sink: &mut dyn FnMut(&MemEvent),
    ) -> RunStats {
        let mut st = RunStats::default();
        let mut cs_depth: u32 = 0;
        let mut window_left: u64 = 0;
        let mut emulating = false;
        while st.instrs < self.cfg.max_steps {
            let Some(ef) = cpu.step(prog, mem) else {
                st.halted = true;
                break;
            };
            st.instrs += 1;
            st.direct_cycles += ef.cost;
            // Trap at lock acquire: emulation starts with the first
            // critical section (§7.2).
            if !emulating {
                if matches!(ef.cs, Some(CsOp::Enter(_))) {
                    emulating = true;
                    st.translate_cycles = tcache.enter(prog.id, prog.len());
                    st.cycles += st.translate_cycles;
                } else {
                    st.cycles += ef.cost;
                    continue;
                }
            }
            if !emulating {
                continue;
            }
            st.emulated_instrs += 1;
            st.cycles += tcache.dispatch(1);
            match ef.cs {
                Some(CsOp::Enter(lock)) => {
                    cs_depth += 1;
                    sink(&MemEvent::CsEnter {
                        lock: whodunit_core::ids::LockId(lock),
                    });
                }
                Some(CsOp::Exit(_)) => {
                    sink(&MemEvent::CsExit);
                    cs_depth = cs_depth.saturating_sub(1);
                    if cs_depth == 0 {
                        window_left = self.cfg.max_window;
                    }
                }
                None => {
                    if cs_depth > 0 {
                        match ef.write {
                            Some(Write::Mov { src, dst }) => sink(&MemEvent::Mov { src, dst }),
                            Some(Write::Modify { dst }) => sink(&MemEvent::Modify { dst }),
                            None => {}
                        }
                    } else if window_left > 0 {
                        // Consume window: report reads as uses.
                        for &loc in &ef.reads {
                            sink(&MemEvent::Use { loc });
                        }
                        window_left -= 1;
                        if window_left == 0 {
                            emulating = false;
                        }
                    } else {
                        emulating = false;
                    }
                }
            }
        }
        st.halted |= cpu.halted;
        st
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use whodunit_core::ids::{LockId, ThreadId};
    use whodunit_core::shm::Loc;

    fn producer_prog() -> Program {
        assemble(
            "prod",
            r"
                mov r1, #42       ; value computed before the CS
                lock #5
                store r1, [@10]   ; produce into shared slot
                inc [@0]          ; nelts++
                unlock #5
                halt
            ",
        )
        .unwrap()
    }

    fn consumer_prog() -> Program {
        assemble(
            "cons",
            r"
                lock #5
                load r1, [@10]    ; take from shared slot
                dec [@0]
                unlock #5
                mov r2, r1        ; use after exit (consume window)
                halt
            ",
        )
        .unwrap()
    }

    fn collect(
        prog: &Program,
        t: ThreadId,
        mem: &mut GuestMem,
        tc: &mut TranslationCache,
    ) -> (Vec<MemEvent>, RunStats) {
        let mut cpu = Cpu::new(t);
        let mut evs = Vec::new();
        let emu = CsEmulator::default();
        let st = emu.run(
            prog,
            &mut cpu,
            mem,
            ExecMode::Emulated { tcache: tc },
            &mut |e| evs.push(*e),
        );
        (evs, st)
    }

    #[test]
    fn emulated_run_reports_cs_and_movs() {
        let mut mem = GuestMem::new(16);
        let mut tc = TranslationCache::new();
        let (evs, st) = collect(&producer_prog(), ThreadId(1), &mut mem, &mut tc);
        assert!(st.halted);
        assert!(evs.contains(&MemEvent::CsEnter { lock: LockId(5) }));
        assert!(evs.contains(&MemEvent::Mov {
            src: Loc::Reg(ThreadId(1), 1),
            dst: Loc::Mem(10)
        }));
        assert!(evs.contains(&MemEvent::Modify { dst: Loc::Mem(0) }));
        assert!(evs.contains(&MemEvent::CsExit));
        assert_eq!(mem.read(10), 42);
    }

    #[test]
    fn window_reports_uses_after_exit() {
        let mut mem = GuestMem::new(16);
        mem.write(10, 7);
        let mut tc = TranslationCache::new();
        let (evs, _) = collect(&consumer_prog(), ThreadId(2), &mut mem, &mut tc);
        // The `mov r2, r1` after unlock must appear as a Use of r1.
        assert!(
            evs.contains(&MemEvent::Use {
                loc: Loc::Reg(ThreadId(2), 1)
            }),
            "{evs:?}"
        );
    }

    #[test]
    fn pre_lock_instructions_run_native() {
        let mut mem = GuestMem::new(16);
        let mut tc = TranslationCache::new();
        let (evs, st) = collect(&producer_prog(), ThreadId(1), &mut mem, &mut tc);
        // The first instruction (mov r1,#42 before the lock) is not
        // emulated: no Modify event for r1 may be reported.
        assert!(!evs.contains(&MemEvent::Modify {
            dst: Loc::Reg(ThreadId(1), 1)
        }));
        assert!(st.emulated_instrs < st.instrs);
    }

    #[test]
    fn first_run_pays_translation_second_does_not() {
        let mut tc = TranslationCache::new();
        let mut mem = GuestMem::new(16);
        let (_, st1) = collect(&producer_prog(), ThreadId(1), &mut mem, &mut tc);
        assert!(st1.translate_cycles > 0);
        let (_, st2) = collect(&producer_prog(), ThreadId(1), &mut mem, &mut tc);
        assert_eq!(st2.translate_cycles, 0);
        assert!(st2.cycles < st1.cycles);
        assert!(
            st2.cycles > st2.direct_cycles,
            "emulation costs more than direct"
        );
    }

    #[test]
    fn direct_mode_is_silent_and_cheap() {
        let mut mem = GuestMem::new(16);
        let mut cpu = Cpu::new(ThreadId(1));
        let mut n = 0;
        let emu = CsEmulator::default();
        let st = emu.run(
            &producer_prog(),
            &mut cpu,
            &mut mem,
            ExecMode::Direct,
            &mut |_| n += 1,
        );
        assert_eq!(n, 0);
        assert_eq!(st.cycles, st.direct_cycles);
        assert_eq!(
            mem.read(10),
            42,
            "direct mode still performs the memory effects"
        );
    }

    #[test]
    fn window_closes_after_max_instructions() {
        // A long tail after unlock: only the first `max_window` tail
        // instructions may produce Use events.
        let mut body = String::from("lock #1\nstore r1, [@3]\nunlock #1\n");
        for _ in 0..200 {
            body.push_str("mov r2, r1\n");
        }
        body.push_str("halt\n");
        let prog = assemble("tail", &body).unwrap();
        let mut mem = GuestMem::new(8);
        let mut tc = TranslationCache::new();
        let mut uses = 0;
        let mut cpu = Cpu::new(ThreadId(1));
        let emu = CsEmulator::new(EmuConfig {
            max_window: 16,
            max_steps: 100_000,
        });
        let st = emu.run(
            &prog,
            &mut cpu,
            &mut mem,
            ExecMode::Emulated { tcache: &mut tc },
            &mut |e| {
                if matches!(e, MemEvent::Use { .. }) {
                    uses += 1;
                }
            },
        );
        assert_eq!(uses, 16, "one Use (of r1) per windowed instruction");
        assert!(st.halted);
        assert!(st.emulated_instrs < st.instrs);
    }

    #[test]
    fn nested_locks_stay_emulated_until_outermost_exit() {
        let prog = assemble(
            "nested",
            r"
                lock #1
                lock #2
                store r1, [@4]
                unlock #2
                store r1, [@5]
                unlock #1
                halt
            ",
        )
        .unwrap();
        let mut mem = GuestMem::new(8);
        let mut tc = TranslationCache::new();
        let (evs, _) = collect(&prog, ThreadId(1), &mut mem, &mut tc);
        // Both stores must be reported as in-CS movs.
        let movs = evs
            .iter()
            .filter(|e| matches!(e, MemEvent::Mov { .. }))
            .count();
        assert_eq!(movs, 2);
        let enters = evs
            .iter()
            .filter(|e| matches!(e, MemEvent::CsEnter { .. }))
            .count();
        assert_eq!(enters, 2);
    }
}
