//! Guest-code library: the shared-memory access patterns of §3.
//!
//! Each constructor returns assembled guest programs parameterized by a
//! lock id, operating on a caller-owned [`crate::mem::GuestMem`]. The
//! layouts and code shapes follow the paper's examples:
//!
//! - [`FdQueue`] — Apache 2.x's listener/worker fd queue (Figure 1):
//!   `ap_queue_push` / `ap_queue_pop`.
//! - [`SharedCounter`] — the Figure 2 shared event counter (no flow).
//! - [`Allocator`] — the Figure 3 memory allocator (flow disabled by
//!   the producer∩consumer rule).
//! - [`SList`] — a `sys/queue.h`-style singly-linked list with the
//!   §3.3.2 `NULL` sanity-check behaviour.
//! - [`STailQueue`] / [`TailQueue`] — `sys/queue.h`-style singly- and
//!   doubly-linked tail queues (FIFO; the paper verifies its algorithm
//!   "on the different data structures implemented by sys/queue.h").
//! - [`PrioQueue`] — a sorted array queue whose inserts shift elements,
//!   exercising the "moves within the shared structure" rule.
//! - [`FdQueueNested`] — the fd queue with an inner nested lock.
//!
//! All programs expect arguments in registers (`r1`, `r2`) and leave
//! results in registers; consumers *use* their results right after the
//! critical section, inside the §7.2 consume window.

use crate::asm::assemble;
use crate::isa::Program;

/// The Figure 1 fd queue: `[0]=nelts`, elements of 2 words (`sd`, `p`)
/// from word 8.
#[derive(Clone, Debug)]
pub struct FdQueue {
    /// Lock protecting the queue.
    pub lock: u32,
    /// `ap_queue_push`: args `r1=sd`, `r2=p`.
    pub push: Program,
    /// `ap_queue_pop`: results `r1=sd`, `r2=p` (used post-exit into
    /// `r5`, `r6`).
    pub pop: Program,
}

/// Word offset of `nelts` in the fd-queue layout.
pub const FDQ_NELTS: u64 = 0;
/// Word offset of the queue capacity (bounds, set by [`FdQueue::init`]).
pub const FDQ_CAP: u64 = 1;
/// Word offset of the recycled-pools flag.
pub const FDQ_FLAG: u64 = 2;
/// Word offset of the first element.
pub const FDQ_DATA: u64 = 8;

impl FdQueue {
    /// Builds the push/pop programs for `lock`.
    pub fn new(lock: u32) -> Self {
        let push = assemble(
            "ap_queue_push",
            &format!(
                r"
                lock #{lock}
                load r3, [@{FDQ_NELTS}]   ; nelts
                load r7, [@{FDQ_CAP}]     ; queue->bounds
                cmp r3, r7
                jge full                  ; assertion: queue not full
                muli r4, r3, #2
                addi r4, r4, #{FDQ_DATA}  ; elem = &data[nelts]
                store r1, [r4+0]          ; elem->sd = sd
                store r2, [r4+1]          ; elem->p = p
                inc [@{FDQ_NELTS}]        ; nelts++
                mov r8, #1
                store r8, [@{FDQ_FLAG}]   ; queue->recycled_pools flag
            full:
                unlock #{lock}
                halt
                "
            ),
        )
        .expect("fd-queue push assembles");
        let pop = assemble(
            "ap_queue_pop",
            &format!(
                r"
                lock #{lock}
                load r3, [@{FDQ_NELTS}]
                load r7, [@{FDQ_CAP}]     ; queue->bounds (sanity read)
                cmp r3, r7
                load r3, [@{FDQ_NELTS}]
                subi r3, r3, #1
                store r3, [@{FDQ_NELTS}]  ; --nelts
                muli r4, r3, #2
                addi r4, r4, #{FDQ_DATA}  ; elem = &data[nelts]
                load r1, [r4+0]           ; *sd = elem->sd
                load r2, [r4+1]           ; *p = elem->p
                unlock #{lock}
                mov r5, r1                ; caller uses sd
                mov r6, r2                ; caller uses p
                halt
                "
            ),
        )
        .expect("fd-queue pop assembles");
        FdQueue { lock, push, pop }
    }

    /// Words of guest memory the queue needs for `cap` elements.
    pub fn mem_words(cap: usize) -> usize {
        FDQ_DATA as usize + 2 * cap
    }

    /// Initializes the queue bounds in guest memory (program load time,
    /// outside any critical section).
    pub fn init(mem: &mut crate::mem::GuestMem, cap: i64) {
        mem.write(FDQ_CAP, cap);
    }
}

/// The Figure 2 shared counter: `count` at the given address.
#[derive(Clone, Debug)]
pub struct SharedCounter {
    /// Lock protecting the counter.
    pub lock: u32,
    /// `count++` inside the critical section.
    pub inc: Program,
    /// Reads the counter and uses the value after the critical section
    /// (still must not flow: the taint is invalid).
    pub read: Program,
}

impl SharedCounter {
    /// Builds the programs for a counter at word `addr` under `lock`.
    pub fn new(lock: u32, addr: u64) -> Self {
        let inc = assemble(
            "counter_inc",
            &format!("lock #{lock}\ninc [@{addr}]\nunlock #{lock}\nhalt\n"),
        )
        .expect("counter inc assembles");
        let read = assemble(
            "counter_read",
            &format!(
                r"
                lock #{lock}
                load r1, [@{addr}]
                unlock #{lock}
                mov r2, r1        ; use after exit
                halt
                "
            ),
        )
        .expect("counter read assembles");
        SharedCounter { lock, inc, read }
    }
}

/// The Figure 3 allocator: a stack of free block addresses.
/// `[base]=count`, block addresses from word `base+8`.
#[derive(Clone, Debug)]
pub struct Allocator {
    /// Lock protecting the free list.
    pub lock: u32,
    /// Base word address of the free-list region.
    pub base: u64,
    /// `mem_free`: arg `r1 = block address`.
    pub free: Program,
    /// `mem_alloc`: result `r1 = block address`, dereferenced after
    /// the critical section.
    pub alloc: Program,
}

impl Allocator {
    /// Builds the allocator programs for `lock`, with the free list
    /// living at word `base` (so it can share a guest memory with
    /// other structures without aliasing).
    pub fn new(lock: u32) -> Self {
        Self::at(lock, 0)
    }

    /// Builds the allocator at an explicit base address.
    pub fn at(lock: u32, base: u64) -> Self {
        let data = base + 8;
        let free = assemble(
            "mem_free",
            &format!(
                r"
                lock #{lock}
                load r3, [@{base}]
                addi r4, r3, #{data}
                store r1, [r4+0]   ; append block to free list
                inc [@{base}]
                unlock #{lock}
                halt
                "
            ),
        )
        .expect("mem_free assembles");
        let alloc = assemble(
            "mem_alloc",
            &format!(
                r"
                lock #{lock}
                load r3, [@{base}]
                subi r3, r3, #1
                store r3, [@{base}]
                addi r4, r3, #{data}
                load r1, [r4+0]    ; take head block
                unlock #{lock}
                mov r5, r1         ; use the pointer → consume
                halt
                "
            ),
        )
        .expect("mem_alloc assembles");
        Allocator {
            lock,
            base,
            free,
            alloc,
        }
    }

    /// Seeds the free list in guest memory with `blocks` block
    /// addresses (done at program initialization, outside any critical
    /// section, so the locations carry no taint — matching §3.1's
    /// assumption about pre-existing data).
    pub fn seed(&self, mem: &mut crate::mem::GuestMem, blocks: &[i64]) {
        mem.write(self.base, blocks.len() as i64);
        for (i, &b) in blocks.iter().enumerate() {
            mem.write(self.base + 8 + i as u64, b);
        }
    }
}

/// A `sys/queue.h`-style singly-linked list. `[0]=head` (0 is `NULL`);
/// elements are caller-allocated 2-word blocks `[next, value]`.
#[derive(Clone, Debug)]
pub struct SList {
    /// Lock protecting the list.
    pub lock: u32,
    /// Insert at head: arg `r1 = element address` (value already stored
    /// at `elem+1` by the pre-lock code from `r2`).
    pub insert_head: Program,
    /// Remove from head: result `r1 = element address` (0 if empty),
    /// used post-exit; the value is read through the pointer.
    pub remove_head: Program,
}

impl SList {
    /// Builds the list programs for `lock`.
    pub fn new(lock: u32) -> Self {
        let insert_head = assemble(
            "slist_insert_head",
            &format!(
                r"
                store r2, [r1+1]   ; elem->value = v (outside the CS)
                lock #{lock}
                load r3, [@0]      ; old head
                cmpi r3, #0
                jnz chain
                mov r3, #0         ; elem->next = NULL (immediate!)
            chain:
                store r3, [r1+0]   ; elem->next = head
                store r1, [@0]     ; head = elem
                unlock #{lock}
                halt
                "
            ),
        )
        .expect("slist insert assembles");
        let remove_head = assemble(
            "slist_remove_head",
            &format!(
                r"
                lock #{lock}
                load r1, [@0]      ; elem = head
                cmpi r1, #0
                jz empty
                load r3, [r1+0]    ; next
                store r3, [@0]     ; head = next
            empty:
                unlock #{lock}
                mov r5, r1         ; use the element pointer
                cmpi r1, #0
                jz out
                load r6, [r5+1]    ; read elem->value through the pointer
            out:
                halt
                "
            ),
        )
        .expect("slist remove assembles");
        SList {
            lock,
            insert_head,
            remove_head,
        }
    }
}

/// A `sys/queue.h`-style singly-linked tail queue (`STAILQ`).
///
/// Layout: `[0]=head`, `[1]=tail` (0 is `NULL`); elements are 2-word
/// blocks `[next, value]`. FIFO like [`TailQueue`] but with no back
/// pointers — the remove path repairs only the head.
#[derive(Clone, Debug)]
pub struct STailQueue {
    /// Lock protecting the queue.
    pub lock: u32,
    /// Insert at tail: args `r1 = element address`, `r2 = value`.
    pub insert_tail: Program,
    /// Remove from head: result `r1 = element address` (0 if empty).
    pub remove_head: Program,
}

impl STailQueue {
    /// Builds the queue programs for `lock`.
    pub fn new(lock: u32) -> Self {
        let insert_tail = assemble(
            "stailq_insert_tail",
            &format!(
                r"
                store r2, [r1+1]   ; elem->value = v (outside the CS)
                lock #{lock}
                mov r3, #0
                store r3, [r1+0]   ; elem->next = NULL (immediate)
                load r4, [@1]      ; old tail
                store r1, [@1]     ; tail = elem
                cmpi r4, #0
                jnz linknext
                store r1, [@0]     ; empty: head = elem
                jmp out
            linknext:
                store r1, [r4+0]   ; old_tail->next = elem
            out:
                unlock #{lock}
                halt
                "
            ),
        )
        .expect("stailq insert assembles");
        let remove_head = assemble(
            "stailq_remove_head",
            &format!(
                r"
                lock #{lock}
                load r1, [@0]      ; elem = head
                cmpi r1, #0
                jz empty
                load r3, [r1+0]    ; next
                store r3, [@0]     ; head = next
                cmpi r3, #0
                jnz empty
                mov r4, #0
                store r4, [@1]     ; drained: tail = NULL
            empty:
                unlock #{lock}
                mov r5, r1         ; use the element pointer
                cmpi r1, #0
                jz out
                load r6, [r5+1]    ; read elem->value
            out:
                halt
                "
            ),
        )
        .expect("stailq remove assembles");
        STailQueue {
            lock,
            insert_tail,
            remove_head,
        }
    }
}

/// A `sys/queue.h`-style doubly-linked tail queue (`TAILQ`).
///
/// Layout: `[0]=head`, `[1]=tail` (0 is `NULL`); elements are
/// caller-allocated 3-word blocks `[next, prev, value]`. Producers
/// insert at the tail, consumers remove from the head — the FIFO
/// discipline of a work queue. Exercises the §3 rules on a second
/// pointer field (`prev`) and on head/tail updates from both ends.
#[derive(Clone, Debug)]
pub struct TailQueue {
    /// Lock protecting the queue.
    pub lock: u32,
    /// Insert at tail: args `r1 = element address`, `r2 = value`.
    pub insert_tail: Program,
    /// Remove from head: result `r1 = element address` (0 if empty),
    /// used post-exit; the value is read through the pointer.
    pub remove_head: Program,
}

impl TailQueue {
    /// Builds the tail-queue programs for `lock`.
    pub fn new(lock: u32) -> Self {
        let insert_tail = assemble(
            "tailq_insert_tail",
            &format!(
                r"
                store r2, [r1+2]   ; elem->value = v (outside the CS)
                lock #{lock}
                mov r3, #0
                store r3, [r1+0]   ; elem->next = NULL (immediate)
                load r4, [@1]      ; old tail
                store r4, [r1+1]   ; elem->prev = old tail
                store r1, [@1]     ; tail = elem
                cmpi r4, #0
                jnz linkprev
                store r1, [@0]     ; empty queue: head = elem too
                jmp out
            linkprev:
                store r1, [r4+0]   ; old_tail->next = elem
            out:
                unlock #{lock}
                halt
                "
            ),
        )
        .expect("tailq insert assembles");
        let remove_head = assemble(
            "tailq_remove_head",
            &format!(
                r"
                lock #{lock}
                load r1, [@0]      ; elem = head
                cmpi r1, #0
                jz empty
                load r3, [r1+0]    ; next
                store r3, [@0]     ; head = next
                cmpi r3, #0
                jnz fixprev
                mov r4, #0
                store r4, [@1]     ; queue drained: tail = NULL
                jmp empty
            fixprev:
                mov r4, #0
                store r4, [r3+1]   ; next->prev = NULL (immediate)
            empty:
                unlock #{lock}
                mov r5, r1         ; use the element pointer
                cmpi r1, #0
                jz out
                load r6, [r5+2]    ; read elem->value through the pointer
            out:
                halt
                "
            ),
        )
        .expect("tailq remove assembles");
        TailQueue {
            lock,
            insert_tail,
            remove_head,
        }
    }
}

/// A sorted-array priority queue: `[0]=count`, 2-word elements
/// `[key, value]` from word 8, ascending by key. Inserts shift larger
/// elements right (moves within the shared structure, §3.2).
#[derive(Clone, Debug)]
pub struct PrioQueue {
    /// Lock protecting the queue.
    pub lock: u32,
    /// Insert: args `r1 = key`, `r2 = value`.
    pub insert: Program,
    /// Extract-min: results `r1 = key`, `r2 = value`, used post-exit.
    pub extract_min: Program,
}

impl PrioQueue {
    /// Builds the priority-queue programs for `lock`.
    pub fn new(lock: u32) -> Self {
        let insert = assemble(
            "pq_insert",
            &format!(
                r"
                lock #{lock}
                load r3, [@0]        ; n
                mov r4, r3           ; i = n
            shift:
                cmpi r4, #0
                jz place
                subi r5, r4, #1      ; j = i-1
                muli r6, r5, #2
                addi r6, r6, #8      ; &elem[j]
                load r7, [r6+0]      ; key_j
                cmp r7, r1
                jlt place            ; key_j < key → place at i
                muli r8, r4, #2
                addi r8, r8, #8      ; &elem[i]
                load r9, [r6+0]
                store r9, [r8+0]     ; shift key (taint follows)
                load r9, [r6+1]
                store r9, [r8+1]     ; shift value (taint follows)
                mov r4, r5           ; i = j
                jmp shift
            place:
                muli r8, r4, #2
                addi r8, r8, #8
                store r1, [r8+0]     ; produce key
                store r2, [r8+1]     ; produce value
                inc [@0]
                unlock #{lock}
                halt
                "
            ),
        )
        .expect("pq insert assembles");
        let extract_min = assemble(
            "pq_extract_min",
            &format!(
                r"
                lock #{lock}
                load r3, [@0]
                subi r3, r3, #1
                store r3, [@0]       ; n--
                load r1, [@8]        ; min key
                load r2, [@9]        ; min value
                mov r4, #0           ; i = 0
            shift:
                cmp r4, r3
                jge done
                muli r5, r4, #2
                addi r5, r5, #8
                load r6, [r5+2]
                store r6, [r5+0]     ; elem[i] = elem[i+1]
                load r6, [r5+3]
                store r6, [r5+1]
                addi r4, r4, #1
                jmp shift
            done:
                unlock #{lock}
                mov r7, r1           ; use key
                mov r8, r2           ; use value
                halt
                "
            ),
        )
        .expect("pq extract assembles");
        PrioQueue {
            lock,
            insert,
            extract_min,
        }
    }
}

/// The fd queue with an inner nested lock around the counter update
/// (§3.3.2: "our algorithm analyzes all instructions in the critical
/// section protected by the outermost lock").
#[derive(Clone, Debug)]
pub struct FdQueueNested {
    /// Outer queue lock.
    pub lock: u32,
    /// Inner statistics lock.
    pub inner_lock: u32,
    /// Push with a nested statistics update.
    pub push: Program,
}

impl FdQueueNested {
    /// Builds the nested-lock push.
    pub fn new(lock: u32, inner_lock: u32) -> Self {
        let push = assemble(
            "ap_queue_push_nested",
            &format!(
                r"
                lock #{lock}
                load r3, [@{FDQ_NELTS}]
                muli r4, r3, #2
                addi r4, r4, #{FDQ_DATA}
                store r1, [r4+0]
                store r2, [r4+1]
                lock #{inner_lock}
                inc [@1]             ; stats counter under the inner lock
                unlock #{inner_lock}
                inc [@{FDQ_NELTS}]
                unlock #{lock}
                halt
                "
            ),
        )
        .expect("nested push assembles");
        FdQueueNested {
            lock,
            inner_lock,
            push,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Cpu;
    use crate::emu::{CsEmulator, ExecMode};
    use crate::mem::GuestMem;
    use crate::tcache::TranslationCache;
    use whodunit_core::context::CtxId;
    use whodunit_core::ids::{LockId, ThreadId};
    use whodunit_core::shm::{FlowDetector, FlowEvent, MemEvent};

    /// Test harness: runs guest programs through the emulator and the
    /// §3 flow detector, mimicking the per-thread contexts the profiler
    /// would supply.
    struct Rig {
        det: FlowDetector,
        tc: TranslationCache,
        mem: GuestMem,
        log: Vec<FlowEvent>,
    }

    impl Rig {
        fn new(words: usize) -> Self {
            Rig {
                det: FlowDetector::default(),
                tc: TranslationCache::new(),
                mem: GuestMem::new(words),
                log: Vec::new(),
            }
        }

        /// Runs `prog` as thread `t` with context `ctx` and args.
        fn run(&mut self, prog: &Program, t: ThreadId, ctx: CtxId, args: &[(usize, i64)]) {
            let mut cpu = Cpu::new(t);
            for &(r, v) in args {
                cpu.regs[r] = v;
            }
            let emu = CsEmulator::default();
            let det = &mut self.det;
            let log = &mut self.log;
            emu.run(
                prog,
                &mut cpu,
                &mut self.mem,
                ExecMode::Emulated {
                    tcache: &mut self.tc,
                },
                &mut |e: &MemEvent| {
                    let mut out = Vec::new();
                    det.on_event(t, ctx, e, &mut out);
                    log.extend(out);
                },
            );
        }

        fn consumed(&self) -> Vec<(ThreadId, CtxId)> {
            self.log
                .iter()
                .filter_map(|e| match e {
                    FlowEvent::Consumed { thread, ctx, .. } => Some((*thread, *ctx)),
                    _ => None,
                })
                .collect()
        }
    }

    const PROD: ThreadId = ThreadId(1);
    const CONS: ThreadId = ThreadId(2);
    const CTX_P: CtxId = CtxId(5);
    const CTX_C: CtxId = CtxId(6);

    #[test]
    fn fd_queue_flow_is_detected_end_to_end() {
        // The Figure 1 / §8.1 validation: Apache's fd queue carries
        // transaction flow from the listener to a worker.
        let q = FdQueue::new(3);
        let mut rig = Rig::new(FdQueue::mem_words(8));
        FdQueue::init(&mut rig.mem, 8);
        rig.run(&q.push, PROD, CTX_P, &[(1, 1234), (2, 5678)]);
        rig.run(&q.pop, CONS, CTX_C, &[]);
        let consumed = rig.consumed();
        assert!(
            consumed.contains(&(CONS, CTX_P)),
            "worker must inherit listener context, log: {:?}",
            rig.log
        );
        assert!(rig.det.flow_enabled(LockId(3)));
        // Value integrity through the emulated queue.
        assert_eq!(rig.mem.read(FDQ_NELTS), 0);
    }

    #[test]
    fn fd_queue_values_roundtrip() {
        let q = FdQueue::new(3);
        let mut rig = Rig::new(FdQueue::mem_words(8));
        FdQueue::init(&mut rig.mem, 8);
        rig.run(&q.push, PROD, CTX_P, &[(1, 77), (2, 88)]);
        rig.run(&q.push, PROD, CTX_P, &[(1, 99), (2, 11)]);
        assert_eq!(rig.mem.read(FDQ_NELTS), 2);
        // Pop returns the last pushed element (it is a LIFO stack, as
        // is Apache's nelts-indexed array in Figure 1).
        let mut cpu = Cpu::new(CONS);
        let emu = CsEmulator::default();
        emu.run(
            &q.pop,
            &mut cpu,
            &mut rig.mem,
            ExecMode::Direct,
            &mut |_| {},
        );
        assert_eq!(cpu.regs[5], 99);
        assert_eq!(cpu.regs[6], 11);
    }

    #[test]
    fn shared_counter_never_flows() {
        // Figure 2 / §8.1: MySQL's shared counter is detected but does
        // not constitute transaction flow.
        let c = SharedCounter::new(4, 0);
        let mut rig = Rig::new(4);
        for i in 0..4 {
            let (t, ctx) = if i % 2 == 0 {
                (PROD, CTX_P)
            } else {
                (CONS, CTX_C)
            };
            rig.run(&c.inc, t, ctx, &[]);
            rig.run(&c.read, t, ctx, &[]);
        }
        assert!(rig.consumed().is_empty(), "log: {:?}", rig.log);
        assert_eq!(rig.mem.read(0), 4);
    }

    #[test]
    fn allocator_pattern_disables_its_lock() {
        // Figure 3: the same thread frees and allocates → lists
        // intersect → flow disabled for this lock only.
        let a = Allocator::new(7);
        let mut rig = Rig::new(32);
        rig.run(&a.free, PROD, CTX_P, &[(1, 20)]);
        rig.run(&a.alloc, PROD, CTX_P, &[]);
        assert!(
            rig.log
                .iter()
                .any(|e| matches!(e, FlowEvent::FlowDisabled { lock } if *lock == LockId(7))),
            "log: {:?}",
            rig.log
        );
        assert!(!rig.det.flow_enabled(LockId(7)));
    }

    #[test]
    fn slist_flow_and_null_sanity() {
        let l = SList::new(9);
        // Elements at words 16 and 24.
        let mut rig = Rig::new(32);
        rig.run(&l.insert_head, PROD, CTX_P, &[(1, 16), (2, 500)]);
        rig.run(&l.remove_head, CONS, CTX_C, &[]);
        assert!(
            rig.consumed().contains(&(CONS, CTX_P)),
            "log: {:?}",
            rig.log
        );
        // List now empty; another consumer finds head == NULL. The NULL
        // arrived via the immediate store → invalid context → no flow.
        let before = rig.consumed().len();
        rig.run(&l.remove_head, CONS, CTX_C, &[]);
        assert_eq!(
            rig.consumed().len(),
            before,
            "NULL head must not flow, log: {:?}",
            rig.log
        );
        assert!(rig.det.flow_enabled(LockId(9)));
    }

    #[test]
    fn slist_two_elements_chain_correctly() {
        let l = SList::new(9);
        let mut rig = Rig::new(40);
        rig.run(&l.insert_head, PROD, CTX_P, &[(1, 16), (2, 100)]);
        rig.run(&l.insert_head, PROD, CtxId(15), &[(1, 24), (2, 200)]);
        // First remove gets elem 24 (LIFO) with the second context.
        rig.run(&l.remove_head, CONS, CTX_C, &[]);
        assert!(rig.consumed().contains(&(CONS, CtxId(15))));
        assert_eq!(rig.mem.read(0), 16, "head now points at first element");
        rig.run(&l.remove_head, CONS, CTX_C, &[]);
        assert!(rig.consumed().contains(&(CONS, CTX_P)));
    }

    #[test]
    fn stailq_fifo_flow() {
        let sq = STailQueue::new(17);
        let mut rig = Rig::new(64);
        rig.run(&sq.insert_tail, PROD, CtxId(31), &[(1, 16), (2, 100)]);
        rig.run(&sq.insert_tail, PROD, CtxId(32), &[(1, 24), (2, 200)]);
        for want in [31u32, 32] {
            rig.run(&sq.remove_head, CONS, CTX_C, &[]);
            assert!(
                rig.consumed().contains(&(CONS, CtxId(want))),
                "expected ctx {want}, log: {:?}",
                rig.log
            );
        }
        assert!(rig.det.flow_enabled(LockId(17)));
        assert_eq!(rig.mem.read(0), 0);
        assert_eq!(rig.mem.read(1), 0);
        // Empty removal: no flow.
        let before = rig.consumed().len();
        rig.run(&sq.remove_head, CONS, CTX_C, &[]);
        assert_eq!(rig.consumed().len(), before);
    }

    #[test]
    fn tailq_fifo_flow_and_values() {
        // §3.3.2: doubly-linked queues from sys/queue.h also carry
        // flow; FIFO order, both link directions updated in the CS.
        let tq = TailQueue::new(13);
        let mut rig = Rig::new(64);
        // Elements at 16, 24, 32 (3 words each).
        rig.run(&tq.insert_tail, PROD, CtxId(21), &[(1, 16), (2, 100)]);
        rig.run(&tq.insert_tail, PROD, CtxId(22), &[(1, 24), (2, 200)]);
        rig.run(&tq.insert_tail, PROD, CtxId(23), &[(1, 32), (2, 300)]);
        // FIFO: contexts come back in insertion order.
        for want in [21u32, 22, 23] {
            rig.run(&tq.remove_head, CONS, CTX_C, &[]);
            assert!(
                rig.consumed().contains(&(CONS, CtxId(want))),
                "expected ctx {want}, log: {:?}",
                rig.log
            );
        }
        assert!(rig.det.flow_enabled(LockId(13)));
        // Queue drained: head and tail are NULL again.
        assert_eq!(rig.mem.read(0), 0);
        assert_eq!(rig.mem.read(1), 0);
    }

    #[test]
    fn tailq_empty_removal_does_not_flow() {
        let tq = TailQueue::new(13);
        let mut rig = Rig::new(64);
        rig.run(&tq.insert_tail, PROD, CTX_P, &[(1, 16), (2, 1)]);
        rig.run(&tq.remove_head, CONS, CTX_C, &[]);
        let before = rig.consumed().len();
        // Queue empty: head is a NULL that arrived via the drained-tail
        // immediate; no flow may be inferred.
        rig.run(&tq.remove_head, CONS, CTX_C, &[]);
        assert_eq!(rig.consumed().len(), before, "log: {:?}", rig.log);
    }

    #[test]
    fn tailq_values_fifo_order() {
        let tq = TailQueue::new(13);
        let mut rig = Rig::new(64);
        for (i, v) in [(0i64, 111i64), (1, 222), (2, 333)] {
            rig.run(&tq.insert_tail, PROD, CTX_P, &[(1, 16 + 8 * i), (2, v)]);
        }
        for want in [111i64, 222, 333] {
            let mut cpu = Cpu::new(CONS);
            let emu = CsEmulator::default();
            emu.run(
                &tq.remove_head,
                &mut cpu,
                &mut rig.mem,
                ExecMode::Direct,
                &mut |_| {},
            );
            assert_eq!(cpu.regs[6], want);
        }
    }

    #[test]
    fn prio_queue_moves_keep_context() {
        // §3.2: elements moved inside the shared structure keep their
        // producer context.
        let pq = PrioQueue::new(11);
        let mut rig = Rig::new(64);
        // Insert key 50 with ctx A, then key 10 with ctx B: the insert
        // of 10 shifts 50's element right.
        rig.run(&pq.insert, PROD, CTX_P, &[(1, 50), (2, 5000)]);
        rig.run(&pq.insert, ThreadId(3), CtxId(16), &[(1, 10), (2, 1000)]);
        // Extract-min (key 10, ctx 16), then the shifted 50 (ctx A).
        rig.run(&pq.extract_min, CONS, CTX_C, &[]);
        assert!(
            rig.consumed().contains(&(CONS, CtxId(16))),
            "log: {:?}",
            rig.log
        );
        rig.run(&pq.extract_min, CONS, CTX_C, &[]);
        assert!(
            rig.consumed().contains(&(CONS, CTX_P)),
            "shifted element must keep its producer context, log: {:?}",
            rig.log
        );
    }

    #[test]
    fn prio_queue_orders_by_key() {
        let pq = PrioQueue::new(11);
        let mut rig = Rig::new(64);
        for (k, v) in [(30, 3), (10, 1), (20, 2)] {
            rig.run(&pq.insert, PROD, CTX_P, &[(1, k), (2, v)]);
        }
        let mut got = Vec::new();
        for _ in 0..3 {
            let mut cpu = Cpu::new(CONS);
            let emu = CsEmulator::default();
            emu.run(
                &pq.extract_min,
                &mut cpu,
                &mut rig.mem,
                ExecMode::Direct,
                &mut |_| {},
            );
            got.push((cpu.regs[7], cpu.regs[8]));
        }
        assert_eq!(got, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn nested_lock_attributes_flow_to_outer() {
        let nq = FdQueueNested::new(3, 4);
        let q = FdQueue::new(3);
        let mut rig = Rig::new(FdQueue::mem_words(8));
        rig.run(&nq.push, PROD, CTX_P, &[(1, 42), (2, 43)]);
        rig.run(&q.pop, CONS, CTX_C, &[]);
        assert!(
            rig.consumed().contains(&(CONS, CTX_P)),
            "log: {:?}",
            rig.log
        );
        // The inner stats lock saw only a non-MOV update: no producers.
        assert_eq!(rig.det.lock_stats(LockId(4)).producers, 0);
    }

    #[test]
    fn direct_cost_of_fd_queue_matches_table3_magnitude() {
        // Table 3: ap_queue_push 131.64 cycles, ap_queue_pop 109.72
        // cycles under direct execution. Our cost model should land in
        // the same range.
        let q = FdQueue::new(3);
        let mut mem = GuestMem::new(FdQueue::mem_words(8));
        let emu = CsEmulator::default();
        let mut cpu = Cpu::new(PROD);
        cpu.regs[1] = 1;
        let st = emu.run(&q.push, &mut cpu, &mut mem, ExecMode::Direct, &mut |_| {});
        assert!(
            (90..180).contains(&st.cycles),
            "push direct = {}",
            st.cycles
        );
        let mut cpu = Cpu::new(CONS);
        let st = emu.run(&q.pop, &mut cpu, &mut mem, ExecMode::Direct, &mut |_| {});
        assert!((80..160).contains(&st.cycles), "pop direct = {}", st.cycles);
    }
}
