//! The guest CPU interpreter.
//!
//! Each [`Cpu::step`] executes one instruction and reports its
//! [`Effect`]: the locations it read, what kind of write it performed
//! (a `MOV` copy or a non-`MOV` modification), any critical-section
//! marker, and its direct-execution cost. The emulation driver
//! ([`crate::emu`]) turns effects into the §3 algorithm's
//! [`whodunit_core::shm::MemEvent`]s depending on critical-section
//! state.

use crate::isa::{CsOp, Instr, Program, NREGS};
use crate::mem::GuestMem;
use whodunit_core::ids::ThreadId;
use whodunit_core::shm::Loc;

/// The write half of an instruction's effect.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Write {
    /// A value was copied unchanged from `src` to `dst` (a `MOV`).
    Mov {
        /// Source location.
        src: Loc,
        /// Destination location.
        dst: Loc,
    },
    /// `dst` was modified in a non-`MOV` way.
    Modify {
        /// Destination location.
        dst: Loc,
    },
}

/// Everything one executed instruction did.
#[derive(Clone, Debug, Default)]
pub struct Effect {
    /// Locations read by the instruction, in operand order.
    pub reads: Vec<Loc>,
    /// The write performed, if any.
    pub write: Option<Write>,
    /// Critical-section marker, if the instruction was `lock`/`unlock`.
    pub cs: Option<CsOp>,
    /// Direct-execution cycle cost.
    pub cost: u64,
}

/// Comparison flag state.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
enum Flag {
    #[default]
    Eq,
    Lt,
    Gt,
}

/// Guest CPU state: registers, flag, program counter.
#[derive(Clone, Debug)]
pub struct Cpu {
    /// General-purpose registers.
    pub regs: [i64; NREGS],
    flag: Flag,
    /// Program counter (instruction index).
    pub pc: usize,
    /// Set once `halt` executes.
    pub halted: bool,
    thread: ThreadId,
}

impl Cpu {
    /// Creates a CPU for guest code run on behalf of `thread`.
    ///
    /// The thread id annotates register locations (`reg_ti` in §3.2),
    /// keeping different threads' registers distinct in the dictionary.
    pub fn new(thread: ThreadId) -> Self {
        Cpu {
            regs: [0; NREGS],
            flag: Flag::Eq,
            pc: 0,
            halted: false,
            thread,
        }
    }

    /// Resets pc/flag/halted, keeping registers (for argument passing).
    pub fn restart(&mut self) {
        self.pc = 0;
        self.flag = Flag::Eq;
        self.halted = false;
    }

    fn reg_loc(&self, r: u8) -> Loc {
        Loc::Reg(self.thread, r)
    }

    fn addr(&self, base: u8, off: i64) -> u64 {
        let a = self.regs[base as usize] + off;
        u64::try_from(a).expect("negative guest address")
    }

    fn set_flag(&mut self, a: i64, b: i64) {
        self.flag = match a.cmp(&b) {
            std::cmp::Ordering::Less => Flag::Lt,
            std::cmp::Ordering::Equal => Flag::Eq,
            std::cmp::Ordering::Greater => Flag::Gt,
        };
    }

    /// Executes the instruction at `pc`, returning its [`Effect`].
    ///
    /// Returns `None` if the CPU is already halted or `pc` ran past the
    /// end of the program.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds guest memory access or a negative
    /// effective address — guest program bugs.
    pub fn step(&mut self, prog: &Program, mem: &mut GuestMem) -> Option<Effect> {
        if self.halted || self.pc >= prog.instrs.len() {
            self.halted = true;
            return None;
        }
        let ins = prog.instrs[self.pc];
        let mut ef = Effect {
            cost: ins.direct_cost(),
            ..Effect::default()
        };
        let mut next = self.pc + 1;
        match ins {
            Instr::MovRR { d, s } => {
                ef.reads.push(self.reg_loc(s));
                ef.write = Some(Write::Mov {
                    src: self.reg_loc(s),
                    dst: self.reg_loc(d),
                });
                self.regs[d as usize] = self.regs[s as usize];
            }
            Instr::MovRI { d, imm } => {
                ef.write = Some(Write::Modify {
                    dst: self.reg_loc(d),
                });
                self.regs[d as usize] = imm;
            }
            Instr::Load { d, base, off } => {
                let a = self.addr(base, off);
                ef.reads.push(self.reg_loc(base));
                ef.reads.push(Loc::Mem(a));
                ef.write = Some(Write::Mov {
                    src: Loc::Mem(a),
                    dst: self.reg_loc(d),
                });
                self.regs[d as usize] = mem.read(a);
            }
            Instr::Store { s, base, off } => {
                let a = self.addr(base, off);
                ef.reads.push(self.reg_loc(s));
                ef.reads.push(self.reg_loc(base));
                ef.write = Some(Write::Mov {
                    src: self.reg_loc(s),
                    dst: Loc::Mem(a),
                });
                mem.write(a, self.regs[s as usize]);
            }
            Instr::LoadA { d, addr } => {
                ef.reads.push(Loc::Mem(addr));
                ef.write = Some(Write::Mov {
                    src: Loc::Mem(addr),
                    dst: self.reg_loc(d),
                });
                self.regs[d as usize] = mem.read(addr);
            }
            Instr::StoreA { s, addr } => {
                ef.reads.push(self.reg_loc(s));
                ef.write = Some(Write::Mov {
                    src: self.reg_loc(s),
                    dst: Loc::Mem(addr),
                });
                mem.write(addr, self.regs[s as usize]);
            }
            Instr::Add { d, a, b } => {
                ef.reads.push(self.reg_loc(a));
                ef.reads.push(self.reg_loc(b));
                ef.write = Some(Write::Modify {
                    dst: self.reg_loc(d),
                });
                self.regs[d as usize] = self.regs[a as usize].wrapping_add(self.regs[b as usize]);
            }
            Instr::AddI { d, a, imm } => {
                ef.reads.push(self.reg_loc(a));
                ef.write = Some(Write::Modify {
                    dst: self.reg_loc(d),
                });
                self.regs[d as usize] = self.regs[a as usize].wrapping_add(imm);
            }
            Instr::Sub { d, a, b } => {
                ef.reads.push(self.reg_loc(a));
                ef.reads.push(self.reg_loc(b));
                ef.write = Some(Write::Modify {
                    dst: self.reg_loc(d),
                });
                self.regs[d as usize] = self.regs[a as usize].wrapping_sub(self.regs[b as usize]);
            }
            Instr::SubI { d, a, imm } => {
                ef.reads.push(self.reg_loc(a));
                ef.write = Some(Write::Modify {
                    dst: self.reg_loc(d),
                });
                self.regs[d as usize] = self.regs[a as usize].wrapping_sub(imm);
            }
            Instr::MulI { d, a, imm } => {
                ef.reads.push(self.reg_loc(a));
                ef.write = Some(Write::Modify {
                    dst: self.reg_loc(d),
                });
                self.regs[d as usize] = self.regs[a as usize].wrapping_mul(imm);
            }
            Instr::IncM { base, off } => {
                let a = self.addr(base, off);
                ef.reads.push(self.reg_loc(base));
                ef.reads.push(Loc::Mem(a));
                ef.write = Some(Write::Modify { dst: Loc::Mem(a) });
                mem.write(a, mem.read(a) + 1);
            }
            Instr::DecM { base, off } => {
                let a = self.addr(base, off);
                ef.reads.push(self.reg_loc(base));
                ef.reads.push(Loc::Mem(a));
                ef.write = Some(Write::Modify { dst: Loc::Mem(a) });
                mem.write(a, mem.read(a) - 1);
            }
            Instr::IncA { addr } => {
                ef.reads.push(Loc::Mem(addr));
                ef.write = Some(Write::Modify {
                    dst: Loc::Mem(addr),
                });
                mem.write(addr, mem.read(addr) + 1);
            }
            Instr::DecA { addr } => {
                ef.reads.push(Loc::Mem(addr));
                ef.write = Some(Write::Modify {
                    dst: Loc::Mem(addr),
                });
                mem.write(addr, mem.read(addr) - 1);
            }
            Instr::Cmp { a, b } => {
                ef.reads.push(self.reg_loc(a));
                ef.reads.push(self.reg_loc(b));
                self.set_flag(self.regs[a as usize], self.regs[b as usize]);
            }
            Instr::CmpI { a, imm } => {
                ef.reads.push(self.reg_loc(a));
                self.set_flag(self.regs[a as usize], imm);
            }
            Instr::Jmp { target } => next = target,
            Instr::Jz { target } => {
                if self.flag == Flag::Eq {
                    next = target;
                }
            }
            Instr::Jnz { target } => {
                if self.flag != Flag::Eq {
                    next = target;
                }
            }
            Instr::Jlt { target } => {
                if self.flag == Flag::Lt {
                    next = target;
                }
            }
            Instr::Jge { target } => {
                if self.flag != Flag::Lt {
                    next = target;
                }
            }
            Instr::Lock { lock } => ef.cs = Some(CsOp::Enter(lock)),
            Instr::Unlock { lock } => ef.cs = Some(CsOp::Exit(lock)),
            Instr::Nop => {}
            Instr::Halt => {
                self.halted = true;
            }
        }
        self.pc = next;
        Some(ef)
    }

    /// Runs to halt (or `max_steps`), returning executed-instruction
    /// count and total direct cost. Effects are discarded — this is
    /// plain execution for tests and native mode.
    pub fn run(&mut self, prog: &Program, mem: &mut GuestMem, max_steps: u64) -> (u64, u64) {
        let mut n = 0;
        let mut cost = 0;
        while n < max_steps {
            match self.step(prog, mem) {
                Some(ef) => {
                    n += 1;
                    cost += ef.cost;
                }
                None => break,
            }
        }
        (n, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Instr::*;

    fn t() -> ThreadId {
        ThreadId(1)
    }

    #[test]
    fn arithmetic_and_moves_execute() {
        let p = Program::new(
            "arith",
            vec![
                MovRI { d: 1, imm: 5 },
                AddI { d: 2, a: 1, imm: 3 },
                MovRR { d: 3, s: 2 },
                MulI { d: 3, a: 3, imm: 4 },
                Sub { d: 4, a: 3, b: 1 },
                Halt,
            ],
        );
        let mut cpu = Cpu::new(t());
        let mut mem = GuestMem::new(4);
        cpu.run(&p, &mut mem, 100);
        assert_eq!(cpu.regs[2], 8);
        assert_eq!(cpu.regs[3], 32);
        assert_eq!(cpu.regs[4], 27);
        assert!(cpu.halted);
    }

    #[test]
    fn memory_addressing_works() {
        let p = Program::new(
            "mem",
            vec![
                MovRI { d: 1, imm: 10 }, // base.
                MovRI { d: 2, imm: -9 }, // value.
                Store {
                    s: 2,
                    base: 1,
                    off: 2,
                }, // mem[12] = -9.
                Load {
                    d: 3,
                    base: 1,
                    off: 2,
                },
                LoadA { d: 4, addr: 12 },
                StoreA { s: 3, addr: 0 },
                IncA { addr: 0 },
                Halt,
            ],
        );
        let mut cpu = Cpu::new(t());
        let mut mem = GuestMem::new(16);
        cpu.run(&p, &mut mem, 100);
        assert_eq!(mem.read(12), -9);
        assert_eq!(cpu.regs[3], -9);
        assert_eq!(cpu.regs[4], -9);
        assert_eq!(mem.read(0), -8);
    }

    #[test]
    fn branches_loop_correctly() {
        // Sum 1..=5: acc=0; i=1; while i<6 { acc+=i; i+=1 }.
        let p = Program::new(
            "loop",
            vec![
                MovRI { d: 1, imm: 0 },
                MovRI { d: 2, imm: 1 },
                CmpI { a: 2, imm: 6 },    // 2.
                Jge { target: 7 },        // 3.
                Add { d: 1, a: 1, b: 2 }, // 4.
                AddI { d: 2, a: 2, imm: 1 },
                Jmp { target: 2 },
                Halt, // 7.
            ],
        );
        let mut cpu = Cpu::new(t());
        let mut mem = GuestMem::new(1);
        let (n, _) = cpu.run(&p, &mut mem, 1000);
        assert_eq!(cpu.regs[1], 15);
        assert!(n < 1000);
    }

    #[test]
    fn effects_classify_mov_vs_modify() {
        let p = Program::new(
            "fx",
            vec![
                MovRI { d: 1, imm: 4 },
                Store {
                    s: 1,
                    base: 0,
                    off: 2,
                },
                IncM { base: 0, off: 2 },
                Halt,
            ],
        );
        let mut cpu = Cpu::new(t());
        let mut mem = GuestMem::new(8);
        let e1 = cpu.step(&p, &mut mem).unwrap();
        assert!(matches!(
            e1.write,
            Some(Write::Modify {
                dst: Loc::Reg(_, 1)
            })
        ));
        let e2 = cpu.step(&p, &mut mem).unwrap();
        assert!(matches!(
            e2.write,
            Some(Write::Mov {
                src: Loc::Reg(_, 1),
                dst: Loc::Mem(2)
            })
        ));
        let e3 = cpu.step(&p, &mut mem).unwrap();
        assert!(matches!(e3.write, Some(Write::Modify { dst: Loc::Mem(2) })));
        assert_eq!(mem.read(2), 5);
    }

    #[test]
    fn cs_markers_are_reported() {
        let p = Program::new("cs", vec![Lock { lock: 7 }, Unlock { lock: 7 }, Halt]);
        let mut cpu = Cpu::new(t());
        let mut mem = GuestMem::new(1);
        assert_eq!(cpu.step(&p, &mut mem).unwrap().cs, Some(CsOp::Enter(7)));
        assert_eq!(cpu.step(&p, &mut mem).unwrap().cs, Some(CsOp::Exit(7)));
    }

    #[test]
    fn halted_cpu_steps_none() {
        let p = Program::new("h", vec![Halt]);
        let mut cpu = Cpu::new(t());
        let mut mem = GuestMem::new(1);
        cpu.step(&p, &mut mem);
        assert!(cpu.step(&p, &mut mem).is_none());
        cpu.restart();
        assert!(!cpu.halted);
    }

    #[test]
    fn run_respects_max_steps() {
        let p = Program::new("spin", vec![Jmp { target: 0 }]);
        let mut cpu = Cpu::new(t());
        let mut mem = GuestMem::new(1);
        let (n, _) = cpu.run(&p, &mut mem, 17);
        assert_eq!(n, 17);
        assert!(!cpu.halted);
    }
}
