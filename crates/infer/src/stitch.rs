//! From pairings to request origins: the nesting heuristic.
//!
//! Pairing answers "which send produced this recv". This module
//! answers the profiling question Whodunit actually cares about:
//! "which *root request* is this message part of". The bridge is the
//! same causal rule the synopsis machinery encodes explicitly and the
//! black-box papers assume implicitly (synchronous workers): **a
//! thread works on behalf of the last message it received**, so a
//! send inherits the origin of its thread's most recent recv, and an
//! origin-tier send mints a fresh root.
//!
//! Everything in [`infer_stitch`] is computed from bare events — the
//! signature cannot see [`CommTruth`](whodunit_core::blackbox::CommTruth).
//! [`hybrid_stitch`] is the one place truth is consulted, and only in
//! the way a real deployment could: a *cooperating* tier's synopsis
//! rides the delivered message, so for a recv whose sender and
//! receiver both cooperate, the exact pairing and origin are simply
//! read off the wire.

use std::collections::{BTreeMap, HashMap};
use whodunit_core::blackbox::{CommEvent, CommEventId, CommKind, CommLog, TierVisibility};

use crate::pair::{infer_pairs, InferredPair, PairSource, Pairing, PairingConfig};

/// One recv attributed to a root request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InferredOrigin {
    /// The recv being attributed.
    pub recv: CommEventId,
    /// The send event that minted the root this recv is claimed to
    /// descend from.
    pub root: CommEventId,
    /// Minimum confidence along the inferred chain from root to here.
    pub confidence_ppm: u32,
    /// Synopsis-exact or timing-inferred.
    pub source: PairSource,
}

/// One aggregated proc → proc communication edge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InferredEdge {
    /// Sending proc.
    pub from_proc: u32,
    /// Receiving proc.
    pub to_proc: u32,
    /// Number of paired messages on this edge.
    pub count: u64,
    /// Weakest pairing confidence observed on this edge.
    pub min_confidence_ppm: u32,
}

/// The full black-box stitching result for one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InferredStitch {
    /// Asserted recv → send pairings, sorted by recv id.
    pub pairs: Vec<InferredPair>,
    /// Asserted recv → root attributions, sorted by recv id. Recvs
    /// whose chain hit an unknown link are *not* asserted (honesty
    /// beats coverage: precision is measured over what we claim).
    pub origins: Vec<InferredOrigin>,
    /// Procs classified as origin tiers (fresh root per send).
    pub origin_procs: Vec<u32>,
    /// Root-minting sends, sorted.
    pub roots: Vec<CommEventId>,
    /// Aggregated proc → proc edges, sorted by (from, to).
    pub edges: Vec<InferredEdge>,
    /// Recvs no send could be nominated for.
    pub unpaired_recvs: Vec<CommEventId>,
    /// Sends never claimed by any recv.
    pub unclaimed_sends: Vec<CommEventId>,
    /// Recvs that were paired but whose origin chain broke.
    pub unknown_origin_recvs: Vec<CommEventId>,
}

impl InferredStitch {
    /// Asserted origins as a recv → root map.
    pub fn origin_map(&self) -> HashMap<CommEventId, CommEventId> {
        self.origins.iter().map(|o| (o.recv, o.root)).collect()
    }

    /// Asserted pairings as a recv → send map.
    pub fn pair_map(&self) -> HashMap<CommEventId, CommEventId> {
        self.pairs.iter().map(|p| (p.recv, p.send)).collect()
    }
}

/// Infers pairings and origins from bare events (no ground truth).
pub fn infer_stitch(events: &[CommEvent], cfg: &PairingConfig) -> InferredStitch {
    let pairing = infer_pairs(events, cfg);
    let origin_procs = classify_origin_procs(events);
    walk_origins(events, pairing, origin_procs, &HashMap::new())
}

/// Infers with per-tier visibility: recvs whose sender *and* receiver
/// procs both cooperate are attributed exactly from their synopses
/// (the tag rides the delivered message); everything else falls back
/// to timing inference over the remaining traffic. Procs with ids
/// beyond `vis.len()` — e.g. clients the operator cannot instrument —
/// default to [`TierVisibility::Opaque`].
pub fn hybrid_stitch(log: &CommLog, vis: &[TierVisibility], cfg: &PairingConfig) -> InferredStitch {
    let coop = |p: u32| {
        vis.get(p as usize)
            .copied()
            .unwrap_or(TierVisibility::Opaque)
            == TierVisibility::Cooperating
    };
    let by_id: HashMap<CommEventId, &CommEvent> =
        log.events.iter().map(|e| (e.id, e)).collect();
    let truth_pairs = log.truth_pairs();
    let truth_origins = log.truth_origins();

    // Split the log: synopsis-covered recvs (and the sends that are
    // their true producers) leave the inference problem entirely —
    // each cooperating tier resolves its own inbound edges, which is
    // exactly why partial cooperation makes the opaque remainder
    // *easier*, not harder.
    let mut synopsis_pairs: Vec<InferredPair> = Vec::new();
    let mut exact_origins: HashMap<CommEventId, CommEventId> = HashMap::new();
    let mut covered_sends: HashMap<CommEventId, bool> = HashMap::new();
    for e in &log.events {
        if e.kind != CommKind::Recv {
            continue;
        }
        let Some(&send) = truth_pairs.get(&e.id) else {
            continue;
        };
        let sender_coop = by_id.get(&send).map(|s| coop(s.proc)).unwrap_or(false);
        if sender_coop && coop(e.proc) {
            synopsis_pairs.push(InferredPair {
                recv: e.id,
                send,
                confidence_ppm: 1_000_000,
                source: PairSource::Synopsis,
            });
            if let Some(&root) = truth_origins.get(&e.id) {
                exact_origins.insert(e.id, root);
            }
            covered_sends.insert(send, true);
        }
    }
    let covered_recvs: HashMap<CommEventId, bool> =
        synopsis_pairs.iter().map(|p| (p.recv, true)).collect();
    let residue: Vec<CommEvent> = log
        .events
        .iter()
        .filter(|e| match e.kind {
            CommKind::Send => !covered_sends.contains_key(&e.id),
            CommKind::Recv => !covered_recvs.contains_key(&e.id),
        })
        .cloned()
        .collect();

    let mut pairing = infer_pairs(&residue, cfg);
    pairing.pairs.extend(synopsis_pairs);
    pairing.pairs.sort_by_key(|p| p.recv);

    // Classification still sees the whole log: visibility changes who
    // explains a message, not who exists.
    let origin_procs = classify_origin_procs(&log.events);
    walk_origins(&log.events, pairing, origin_procs, &exact_origins)
}

/// Majority vote per proc: a proc whose threads mostly *send before
/// ever receiving* is an origin tier (clients, load generators);
/// worker tiers wake up to a recv.
fn classify_origin_procs(events: &[CommEvent]) -> Vec<u32> {
    let mut sorted: Vec<&CommEvent> = events.iter().collect();
    sorted.sort_by_key(|e| (e.at, e.id));
    let mut first_kind: HashMap<(u32, u32), CommKind> = HashMap::new();
    for e in &sorted {
        first_kind.entry((e.proc, e.thread)).or_insert(e.kind);
    }
    let mut votes: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
    for ((proc, _), kind) in &first_kind {
        let v = votes.entry(*proc).or_insert((0, 0));
        match kind {
            CommKind::Send => v.0 += 1,
            CommKind::Recv => v.1 += 1,
        }
    }
    votes
        .into_iter()
        .filter(|(_, (send_first, recv_first))| send_first > recv_first)
        .map(|(p, _)| p)
        .collect()
}

/// Replays the log in causal order, propagating roots through the
/// per-thread inheritance rule.
fn walk_origins(
    events: &[CommEvent],
    pairing: Pairing,
    origin_procs: Vec<u32>,
    exact_origins: &HashMap<CommEventId, CommEventId>,
) -> InferredStitch {
    let mut sorted: Vec<&CommEvent> = events.iter().collect();
    sorted.sort_by_key(|e| (e.at, e.id));
    let by_id: HashMap<CommEventId, &CommEvent> =
        events.iter().map(|e| (e.id, e)).collect();
    let pair_of: HashMap<CommEventId, (CommEventId, u32, PairSource)> = pairing
        .pairs
        .iter()
        .map(|p| (p.recv, (p.send, p.confidence_ppm, p.source)))
        .collect();

    let is_origin_proc: HashMap<u32, bool> =
        origin_procs.iter().map(|&p| (p, true)).collect();
    // Per-thread: (has ever received, origin of last recv if known).
    type ThreadSlot = (bool, Option<(CommEventId, u32)>);
    let mut threads: HashMap<(u32, u32), ThreadSlot> = HashMap::new();
    // Per-send: the root it carries, if known.
    let mut send_origin: HashMap<CommEventId, Option<(CommEventId, u32)>> = HashMap::new();

    let mut origins: Vec<InferredOrigin> = Vec::new();
    let mut roots: Vec<CommEventId> = Vec::new();
    let mut unknown: Vec<CommEventId> = Vec::new();

    for e in &sorted {
        let slot = threads.entry((e.proc, e.thread)).or_insert((false, None));
        match e.kind {
            CommKind::Send => {
                let minted = is_origin_proc.contains_key(&e.proc) || !slot.0;
                if minted {
                    // Fresh root: origin tiers mint per send, and a
                    // thread that has never received is self-starting.
                    roots.push(e.id);
                    send_origin.insert(e.id, Some((e.id, 1_000_000)));
                } else {
                    send_origin.insert(e.id, slot.1);
                }
            }
            CommKind::Recv => {
                slot.0 = true;
                if let Some(&root) = exact_origins.get(&e.id) {
                    // Synopsis-borne origin: exact by construction.
                    origins.push(InferredOrigin {
                        recv: e.id,
                        root,
                        confidence_ppm: 1_000_000,
                        source: PairSource::Synopsis,
                    });
                    slot.1 = Some((root, 1_000_000));
                    continue;
                }
                let resolved = pair_of.get(&e.id).and_then(|&(send, conf, _)| {
                    send_origin.get(&send).copied().flatten().map(
                        |(root, root_conf)| (root, conf.min(root_conf)),
                    )
                });
                match resolved {
                    Some((root, conf)) => {
                        origins.push(InferredOrigin {
                            recv: e.id,
                            root,
                            confidence_ppm: conf,
                            source: PairSource::Inferred,
                        });
                        slot.1 = Some((root, conf));
                    }
                    None => {
                        // Chain broke (unpaired, or the paired send's
                        // own origin was unknown): do not guess.
                        unknown.push(e.id);
                        slot.1 = None;
                    }
                }
            }
        }
    }

    let mut edges: BTreeMap<(u32, u32), (u64, u32)> = BTreeMap::new();
    for p in &pairing.pairs {
        let (Some(s), Some(r)) = (by_id.get(&p.send), by_id.get(&p.recv)) else {
            continue;
        };
        let e = edges.entry((s.proc, r.proc)).or_insert((0, u32::MAX));
        e.0 += 1;
        e.1 = e.1.min(p.confidence_ppm);
    }

    origins.sort_by_key(|o| o.recv);
    roots.sort_unstable();
    unknown.sort_unstable();
    InferredStitch {
        pairs: pairing.pairs,
        origins,
        origin_procs,
        roots,
        edges: edges
            .into_iter()
            .map(|((f, t), (count, min_confidence_ppm))| InferredEdge {
                from_proc: f,
                to_proc: t,
                count,
                min_confidence_ppm,
            })
            .collect(),
        unpaired_recvs: pairing.unpaired_recvs,
        unclaimed_sends: pairing.unclaimed_sends,
        unknown_origin_recvs: unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u64, at: u64, kind: CommKind, chan: u32, proc: u32, thread: u32) -> CommEvent {
        CommEvent {
            id,
            at,
            kind,
            chan,
            proc,
            thread,
            bytes: 64,
        }
    }

    /// client(p0) -> front(p1) -> db(p2): two requests, constant
    /// latencies, one worker thread per tier.
    fn three_tier() -> Vec<CommEvent> {
        let mut v = Vec::new();
        let mut id = 0;
        for i in 0..2u64 {
            let t0 = i * 10_000;
            // client sends on chan 0, front recvs
            v.push(ev(id, t0, CommKind::Send, 0, 0, 0));
            v.push(ev(id + 1, t0 + 500, CommKind::Recv, 0, 1, 0));
            // front forwards on chan 1, db recvs
            v.push(ev(id + 2, t0 + 700, CommKind::Send, 1, 1, 0));
            v.push(ev(id + 3, t0 + 1200, CommKind::Recv, 1, 2, 0));
            // db replies on chan 2, front recvs
            v.push(ev(id + 4, t0 + 1400, CommKind::Send, 2, 2, 0));
            v.push(ev(id + 5, t0 + 1900, CommKind::Recv, 2, 1, 0));
            // front replies on chan 3, client recvs
            v.push(ev(id + 6, t0 + 2000, CommKind::Send, 3, 1, 0));
            v.push(ev(id + 7, t0 + 2500, CommKind::Recv, 3, 0, 0));
            id += 8;
        }
        v
    }

    #[test]
    fn three_tier_pipeline_recovers_exact_origins() {
        let events = three_tier();
        let s = infer_stitch(&events, &PairingConfig::default());
        assert_eq!(s.origin_procs, vec![0]);
        assert_eq!(s.roots, vec![0, 8]);
        // Every recv of request i descends from root 8*i.
        assert_eq!(s.origins.len(), 8);
        for o in &s.origins {
            assert_eq!(o.root, (o.recv / 8) * 8, "recv {} mis-rooted", o.recv);
            assert_eq!(o.confidence_ppm, 1_000_000);
            assert_eq!(o.source, PairSource::Inferred);
        }
        assert!(s.unknown_origin_recvs.is_empty());
        // Edges: 0->1, 1->2, 2->1, 1->0, two messages each.
        assert_eq!(s.edges.len(), 4);
        assert!(s.edges.iter().all(|e| e.count == 2));
    }

    #[test]
    fn broken_chain_is_not_asserted() {
        // The client's first send is missing from the log (tap
        // outage): the front tier's inbound recv cannot be paired,
        // its forwarded send has unknown origin, and the db recv
        // must not be attributed — honesty over coverage.
        let mut events = three_tier();
        events.retain(|e| e.id != 0);
        let s = infer_stitch(&events, &PairingConfig::default());
        assert!(s.unpaired_recvs.contains(&1));
        assert!(s.unknown_origin_recvs.contains(&3));
        assert!(s.origins.iter().all(|o| o.recv != 3));
    }

    #[test]
    fn full_visibility_hybrid_reproduces_truth_exactly() {
        use whodunit_core::blackbox::CommRecorder;
        let mut rec = CommRecorder::default();
        rec.mark_origin_proc(0);
        // Two client requests through one worker.
        for i in 0..2u64 {
            let t = i * 1000;
            let tag = rec.on_send(t, 0, 0, 0, 64);
            rec.on_recv(t + 100, 0, 1, 0, 64, tag);
            let tag = rec.on_send(t + 150, 1, 1, 0, 64);
            rec.on_recv(t + 250, 1, 2, 0, 64, tag);
        }
        let log = rec.finish();
        let vis = vec![TierVisibility::Cooperating; 3];
        let s = hybrid_stitch(&log, &vis, &PairingConfig::default());
        assert_eq!(s.origin_map(), log.truth_origins());
        assert_eq!(s.pair_map(), log.truth_pairs());
        assert!(s.pairs.iter().all(|p| p.source == PairSource::Synopsis));
        assert!(s.origins.iter().all(|o| o.confidence_ppm == 1_000_000));
    }

    #[test]
    fn opaque_middle_tier_degrades_not_collapses() {
        use whodunit_core::blackbox::CommRecorder;
        let mut rec = CommRecorder::default();
        rec.mark_origin_proc(0);
        for i in 0..3u64 {
            let t = i * 10_000;
            let tag = rec.on_send(t, 0, 0, 0, 64);
            rec.on_recv(t + 100, 0, 1, 0, 64, tag);
            let tag = rec.on_send(t + 150, 1, 1, 0, 64);
            rec.on_recv(t + 250, 1, 2, 0, 64, tag);
        }
        let log = rec.finish();
        let vis = vec![
            TierVisibility::Cooperating,
            TierVisibility::Opaque, // middle tier won't export
            TierVisibility::Cooperating,
        ];
        let s = hybrid_stitch(&log, &vis, &PairingConfig::default());
        // Nothing rides a synopsis (every edge touches the opaque
        // tier) but timing still recovers all six origins.
        assert!(s.pairs.iter().all(|p| p.source == PairSource::Inferred));
        assert_eq!(s.origin_map(), log.truth_origins());
    }
}
