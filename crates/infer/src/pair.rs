//! Message pairing from timing alone (the vPath-style heuristic).
//!
//! For every recv, nominate the send that produced it using only what
//! a passive observer knows: each channel is FIFO-ish, delivery takes
//! at least the channel's base latency, and delays cluster in a
//! bounded band. Nothing here may read [`whodunit_core::blackbox::CommTruth`];
//! the function signature takes bare events to enforce that at the
//! type level.
//!
//! # Algorithm
//!
//! Per channel:
//!
//! 1. **Delay-band estimation** (pass 1): index-align the time-sorted
//!    sends and recvs and take the min/max of the aligned deltas as the
//!    channel's plausible delay band `[min_delay, max_delay]`. With
//!    drops the alignment shifts toward *over*-estimating delay (a recv
//!    aligns with a send at or before its true sender), so the band
//!    stays a sound cover of clean traffic and merely widens under
//!    faults — which is the honest direction: wider band, lower
//!    confidence.
//! 2. **Window matching** (pass 2): a send `s` is *feasible* for recv
//!    `r` iff `min_delay <= r.at - s.at <= max_delay + slack`. The
//!    recv's **ambiguity** is the number of feasible sends — a pure
//!    function of the event log and the band, deliberately independent
//!    of matching state so that widening the band can only ever raise
//!    ambiguity (this monotonicity is what the proptest properties
//!    pin). The reported confidence is `1/ambiguity`.
//! 3. **Choice**: ambiguity 1 pairs the unique feasible send
//!    unconditionally (even if an earlier ambiguous recv already
//!    claimed it — under a sound band the unique feasible send *is*
//!    the true sender). Higher ambiguity pairs the earliest unclaimed
//!    feasible send (FIFO). No feasible send falls back to the
//!    earliest unclaimed send that is merely not-from-the-future, at
//!    confidence 0 — asserted, but admitting it has no timing support.

use std::collections::BTreeSet;
use std::collections::HashMap;
use whodunit_core::blackbox::{CommEvent, CommEventId, CommKind};

/// Pairing knobs.
#[derive(Clone, Copy, Debug, Default)]
pub struct PairingConfig {
    /// Extra cycles added to the top of every channel's estimated
    /// delay band. Models the observer's uncertainty about how much
    /// jitter a faulty network can add; widening it trades confidence
    /// for coverage.
    pub delay_slack: u64,
}

/// Where a pairing came from (hybrid mode mixes both).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PairSource {
    /// Exact: the receiving tier read the sender's synopsis chain.
    Synopsis,
    /// Inferred from timing/order alone.
    Inferred,
}

/// One asserted recv → send pairing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InferredPair {
    /// The recv event being attributed.
    pub recv: CommEventId,
    /// The send asserted to have produced it.
    pub send: CommEventId,
    /// `1e6 / ambiguity` — 1.0 means the timing window admitted
    /// exactly one sender; 0 means the pairing has no timing support
    /// (pure FIFO fallback).
    pub confidence_ppm: u32,
    /// Synopsis-exact or timing-inferred.
    pub source: PairSource,
}

/// The pairing pass output.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Pairing {
    /// Asserted pairings, sorted by recv id.
    pub pairs: Vec<InferredPair>,
    /// Recvs no send could be nominated for.
    pub unpaired_recvs: Vec<CommEventId>,
    /// Sends never claimed by any recv (dropped, crashed receiver, or
    /// displaced by a mispairing).
    pub unclaimed_sends: Vec<CommEventId>,
}

impl Pairing {
    /// Pairings at full confidence (ambiguity exactly 1).
    pub fn confident(&self) -> impl Iterator<Item = &InferredPair> {
        self.pairs.iter().filter(|p| p.confidence_ppm == 1_000_000)
    }

    /// The asserted pairing as a recv → (send, confidence) map.
    pub fn by_recv(&self) -> HashMap<CommEventId, (CommEventId, u32)> {
        self.pairs
            .iter()
            .map(|p| (p.recv, (p.send, p.confidence_ppm)))
            .collect()
    }
}

/// Events of one channel, canonically ordered.
struct ChannelView<'a> {
    sends: Vec<&'a CommEvent>,
    recvs: Vec<&'a CommEvent>,
}

/// Infers the recv → send pairing for an event log.
///
/// The result is a pure function of the event *set*: events are
/// canonically re-sorted by `(time, id)` first, so any permutation of
/// the input slice yields byte-identical output.
pub fn infer_pairs(events: &[CommEvent], cfg: &PairingConfig) -> Pairing {
    let mut by_chan: HashMap<u32, ChannelView<'_>> = HashMap::new();
    let mut sorted: Vec<&CommEvent> = events.iter().collect();
    sorted.sort_by_key(|e| (e.at, e.id));
    for e in &sorted {
        let v = by_chan.entry(e.chan).or_insert_with(|| ChannelView {
            sends: Vec::new(),
            recvs: Vec::new(),
        });
        match e.kind {
            CommKind::Send => v.sends.push(e),
            CommKind::Recv => v.recvs.push(e),
        }
    }

    let mut out = Pairing::default();
    let mut chans: Vec<u32> = by_chan.keys().copied().collect();
    chans.sort_unstable();
    for chan in chans {
        let v = &by_chan[&chan];
        match_channel(v, cfg, &mut out);
    }
    out.pairs.sort_by_key(|p| p.recv);
    out.unpaired_recvs.sort_unstable();
    out.unclaimed_sends.sort_unstable();
    out
}

fn match_channel(v: &ChannelView<'_>, cfg: &PairingConfig, out: &mut Pairing) {
    if v.recvs.is_empty() {
        out.unclaimed_sends.extend(v.sends.iter().map(|s| s.id));
        return;
    }
    if v.sends.is_empty() {
        out.unpaired_recvs.extend(v.recvs.iter().map(|r| r.id));
        return;
    }

    // Pass 1: index-aligned delay band.
    let n = v.sends.len().min(v.recvs.len());
    let mut min_delay = i64::MAX;
    let mut max_delay = i64::MIN;
    for i in 0..n {
        let d = v.recvs[i].at as i64 - v.sends[i].at as i64;
        min_delay = min_delay.min(d);
        max_delay = max_delay.max(d);
    }
    let min_delay = min_delay.max(0) as u64;
    let max_delay = (max_delay.max(0) as u64).max(min_delay) + cfg.delay_slack;

    // Pass 2: window matching. `unclaimed` indexes into `v.sends`,
    // which is (time, id)-sorted, so index order is arrival order.
    let mut unclaimed: BTreeSet<usize> = (0..v.sends.len()).collect();
    for r in &v.recvs {
        // Feasible sends form a contiguous index range [lo, hi).
        let earliest = r.at.saturating_sub(max_delay);
        let latest = r.at.saturating_sub(min_delay);
        let lo = v.sends.partition_point(|s| s.at < earliest);
        let hi = if r.at < min_delay {
            lo // nothing can have been sent "before time began"
        } else {
            v.sends.partition_point(|s| s.at <= latest)
        };
        let ambiguity = hi.saturating_sub(lo);
        let (choice, confidence_ppm) = if ambiguity == 1 {
            // A sound band admitting exactly one sender identifies it,
            // whether or not an earlier (ambiguous, possibly wrong)
            // recv already claimed it.
            (Some(lo), 1_000_000)
        } else if ambiguity > 1 {
            match unclaimed.range(lo..hi).next().copied() {
                Some(i) => (Some(i), (1_000_000 / ambiguity as u64) as u32),
                // Every feasible send already claimed: fall back to
                // FIFO over the past, with no timing support.
                None => (fifo_fallback(v, &unclaimed, r.at), 0),
            }
        } else {
            (fifo_fallback(v, &unclaimed, r.at), 0)
        };
        match choice {
            Some(i) => {
                unclaimed.remove(&i);
                out.pairs.push(InferredPair {
                    recv: r.id,
                    send: v.sends[i].id,
                    confidence_ppm,
                    source: PairSource::Inferred,
                });
            }
            None => out.unpaired_recvs.push(r.id),
        }
    }
    out.unclaimed_sends
        .extend(unclaimed.iter().map(|&i| v.sends[i].id));
}

/// Earliest unclaimed send not from the future.
fn fifo_fallback(v: &ChannelView<'_>, unclaimed: &BTreeSet<usize>, at: u64) -> Option<usize> {
    let hi = v.sends.partition_point(|s| s.at <= at);
    unclaimed.range(..hi).next().copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u64, at: u64, kind: CommKind, chan: u32) -> CommEvent {
        CommEvent {
            id,
            at,
            kind,
            chan,
            proc: if kind == CommKind::Send { 0 } else { 1 },
            thread: if kind == CommKind::Send { 0 } else { 1 },
            bytes: 100,
        }
    }

    #[test]
    fn constant_latency_pipeline_pairs_exactly() {
        // Three sends 1000 apart, constant delay 500: unambiguous.
        let mut events = Vec::new();
        for i in 0..3u64 {
            events.push(ev(2 * i, i * 1000, CommKind::Send, 0));
            events.push(ev(2 * i + 1, i * 1000 + 500, CommKind::Recv, 0));
        }
        let p = infer_pairs(&events, &PairingConfig::default());
        assert_eq!(p.pairs.len(), 3);
        for pair in &p.pairs {
            assert_eq!(pair.send + 1, pair.recv);
            assert_eq!(pair.confidence_ppm, 1_000_000);
        }
        assert!(p.unpaired_recvs.is_empty());
        assert!(p.unclaimed_sends.is_empty());
    }

    #[test]
    fn overlapping_sends_lower_confidence() {
        // Jittery delays (500, 520, 520) widen the learned band to
        // [500, 520]; the middle recv's window then admits two
        // senders and its confidence halves, while the edge recvs
        // stay unambiguous.
        let events = vec![
            ev(0, 0, CommKind::Send, 0),
            ev(1, 10, CommKind::Send, 0),
            ev(2, 20, CommKind::Send, 0),
            ev(3, 500, CommKind::Recv, 0),
            ev(4, 530, CommKind::Recv, 0),
            ev(5, 540, CommKind::Recv, 0),
        ];
        let p = infer_pairs(&events, &PairingConfig::default());
        assert_eq!(p.pairs.len(), 3);
        // FIFO still gets all three right; confidence reflects doubt.
        let got: Vec<_> = p
            .pairs
            .iter()
            .map(|x| (x.recv, x.send, x.confidence_ppm))
            .collect();
        assert_eq!(got, vec![(3, 0, 1_000_000), (4, 1, 500_000), (5, 2, 1_000_000)]);
    }

    #[test]
    fn dropped_send_stays_unclaimed() {
        // Send 1's message is dropped: only one recv arrives. The
        // band estimate aligns recv 0 with send 0 (delay 500).
        let events = vec![
            ev(0, 0, CommKind::Send, 0),
            ev(1, 2000, CommKind::Send, 0),
            ev(2, 500, CommKind::Recv, 0),
        ];
        let p = infer_pairs(&events, &PairingConfig::default());
        assert_eq!(p.pairs.len(), 1);
        assert_eq!((p.pairs[0].recv, p.pairs[0].send), (2, 0));
        assert_eq!(p.unclaimed_sends, vec![1]);
    }

    #[test]
    fn permutation_of_input_is_irrelevant() {
        let events = vec![
            ev(0, 0, CommKind::Send, 0),
            ev(1, 10, CommKind::Send, 0),
            ev(2, 500, CommKind::Recv, 0),
            ev(3, 510, CommKind::Recv, 0),
            ev(4, 20, CommKind::Send, 1),
            ev(5, 700, CommKind::Recv, 1),
        ];
        let a = infer_pairs(&events, &PairingConfig::default());
        let mut shuffled = events.clone();
        shuffled.reverse();
        shuffled.swap(1, 4);
        let b = infer_pairs(&shuffled, &PairingConfig::default());
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.unpaired_recvs, b.unpaired_recvs);
        assert_eq!(a.unclaimed_sends, b.unclaimed_sends);
    }

    #[test]
    fn slack_widens_the_band_and_lowers_confidence() {
        let events = vec![
            ev(0, 0, CommKind::Send, 0),
            ev(1, 400, CommKind::Send, 0),
            ev(2, 500, CommKind::Recv, 0),
            ev(3, 900, CommKind::Recv, 0),
        ];
        let tight = infer_pairs(&events, &PairingConfig { delay_slack: 0 });
        assert!(tight.pairs.iter().all(|p| p.confidence_ppm == 1_000_000));
        let loose = infer_pairs(&events, &PairingConfig { delay_slack: 400 });
        // Same pairing, weaker conviction: the second recv's widened
        // window now admits both senders.
        assert_eq!(
            tight
                .pairs
                .iter()
                .map(|p| (p.recv, p.send))
                .collect::<Vec<_>>(),
            loose
                .pairs
                .iter()
                .map(|p| (p.recv, p.send))
                .collect::<Vec<_>>()
        );
        let confident = |pp: &Pairing| pp.confident().count();
        assert!(confident(&loose) < confident(&tight));
        assert_eq!(loose.pairs.last().unwrap().confidence_ppm, 500_000);
    }
}
