//! Black-box inference stitching.
//!
//! Whodunit's synopsis machinery gives exact transaction paths —
//! *when every tier cooperates*. This crate is the other half of the
//! deployment story: tiers that will not (or cannot) carry synopses
//! are profiled from the outside, using only what a passive network
//! tap records — per-channel send/recv timestamps, endpoints, and
//! per-thread event order. The approach follows the black-box
//! tracing line of work (vPath-style timing windows plus the
//! synchronous-worker nesting assumption): nominate a producing send
//! for every observed recv, propagate transaction roots along
//! per-thread causal order, and attach an honest per-edge confidence
//! instead of pretending certainty.
//!
//! The crate splits into three layers, in strict dependency order:
//!
//! * [`pair`] — recv → send nomination from timing alone. The core
//!   quantity is a recv's **ambiguity**: how many sends fall inside
//!   its feasible delay window. Confidence is `1/ambiguity`, and the
//!   ambiguity-1 subset is the provably-correct core that the
//!   property tests pin (widening the window can only shrink it).
//! * [`stitch`] — the nesting walk: origin-tier classification,
//!   root minting, per-thread inheritance, proc-graph edges. Also
//!   [`stitch::hybrid_stitch`], where cooperating tiers contribute
//!   exact synopsis pairings and the opaque remainder is inferred —
//!   the degradation between full Whodunit and full black-box is a
//!   dial, not a cliff.
//! * [`score`] — precision/recall/F1 against simulator ground truth,
//!   in the integer ppm arithmetic the core oracle
//!   ([`whodunit_core::oracle::check_inference`]) recomputes.
//!
//! Separation of concerns is enforced by signatures: everything under
//! [`pair`] and [`stitch::infer_stitch`] takes bare
//! [`CommEvent`](whodunit_core::blackbox::CommEvent)s and *cannot*
//! read ground truth; only [`score`] (the referee) and
//! [`stitch::hybrid_stitch`] (where truth legitimately models the
//! synopsis riding a delivered message) see a
//! [`CommLog`](whodunit_core::blackbox::CommLog)'s truth tables.

pub mod pair;
pub mod score;
pub mod stitch;

pub use pair::{infer_pairs, InferredPair, PairSource, Pairing, PairingConfig};
pub use score::{evidence, score_confident_pairs, score_origins, score_pairs};
pub use stitch::{hybrid_stitch, infer_stitch, InferredEdge, InferredOrigin, InferredStitch};
