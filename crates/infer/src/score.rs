//! Scoring against simulator ground truth.
//!
//! The inference side of the house never sees truth; this module is
//! where the two meet. It produces [`InferenceScore`] values whose
//! reported rates are *derived* from the counts with the same integer
//! ppm arithmetic [`whodunit_core::oracle::check_inference`]
//! recomputes — so an honest scorer passes the oracle by
//! construction, and any hand-tuned number trips it.

use std::collections::HashMap;
use whodunit_core::blackbox::{CommEventId, CommLog};
use whodunit_core::oracle::{f1_ppm, ppm, InferenceEvidence, InferenceScore};

use crate::stitch::InferredStitch;

/// Scores an asserted recv → X map against the true recv → X map.
fn score_map(
    asserted: &HashMap<CommEventId, CommEventId>,
    truth: &HashMap<CommEventId, CommEventId>,
) -> InferenceScore {
    let correct = asserted
        .iter()
        .filter(|(recv, x)| truth.get(recv) == Some(x))
        .count() as u64;
    let s = InferenceScore {
        asserted: asserted.len() as u64,
        truth: truth.len() as u64,
        correct,
        ..Default::default()
    };
    finish(s)
}

fn finish(mut s: InferenceScore) -> InferenceScore {
    s.reported_precision_ppm = ppm(s.correct, s.asserted);
    s.reported_recall_ppm = ppm(s.correct, s.truth);
    s.reported_f1_ppm = f1_ppm(s.reported_precision_ppm, s.reported_recall_ppm);
    s
}

/// Scores the pairing assertions of a stitch against truth.
pub fn score_pairs(stitch: &InferredStitch, log: &CommLog) -> InferenceScore {
    score_map(&stitch.pair_map(), &log.truth_pairs())
}

/// Scores the origin assertions of a stitch against truth.
pub fn score_origins(stitch: &InferredStitch, log: &CommLog) -> InferenceScore {
    score_map(&stitch.origin_map(), &log.truth_origins())
}

/// Scores only the full-confidence pairings (ambiguity exactly 1).
/// Recall is still measured against *all* true pairs — this is the
/// "how much of the workload can we attribute with certainty" view,
/// and the quantity whose precision the monotonicity proptests pin.
pub fn score_confident_pairs(stitch: &InferredStitch, log: &CommLog) -> InferenceScore {
    let confident: HashMap<CommEventId, CommEventId> = stitch
        .pairs
        .iter()
        .filter(|p| p.confidence_ppm == 1_000_000)
        .map(|p| (p.recv, p.send))
        .collect();
    score_map(&confident, &log.truth_pairs())
}

/// Bundles pair and origin scores for the oracle.
pub fn evidence(stitch: &InferredStitch, log: &CommLog) -> InferenceEvidence {
    InferenceEvidence {
        pairs: score_pairs(stitch, log),
        origins: score_origins(stitch, log),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::PairingConfig;
    use crate::stitch::infer_stitch;
    use whodunit_core::blackbox::CommRecorder;
    use whodunit_core::oracle::check_inference;

    fn pipeline_log() -> CommLog {
        let mut rec = CommRecorder::default();
        rec.mark_origin_proc(0);
        for i in 0..4u64 {
            let t = i * 5_000;
            let tag = rec.on_send(t, 0, 0, 0, 64);
            rec.on_recv(t + 300, 0, 1, 0, 64, tag);
            let tag = rec.on_send(t + 400, 1, 1, 0, 64);
            rec.on_recv(t + 700, 1, 2, 0, 64, tag);
        }
        rec.finish()
    }

    #[test]
    fn clean_pipeline_scores_perfect_and_passes_oracle() {
        let log = pipeline_log();
        let s = infer_stitch(&log.events, &PairingConfig::default());
        let ev = evidence(&s, &log);
        assert_eq!(ev.pairs.reported_f1_ppm, 1_000_000);
        assert_eq!(ev.origins.reported_f1_ppm, 1_000_000);
        assert!(check_inference(&ev).is_empty());
    }

    #[test]
    fn confident_subscore_never_beats_truth() {
        let log = pipeline_log();
        let s = infer_stitch(&log.events, &PairingConfig::default());
        let conf = score_confident_pairs(&s, &log);
        assert!(conf.correct <= conf.truth);
        assert!(conf.correct <= conf.asserted);
        assert!(check_inference(&InferenceEvidence {
            pairs: conf,
            origins: score_origins(&s, &log),
        })
        .is_empty());
    }
}
