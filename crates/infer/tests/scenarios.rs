//! End-to-end inference scenarios: the TPC-W inference slice and the
//! topology zoo, stitched under the visibility ladder and scored
//! against simulator ground truth.
//!
//! The `infer` bench bin sweeps the full matrix with hard F1 gates;
//! this suite holds the same invariants on shortened runs so `cargo
//! test` exercises the whole pipeline — simulator → comm log →
//! stitch → oracle — on every change:
//!
//! - clean logs are recovered at F1 ≥ 0.95 even fully black-box;
//! - the certain (ambiguity-1) subset keeps exact precision 1.0, with
//!   or without fault storms;
//! - more visibility never hurts: hybrid origins F1 ≥ black-box, and
//!   full cooperation reproduces the truth maps exactly;
//! - the accounting oracle passes on every row;
//! - the comm log is observation-only: enabling it leaves the profile
//!   dumps bit-identical.

use whodunit_apps::tpcw::{run_tpcw, TpcwConfig};
use whodunit_apps::zoo::{run_zoo, Topology, ZooConfig};
use whodunit_bench::matrix;
use whodunit_core::blackbox::{CommLog, TierVisibility};
use whodunit_core::cost::CPU_HZ;
use whodunit_core::oracle::check_inference;
use whodunit_infer::{
    evidence, hybrid_stitch, infer_stitch, score_confident_pairs, score_origins, score_pairs,
    PairingConfig,
};

/// The bench bin's clean-scenario F1 floor, ppm.
const GATE_F1_PPM: u64 = 950_000;

/// Shrinks a slice config to test size (the bench smoke dimensions).
fn shrink(mut cfg: TpcwConfig) -> TpcwConfig {
    cfg.clients = 8;
    cfg.duration = 12 * CPU_HZ;
    cfg.warmup = 3 * CPU_HZ;
    cfg
}

/// Black-box + hybrid + full scores for one log; asserts the shared
/// invariants (oracle clean, certain precision exact, full == truth)
/// and returns (blackbox origins F1, hybrid origins F1).
fn visibility_ladder(label: &str, log: &CommLog) -> (u64, u64) {
    let pc = PairingConfig::default();
    let procs = log.events.iter().map(|e| e.proc).max().unwrap_or(0) as usize + 1;

    let bb = infer_stitch(&log.events, &pc);
    assert!(
        check_inference(&evidence(&bb, log)).is_empty(),
        "{label}: blackbox oracle violation"
    );
    assert_eq!(
        score_confident_pairs(&bb, log).reported_precision_ppm,
        1_000_000,
        "{label}: certain subset lost exact precision"
    );

    let mut vis = vec![TierVisibility::Cooperating; procs];
    vis[1.min(procs - 1)] = TierVisibility::Opaque;
    let hy = hybrid_stitch(log, &vis, &pc);
    assert!(
        check_inference(&evidence(&hy, log)).is_empty(),
        "{label}: hybrid oracle violation"
    );

    let full = hybrid_stitch(log, &vec![TierVisibility::Cooperating; procs], &pc);
    assert_eq!(
        full.pair_map(),
        log.truth_pairs(),
        "{label}: full visibility diverged from truth pairs"
    );
    assert_eq!(
        full.origin_map(),
        log.truth_origins(),
        "{label}: full visibility diverged from truth origins"
    );

    (
        score_origins(&bb, log).reported_f1_ppm,
        score_origins(&hy, log).reported_f1_ppm,
    )
}

#[test]
fn tpcw_clean_slice_recovers_blackbox() {
    let (label, cfg) = matrix::inference_slice()
        .into_iter()
        .find(|(l, _)| l == "tpcw/clean/s1")
        .expect("slice carries the clean s1 scenario");
    let log = run_tpcw(shrink(cfg))
        .comm
        .expect("inference slice records comm logs");
    let pc = PairingConfig::default();
    let s = infer_stitch(&log.events, &pc);
    assert!(
        score_pairs(&s, &log).reported_f1_ppm >= GATE_F1_PPM,
        "{label}: clean pairs F1 under gate"
    );
    assert!(
        score_origins(&s, &log).reported_f1_ppm >= GATE_F1_PPM,
        "{label}: clean origins F1 under gate"
    );
    visibility_ladder(&label, &log);
}

#[test]
fn tpcw_faulty_slice_degrades_soundly() {
    let (label, cfg) = matrix::inference_slice()
        .into_iter()
        .find(|(l, _)| l == "tpcw/faulty/s1")
        .expect("slice carries the faulty s1 scenario");
    let log = run_tpcw(shrink(cfg))
        .comm
        .expect("inference slice records comm logs");
    // No accuracy floor under a fault storm — only soundness: the
    // oracle stays clean, certainty stays exact, and cooperation can
    // only help.
    let (bb_f1, hy_f1) = visibility_ladder(&label, &log);
    assert!(
        hy_f1 >= bb_f1,
        "{label}: adding a cooperating tier reduced origins F1 ({hy_f1} < {bb_f1})"
    );
}

#[test]
fn zoo_topologies_hold_the_ladder() {
    for t in Topology::ALL {
        let cfg = ZooConfig {
            topology: t,
            seed: 3,
            clients: 8,
            duration: 12 * CPU_HZ,
            warmup: 3 * CPU_HZ,
            comm_log: true,
            ..ZooConfig::default()
        };
        let report = run_zoo(&cfg);
        let log = report.comm.expect("zoo records comm logs when asked");
        let pc = PairingConfig::default();
        let s = infer_stitch(&log.events, &pc);
        assert!(
            score_pairs(&s, &log).reported_f1_ppm >= GATE_F1_PPM,
            "{}: clean pairs F1 under gate",
            t.name()
        );
        assert!(
            score_origins(&s, &log).reported_f1_ppm >= GATE_F1_PPM,
            "{}: clean origins F1 under gate",
            t.name()
        );
        let (bb_f1, hy_f1) = visibility_ladder(t.name(), &log);
        assert!(
            hy_f1 >= bb_f1,
            "{}: adding a cooperating tier reduced origins F1",
            t.name()
        );
    }
}

#[test]
fn comm_log_is_observation_only() {
    let (_, cfg) = matrix::inference_slice()
        .into_iter()
        .find(|(l, _)| l == "tpcw/clean/s2")
        .expect("slice carries the clean s2 scenario");
    let on = run_tpcw(shrink(cfg.clone()));
    let off = run_tpcw(shrink(TpcwConfig {
        comm_log: false,
        ..cfg
    }));
    assert!(on.comm.is_some() && off.comm.is_none());
    assert_eq!(
        on.dumps, off.dumps,
        "recording the comm log perturbed the profile dumps"
    );
    assert_eq!(on.compute_truth, off.compute_truth);
}
