//! MySQL-like database server (§8.1, §8.4, Table 1, Figs 11–12).
//!
//! A pool of executor threads serves SQL requests arriving on a
//! channel. Each TPC-W interaction maps to one aggregate query with a
//! CPU cost and a set of tables it reads/writes. Locking follows the
//! storage engine:
//!
//! - **MyISAM** ([`Engine::MyIsam`]): table-wide locks — readers share,
//!   a writer excludes everyone. `AdminConfirm`'s expensive update of
//!   the read-hot `item` table is the §8.4 crosstalk headline.
//! - **InnoDB** ([`Engine::InnoDb`]): row-level locking — readers take
//!   no locks (MVCC) and writers lock one row stripe, which is the
//!   paper's Figure 11 optimization.
//!
//! Executors also bump a lock-protected shared statistics counter on
//! the instruction emulator after every query; §8.1 validates that
//! Whodunit detects this counter but correctly infers *no* transaction
//! flow in MySQL.
//!
//! Query costs are calibrated so the browsing mix averages ≈50 ms of
//! DB CPU per interaction: a single-core database then saturates at
//! ≈19.7 interactions/s = 1184/min, the paper's original TPC-W peak.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use whodunit_core::cost::ms_to_cycles;
use whodunit_core::frame::FrameId;
use whodunit_core::ids::{ChanId, LockId, LockMode, ThreadId};
use whodunit_core::rt::Runtime;
use whodunit_sim::{Cycles, Msg, Op, Sim, ThreadBody, ThreadCx, Wake};
use whodunit_vm::programs::SharedCounter;
use whodunit_vm::{Cpu, CsEmulator, ExecMode, GuestMem, TranslationCache};
use whodunit_workload::Interaction;

/// The TPC-W tables the query model touches.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Table {
    /// Books: read by almost everything, updated by `AdminConfirm`.
    Item,
    /// Book authors.
    Author,
    /// Orders master rows.
    Orders,
    /// Order line items (scanned by `BestSellers`).
    OrderLine,
    /// Customers.
    Customer,
    /// Credit-card transactions.
    CcXacts,
    /// Shopping carts.
    ShoppingCart,
}

impl Table {
    /// All tables in canonical (deadlock-free acquisition) order.
    pub const ALL: [Table; 7] = [
        Table::Item,
        Table::Author,
        Table::Orders,
        Table::OrderLine,
        Table::Customer,
        Table::CcXacts,
        Table::ShoppingCart,
    ];
}

/// Storage-engine lock granularity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Engine {
    /// Table-wide locks (the paper's original configuration).
    MyIsam,
    /// Row-stripe locks for writers, lock-free MVCC reads (the
    /// Figure 11 optimization).
    InnoDb,
}

/// Row-lock stripes per table under [`Engine::InnoDb`].
pub const ROW_STRIPES: u64 = 64;

/// One interaction's aggregate query, in two phases mirroring how
/// MySQL statements lock:
///
/// 1. a *read phase* (SELECTs, sorts, temp tables) under shared table
///    locks (MyISAM) or no locks at all (InnoDB MVCC), and
/// 2. an optional *write phase* (UPDATE/INSERT statements) under
///    exclusive table locks (MyISAM) or per-row stripe locks (InnoDB).
///
/// `AdminConfirm` is the paper's example: its expensive sort runs in
/// the read phase; only the single-row `item` update needs the
/// exclusive lock — which under MyISAM must wait for every concurrent
/// reader of the read-hot `item` table (the §8.4 crosstalk headline),
/// and under InnoDB touches one row.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// SQL frame name (appears in MySQL's call paths).
    pub frame: &'static str,
    /// Read-phase CPU cost in cycles.
    pub read_cost: Cycles,
    /// Tables read.
    pub reads: &'static [Table],
    /// Write-phase CPU cost in cycles (0 = no write phase).
    pub write_cost: Cycles,
    /// Tables written.
    pub writes: &'static [Table],
}

impl QuerySpec {
    /// Total CPU cost of both phases.
    pub fn cost(&self) -> Cycles {
        self.read_cost + self.write_cost
    }
}

/// The query model: what each interaction costs the database.
///
/// Costs are derived from Table 1's CPU shares divided by the browsing
/// mix frequencies, normalized so the mix averages ≈50 ms (see module
/// docs).
pub fn query_for(i: Interaction) -> QuerySpec {
    use Table::{Author, CcXacts, Customer, Item, OrderLine, Orders};
    const CART: Table = Table::ShoppingCart;
    // (frame, read ms, reads, write ms, writes); costs are derived from
    // Table 1's CPU shares over the browsing-mix frequencies (module
    // docs).
    let (frame, read_ms, reads, write_ms, writes): (
        _,
        f64,
        &'static [Table],
        f64,
        &'static [Table],
    ) = match i {
        Interaction::Home => ("sql_home", 1.0, &[Customer, Item][..], 0.0, &[][..]),
        Interaction::NewProducts => ("sql_new_products", 15.0, &[Item, Author][..], 0.0, &[][..]),
        Interaction::BestSellers => (
            "sql_best_sellers",
            237.0,
            &[Item, Author, Orders, OrderLine][..],
            0.0,
            &[][..],
        ),
        Interaction::ProductDetail => ("sql_get_book", 0.5, &[Item, Author][..], 0.0, &[][..]),
        Interaction::SearchRequest => ("sql_search_form", 0.68, &[Item][..], 0.0, &[][..]),
        Interaction::SearchResult => ("sql_do_search", 199.0, &[Item, Author][..], 0.0, &[][..]),
        Interaction::ShoppingCart => ("sql_do_cart", 1.3, &[Item][..], 0.5, &[CART][..]),
        Interaction::CustomerRegistration => {
            ("sql_get_customer", 0.1, &[Customer][..], 0.0, &[][..])
        }
        Interaction::BuyRequest => ("sql_buy_request", 1.5, &[Customer][..], 0.5, &[CART][..]),
        Interaction::BuyConfirm => (
            "sql_buy_confirm",
            1.4,
            &[Item, Customer][..],
            1.5,
            &[Orders, OrderLine, CcXacts][..],
        ),
        Interaction::OrderInquiry => ("sql_order_inquiry", 0.2, &[Customer][..], 0.0, &[][..]),
        Interaction::OrderDisplay => (
            "sql_get_most_recent_order",
            2.0,
            &[Customer, Orders, OrderLine][..],
            0.0,
            &[][..],
        ),
        Interaction::AdminRequest => ("sql_admin_request", 0.3, &[Item][..], 0.0, &[][..]),
        Interaction::AdminConfirm => (
            "sql_admin_update",
            458.0,
            &[Item, Orders, OrderLine][..],
            2.0,
            &[Item][..],
        ),
    };
    QuerySpec {
        frame,
        read_cost: ms_to_cycles(read_ms),
        reads,
        write_cost: ms_to_cycles(write_ms),
        writes,
    }
}

/// Internal calls per query cycle (drives the gprof baseline): one
/// call per ~700 cycles, typical of row-at-a-time executor code.
pub const CYCLES_PER_CALL: u64 = 700;

/// A request to the database.
#[derive(Debug)]
pub struct DbReq {
    /// Which interaction's query to run.
    pub interaction: Interaction,
    /// Row selector for writes (stripes under InnoDB).
    pub row: u64,
    /// Caller-chosen token echoed in the [`DbReply`]; lets a caller
    /// that timed out and resent tell a late reply from the current
    /// one.
    pub tag: u64,
    /// Channel to send the result on.
    pub reply: ChanId,
}

/// A lock plan: `(lock, mode)` pairs in acquisition order.
type LockPlan = Vec<(LockId, LockMode)>;

/// The lock plans of a query's two phases, in acquisition order.
fn lock_plans(shared: &DbShared, q: &QuerySpec, row: u64) -> (LockPlan, LockPlan) {
    match shared.engine {
        Engine::MyIsam => {
            // Read phase: shared table locks. Write phase: exclusive
            // table locks.
            let mut reads: Vec<(Table, LockMode)> =
                q.reads.iter().map(|&t| (t, LockMode::Shared)).collect();
            reads.sort_by_key(|&(t, _)| t);
            let mut writes: Vec<(Table, LockMode)> =
                q.writes.iter().map(|&t| (t, LockMode::Exclusive)).collect();
            writes.sort_by_key(|&(t, _)| t);
            (
                reads
                    .into_iter()
                    .map(|(t, m)| (shared.table_lock(t, 0), m))
                    .collect(),
                writes
                    .into_iter()
                    .map(|(t, m)| (shared.table_lock(t, 0), m))
                    .collect(),
            )
        }
        Engine::InnoDb => {
            // MVCC: reads take no locks; writes lock one row stripe.
            let mut w: Vec<(LockId, LockMode)> = q
                .writes
                .iter()
                .map(|&t| (shared.table_lock(t, row % ROW_STRIPES), LockMode::Exclusive))
                .collect();
            w.sort_by_key(|&(l, _)| l);
            (Vec::new(), w)
        }
    }
}

/// Shared database state.
pub struct DbShared {
    engine: Engine,
    /// `(table, stripe)` → lock. Stripe 0 is the table lock under
    /// MyISAM.
    locks: HashMap<(Table, u64), LockId>,
    counter: SharedCounter,
    counter_lock: LockId,
    mem: GuestMem,
    tcache: TranslationCache,
    emu: CsEmulator,
    /// Queries served, per interaction.
    pub served: HashMap<Interaction, u64>,
    /// Total queries served.
    pub total: u64,
}

impl DbShared {
    fn table_lock(&self, t: Table, stripe: u64) -> LockId {
        self.locks[&(t, stripe)]
    }

    /// Runs the shared statistics counter bump (§8.1) for `t`.
    fn bump_counter(
        &mut self,
        rt: &Rc<RefCell<dyn Runtime>>,
        t: ThreadId,
        stack: &[FrameId],
    ) -> Cycles {
        let mut cpu = Cpu::new(t);
        let emulate = rt.borrow().wants_emulation(self.counter_lock);
        let stats = if emulate {
            let mut rtb = rt.borrow_mut();
            self.emu.run(
                &self.counter.inc,
                &mut cpu,
                &mut self.mem,
                ExecMode::Emulated {
                    tcache: &mut self.tcache,
                },
                &mut |e| rtb.on_mem_event(t, stack, e),
            )
        } else {
            self.emu.run(
                &self.counter.inc,
                &mut cpu,
                &mut self.mem,
                ExecMode::Direct,
                &mut |_| {},
            )
        };
        stats.cycles
    }
}

/// Configuration of the database tier.
#[derive(Clone, Copy, Debug)]
pub struct DbConfig {
    /// Storage engine (lock granularity).
    pub engine: Engine,
    /// Executor threads.
    pub executors: u32,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            engine: Engine::MyIsam,
            executors: 64,
        }
    }
}

/// Handles returned by [`build_dbserver`].
pub struct DbHandles {
    /// The request channel queries are sent to.
    pub req_chan: ChanId,
    /// Shared state (stats, engine).
    pub shared: Rc<RefCell<DbShared>>,
    /// The statistics-counter lock (for §8.1 assertions).
    pub counter_lock: LockId,
    /// The table locks, for crosstalk inspection.
    pub table_locks: HashMap<(Table, u64), LockId>,
}

/// One locked compute phase: its lock plan and cost.
type Stage = (Vec<(LockId, LockMode)>, Cycles);

enum EState {
    Init,
    WaitReq,
    /// Acquiring locks of the current stage.
    Locking {
        req: Option<DbReq>,
        stages: std::collections::VecDeque<Stage>,
        plan: Vec<(LockId, LockMode)>,
        next: usize,
        cost: Cycles,
    },
    /// Releasing locks of the finished stage.
    Unlocking {
        req: Option<DbReq>,
        stages: std::collections::VecDeque<Stage>,
        plan: Vec<(LockId, LockMode)>,
        next: usize,
    },
    Counter {
        req: Option<DbReq>,
    },
    CounterDone {
        req: Option<DbReq>,
    },
    Reply {
        req: Option<DbReq>,
    },
    Sent,
}

struct Executor {
    shared: Rc<RefCell<DbShared>>,
    req_chan: ChanId,
    f_main: FrameId,
    f_frames: HashMap<Interaction, FrameId>,
    f_call: FrameId,
    state: EState,
}

impl ThreadBody for Executor {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match std::mem::replace(&mut self.state, EState::WaitReq) {
            EState::Init => {
                cx.push_frame(self.f_main);
                self.state = EState::WaitReq;
                Op::Recv(self.req_chan)
            }
            EState::WaitReq => {
                let Wake::Received(msg) = wake else {
                    unreachable!("executor waits for requests");
                };
                let req = msg.take::<DbReq>();
                let q = query_for(req.interaction);
                cx.push_frame(self.f_frames[&req.interaction]);
                cx.count_calls(self.f_call, q.cost() / CYCLES_PER_CALL);
                let (rplan, wplan) = lock_plans(&self.shared.borrow(), &q, req.row);
                let mut stages = std::collections::VecDeque::new();
                stages.push_back((rplan, q.read_cost));
                if q.write_cost > 0 || !wplan.is_empty() {
                    stages.push_back((wplan, q.write_cost));
                }
                self.next_stage(Some(req), stages)
            }
            EState::Locking {
                req,
                stages,
                plan,
                next,
                cost,
            } => self.step_locking(req, stages, plan, next, cost),
            EState::Unlocking {
                req,
                stages,
                plan,
                next,
            } => self.step_unlocking(req, stages, plan, next),
            EState::Counter { req } => {
                let rt = cx.runtime();
                let stack: Vec<FrameId> = cx.stack().to_vec();
                let cycles = self.shared.borrow_mut().bump_counter(&rt, cx.me(), &stack);
                self.state = EState::CounterDone { req };
                Op::Compute(cycles)
            }
            EState::CounterDone { req } => {
                let lock = self.shared.borrow().counter_lock;
                self.state = EState::Reply { req };
                Op::Unlock(lock)
            }
            EState::Reply { req } => {
                let req = req.expect("request present");
                {
                    let mut sh = self.shared.borrow_mut();
                    *sh.served.entry(req.interaction).or_insert(0) += 1;
                    sh.total += 1;
                }
                cx.pop_frame();
                self.state = EState::Sent;
                Op::Send(req.reply, Msg::new(DbReply { tag: req.tag }, 2000))
            }
            EState::Sent => {
                self.state = EState::WaitReq;
                Op::Recv(self.req_chan)
            }
        }
    }
}

impl Executor {
    /// Begins the next stage of the query, or moves on to the shared
    /// counter once all stages are done.
    fn next_stage(
        &mut self,
        req: Option<DbReq>,
        mut stages: std::collections::VecDeque<Stage>,
    ) -> Op {
        match stages.pop_front() {
            Some((plan, cost)) => self.step_locking(req, stages, plan, 0, cost),
            None => {
                self.state = EState::Counter { req };
                let lock = self.shared.borrow().counter_lock;
                Op::Lock(lock, LockMode::Exclusive)
            }
        }
    }

    /// Acquires the next lock of the current stage, or computes.
    fn step_locking(
        &mut self,
        req: Option<DbReq>,
        stages: std::collections::VecDeque<Stage>,
        plan: Vec<(LockId, LockMode)>,
        next: usize,
        cost: Cycles,
    ) -> Op {
        if next < plan.len() {
            let (l, m) = plan[next];
            self.state = EState::Locking {
                req,
                stages,
                plan,
                next: next + 1,
                cost,
            };
            Op::Lock(l, m)
        } else {
            self.state = EState::Unlocking {
                req,
                stages,
                plan,
                next: 0,
            };
            Op::Compute(cost)
        }
    }

    /// Releases the current stage's locks in reverse order, then moves
    /// to the next stage.
    fn step_unlocking(
        &mut self,
        req: Option<DbReq>,
        stages: std::collections::VecDeque<Stage>,
        plan: Vec<(LockId, LockMode)>,
        next: usize,
    ) -> Op {
        if next < plan.len() {
            let (l, _) = plan[plan.len() - 1 - next];
            self.state = EState::Unlocking {
                req,
                stages,
                plan,
                next: next + 1,
            };
            Op::Unlock(l)
        } else {
            self.next_stage(req, stages)
        }
    }
}

/// The database's reply payload.
#[derive(Debug)]
pub struct DbReply {
    /// The request's [`DbReq::tag`], echoed back.
    pub tag: u64,
}

/// Builds the database tier into `sim` on `machine`, profiled by the
/// process runtime already registered as `proc`.
pub fn build_dbserver(
    sim: &mut Sim,
    proc: whodunit_core::ids::ProcId,
    machine: whodunit_sim::MachineId,
    cfg: DbConfig,
) -> DbHandles {
    let mut locks = HashMap::new();
    for &t in &Table::ALL {
        match cfg.engine {
            Engine::MyIsam => {
                locks.insert((t, 0), sim.add_lock());
            }
            Engine::InnoDb => {
                for s in 0..ROW_STRIPES {
                    locks.insert((t, s), sim.add_lock());
                }
            }
        }
    }
    let counter_lock = sim.add_lock();
    let counter = SharedCounter::new(counter_lock.0, 0);
    let shared = Rc::new(RefCell::new(DbShared {
        engine: cfg.engine,
        locks: locks.clone(),
        counter,
        counter_lock,
        mem: GuestMem::new(16),
        tcache: TranslationCache::new(),
        emu: CsEmulator::default(),
        served: HashMap::new(),
        total: 0,
    }));
    let req_chan = sim.add_channel(240_000, 20);
    let f_main = sim.frame("mysql_do_command");
    let f_call = sim.frame("mysql_row_ops");
    let mut f_frames = HashMap::new();
    for it in Interaction::ALL {
        f_frames.insert(it, sim.frame(query_for(it).frame));
    }
    for i in 0..cfg.executors {
        sim.spawn(
            proc,
            machine,
            &format!("db_exec{i}"),
            Box::new(Executor {
                shared: shared.clone(),
                req_chan,
                f_main,
                f_frames: f_frames.clone(),
                f_call,
                state: EState::Init,
            }),
        );
    }
    DbHandles {
        req_chan,
        shared,
        counter_lock,
        table_locks: locks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whodunit_core::cost::ms_to_cycles;

    fn shared(engine: Engine) -> DbShared {
        let mut locks = HashMap::new();
        let mut next = 0u32;
        for &t in &Table::ALL {
            match engine {
                Engine::MyIsam => {
                    locks.insert((t, 0), LockId(next));
                    next += 1;
                }
                Engine::InnoDb => {
                    for s in 0..ROW_STRIPES {
                        locks.insert((t, s), LockId(next));
                        next += 1;
                    }
                }
            }
        }
        DbShared {
            engine,
            locks,
            counter: SharedCounter::new(999, 0),
            counter_lock: LockId(999),
            mem: GuestMem::new(16),
            tcache: TranslationCache::new(),
            emu: CsEmulator::default(),
            served: HashMap::new(),
            total: 0,
        }
    }

    #[test]
    fn browsing_mix_average_cost_is_about_50ms() {
        // The calibration invariant behind Figure 12's 1184/min peak.
        let avg_ms: f64 = Interaction::ALL
            .iter()
            .map(|&i| {
                let q = query_for(i);
                i.browsing_pct() / 100.0 * (q.cost() as f64 / ms_to_cycles(1.0) as f64)
            })
            .sum();
        assert!((45.0..56.0).contains(&avg_ms), "avg DB cost {avg_ms:.1} ms");
    }

    #[test]
    fn admin_confirm_writes_item_in_a_short_phase() {
        let q = query_for(Interaction::AdminConfirm);
        assert!(q.writes.contains(&Table::Item));
        assert!(q.write_cost < q.read_cost / 50, "write phase is short");
        assert!(q.reads.contains(&Table::Item), "sort reads item too");
    }

    #[test]
    fn myisam_plans_use_table_locks() {
        let sh = shared(Engine::MyIsam);
        let q = query_for(Interaction::AdminConfirm);
        let (reads, writes) = lock_plans(&sh, &q, 17);
        assert_eq!(reads.len(), q.reads.len());
        assert!(reads.iter().all(|&(_, m)| m == LockMode::Shared));
        assert_eq!(writes.len(), 1);
        assert_eq!(
            writes[0],
            (sh.table_lock(Table::Item, 0), LockMode::Exclusive)
        );
    }

    #[test]
    fn innodb_plans_skip_read_locks_and_stripe_writes() {
        let sh = shared(Engine::InnoDb);
        let q = query_for(Interaction::AdminConfirm);
        let (reads, writes) = lock_plans(&sh, &q, 17);
        assert!(reads.is_empty(), "MVCC reads take no locks");
        assert_eq!(writes.len(), 1);
        assert_eq!(
            writes[0],
            (
                sh.table_lock(Table::Item, 17 % ROW_STRIPES),
                LockMode::Exclusive
            )
        );
        // Different rows map to different stripes (usually).
        let (_, w2) = lock_plans(&sh, &q, 18);
        assert_ne!(writes[0].0, w2[0].0);
    }

    #[test]
    fn lock_plans_are_sorted_for_deadlock_freedom() {
        let sh = shared(Engine::MyIsam);
        for &i in &Interaction::ALL {
            let q = query_for(i);
            let (reads, writes) = lock_plans(&sh, &q, 3);
            let sorted = |v: &[(LockId, LockMode)]| v.windows(2).all(|w| w[0].0 <= w[1].0);
            assert!(sorted(&reads), "{i:?} reads unsorted");
            assert!(sorted(&writes), "{i:?} writes unsorted");
        }
    }

    #[test]
    fn bestsellers_reads_order_line() {
        // The table BuyConfirm writes — the source of its crosstalk.
        let q = query_for(Interaction::BestSellers);
        assert!(q.reads.contains(&Table::OrderLine));
        let bc = query_for(Interaction::BuyConfirm);
        assert!(bc.writes.contains(&Table::OrderLine));
    }
}
