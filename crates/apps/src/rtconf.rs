//! Profiler selection shared by all app harnesses.
//!
//! Table 2 compares four configurations — no profiling, csprof,
//! Whodunit, gprof — that differ only in the runtime installed in each
//! process. [`RtKind`] names them; [`make_runtime`] builds the runtime
//! for one process.

use std::cell::RefCell;
use std::rc::Rc;
use whodunit_baselines::{CsprofRuntime, GprofRuntime, TmonRuntime};
use whodunit_core::frame::SharedFrameTable;
use whodunit_core::ids::ProcId;
use whodunit_core::profiler::{Whodunit, WhodunitConfig};
use whodunit_core::rt::{NullRuntime, Runtime};

/// Which profiler to install (Table 2's four columns).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RtKind {
    /// No profiling.
    None,
    /// csprof-style sampling only.
    Csprof,
    /// Full Whodunit transactional profiling.
    Whodunit,
    /// gprof-style per-call instrumentation.
    Gprof,
    /// Whodunit with loop pruning and collapse disabled (ablation:
    /// complete context histories, §4.1's "useful for debugging").
    WhodunitFullHistory,
    /// Whodunit with the §7.2 emulation bail-out disabled (ablation).
    WhodunitAlwaysEmulate,
    /// Whodunit with stochastic (seeded exponential-gap) sampling
    /// instead of the deterministic analytic placement (ablation).
    WhodunitStochastic,
    /// Tmon-style per-thread lock-wait measurement (§6's comparison
    /// point: lock waits without transaction attribution).
    Tmon,
}

impl RtKind {
    /// Display name matching Table 2's column headers.
    pub fn label(self) -> &'static str {
        match self {
            RtKind::None => "No profile",
            RtKind::Csprof => "csprof",
            RtKind::Whodunit => "Whodunit",
            RtKind::Gprof => "gprof",
            RtKind::WhodunitFullHistory => "Whodunit (full history)",
            RtKind::WhodunitAlwaysEmulate => "Whodunit (no emulation bail-out)",
            RtKind::WhodunitStochastic => "Whodunit (stochastic sampling)",
            RtKind::Tmon => "Tmon (per-thread lock waits)",
        }
    }
}

/// The runtime handles a harness keeps: the erased hook object plus a
/// typed handle to Whodunit when installed (for reading profiles).
pub struct ProcRuntime {
    /// The hook object installed into the simulator.
    pub rt: Rc<RefCell<dyn Runtime>>,
    /// Typed handle when `kind == Whodunit`.
    pub whodunit: Option<Rc<RefCell<Whodunit>>>,
}

/// Builds the runtime of `kind` for process `proc` named `name`.
pub fn make_runtime(
    kind: RtKind,
    proc: ProcId,
    name: &str,
    frames: SharedFrameTable,
) -> ProcRuntime {
    match kind {
        RtKind::None => ProcRuntime {
            rt: Rc::new(RefCell::new(NullRuntime)),
            whodunit: None,
        },
        RtKind::Csprof => ProcRuntime {
            rt: Rc::new(RefCell::new(CsprofRuntime::default())),
            whodunit: None,
        },
        RtKind::Gprof => ProcRuntime {
            rt: Rc::new(RefCell::new(GprofRuntime::default())),
            whodunit: None,
        },
        RtKind::Tmon => ProcRuntime {
            rt: Rc::new(RefCell::new(TmonRuntime::new())),
            whodunit: None,
        },
        RtKind::Whodunit
        | RtKind::WhodunitFullHistory
        | RtKind::WhodunitAlwaysEmulate
        | RtKind::WhodunitStochastic => {
            let mut cfg = WhodunitConfig::new(proc, name);
            if kind == RtKind::WhodunitFullHistory {
                cfg = cfg.with_policy(whodunit_core::context::ContextPolicy::full_history());
            }
            if kind == RtKind::WhodunitAlwaysEmulate {
                cfg = cfg.with_always_emulate(true);
            }
            if kind == RtKind::WhodunitStochastic {
                cfg = cfg.with_sampling(whodunit_core::cost::Sampling::Stochastic(
                    0x5eed ^ proc.0 as u64,
                ));
            }
            let w = Rc::new(RefCell::new(Whodunit::new(cfg, frames)));
            ProcRuntime {
                rt: w.clone(),
                whodunit: Some(w),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whodunit_core::frame::shared_frame_table;

    #[test]
    fn kinds_build_expected_runtimes() {
        let f = shared_frame_table();
        for (kind, name) in [
            (RtKind::None, "none"),
            (RtKind::Csprof, "csprof"),
            (RtKind::Whodunit, "whodunit"),
            (RtKind::Gprof, "gprof"),
        ] {
            let pr = make_runtime(kind, ProcId(0), "p", f.clone());
            assert_eq!(pr.rt.borrow().name(), name);
            assert_eq!(pr.whodunit.is_some(), kind == RtKind::Whodunit);
            let fh = make_runtime(RtKind::WhodunitFullHistory, ProcId(0), "p", f.clone());
            assert!(fh.whodunit.is_some());
        }
    }

    #[test]
    fn labels_match_table2() {
        assert_eq!(RtKind::None.label(), "No profile");
        assert_eq!(RtKind::Whodunit.label(), "Whodunit");
    }
}
