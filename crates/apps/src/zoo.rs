//! The topology zoo: small multi-tier assemblies beyond the TPC-W
//! pipeline, built to stress black-box inference stitching
//! (`whodunit-infer`) with communication structures the 3-tier chain
//! never produces.
//!
//! | Topology | Structure | What it stresses |
//! |---|---|---|
//! | [`Topology::Fanout`] | gateway fans one request out to K services and fans the replies back in | concurrent sibling sends on distinct channels; fan-in ordering |
//! | [`Topology::PubSub`] | publishers → broker → topic subscribers, fire-and-forget events | one-way edges (no reply to anchor timing); multicast of one logical event |
//! | [`Topology::CacheWt`] | front → 2 cache shards → store, write-through with peer invalidations | peer-to-peer traffic between mid-tier siblings; invalidation storms under write bursts |
//!
//! Every topology runs under the standard simulator machinery: seeded
//! schedules, [`whodunit_sim::FaultPlan`]s, step budgets, profiled
//! tiers (so the mass-conservation oracle applies), and the optional
//! comm-event log that feeds inference. Clients are the marked origin
//! tier. Load is shaped by [`whodunit_workload::LoadShape`] — flash
//! crowds and diurnal swings change message density, which is exactly
//! the variable timing-window inference is sensitive to.
//!
//! The chaos glue ([`zoo_space`], [`zoo_config_of`],
//! [`run_zoo_scenario`]) mirrors [`crate::chaos`], so the explorer
//! can sample, check, and shrink scenarios on any zoo member.

use crate::chaos::ScenarioResult;
use crate::rtconf::RtKind;
use rand::rngs::SmallRng;
use rand::Rng;
use std::cell::RefCell;
use std::rc::Rc;
use whodunit_core::blackbox::CommLog;
use whodunit_core::cost::CPU_HZ;
use whodunit_core::dumpjson;
use whodunit_core::hash::Fnv64;
use whodunit_core::ids::ChanId;
use whodunit_core::oracle::{check_all, Evidence, ProgressState};
use whodunit_core::repro::{ChaosRepro, FaultEntry};
use whodunit_core::stitch::StageDump;
use whodunit_sim::explore::ChaosSpace;
use whodunit_sim::{
    ChannelFaults, Cycles, Msg, Op, RunOutcome, SchedulePolicy, ThreadBody, ThreadCx, Wake,
};
use whodunit_workload::LoadShape;

pub mod cachewt;
pub mod fanout;
pub mod pubsub;

/// Which zoo member to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Microservice fan-out/fan-in: gateway → K services → gateway.
    Fanout,
    /// Pub/sub event bus: publishers → broker → topic subscribers.
    PubSub,
    /// Write-through cache pair with peer invalidations over a store.
    CacheWt,
}

impl Topology {
    /// All zoo members, in bench order.
    pub const ALL: [Topology; 3] = [Topology::Fanout, Topology::PubSub, Topology::CacheWt];

    /// Stable lowercase name (bench JSON keys, chaos roles).
    pub fn name(self) -> &'static str {
        match self {
            Topology::Fanout => "fanout",
            Topology::PubSub => "pubsub",
            Topology::CacheWt => "cachewt",
        }
    }
}

/// Fault knobs for a zoo assembly, mirroring [`crate::tpcw::TpcwFaults`]
/// with topology-neutral roles.
#[derive(Clone, Copy, Debug, Default)]
pub struct ZooFaults {
    /// Seed of the fault plan's random stream.
    pub seed: u64,
    /// Faults on the client → entry-tier channel.
    pub front_chan: ChannelFaults,
    /// Faults on the entry tier → first-backend channel (gateway→svc0,
    /// broker→sub0, shards→store).
    pub backbone_chan: ChannelFaults,
    /// Crash the designated backend (last service / last subscriber /
    /// the store) at this virtual time.
    pub crash_at: Option<Cycles>,
    /// Slow that backend's machine: `(from, until, factor)`.
    pub slowdown: Option<(Cycles, Cycles, u64)>,
}

/// Zoo experiment configuration, shared by all three topologies.
#[derive(Clone, Debug)]
pub struct ZooConfig {
    /// Which assembly to build.
    pub topology: Topology,
    /// Closed-loop clients (publishers, for [`Topology::PubSub`]).
    pub clients: u32,
    /// Fan-out width / subscriber count ([`Topology::CacheWt`] has a
    /// fixed shape: 2 shards + 1 store).
    pub services: u32,
    /// Virtual run duration (including warmup).
    pub duration: Cycles,
    /// Measurements start after this much virtual time.
    pub warmup: Cycles,
    /// Base RNG seed.
    pub seed: u64,
    /// Time-varying load envelope on client think times.
    pub shape: LoadShape,
    /// Profiler installed in the server tiers.
    pub rt: RtKind,
    /// Ready-queue tie-breaking policy.
    pub sched: SchedulePolicy,
    /// Livelock bound (see [`crate::tpcw::TpcwConfig::step_budget`]).
    pub step_budget: Option<u64>,
    /// Plants the zero-progress ping-pong pair (needs a step budget).
    pub livelock_pair: bool,
    /// Records the comm event log for black-box inference.
    pub comm_log: bool,
    /// Mean client think time before shaping.
    pub base_think: Cycles,
    /// Cross-tier RPC timeout for workers that wait on a backend.
    pub rpc_timeout: Cycles,
    /// Optional fault plan.
    pub faults: Option<ZooFaults>,
}

impl Default for ZooConfig {
    fn default() -> Self {
        ZooConfig {
            topology: Topology::Fanout,
            clients: 12,
            services: 3,
            duration: 30 * CPU_HZ,
            warmup: 5 * CPU_HZ,
            seed: 1,
            shape: LoadShape::Steady,
            rt: RtKind::Whodunit,
            sched: SchedulePolicy::Fifo,
            step_budget: Some(2_000_000),
            livelock_pair: false,
            comm_log: false,
            base_think: CPU_HZ / 2,
            rpc_timeout: CPU_HZ / 2,
            faults: None,
        }
    }
}

/// Results of one zoo run.
pub struct ZooReport {
    /// Client operations completed after warmup.
    pub completed: u64,
    /// Error replies clients received (backend timeout paths).
    pub errors: u64,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Stage dumps of the profiled tiers, in proc order.
    pub dumps: Vec<StageDump>,
    /// Ground-truth compute cycles per profiled tier, in proc order.
    pub compute_truth: Vec<u64>,
    /// The comm event log when [`ZooConfig::comm_log`] was set.
    pub comm: Option<CommLog>,
    /// Messages the fault plan dropped / duplicated / delayed.
    pub dropped_msgs: u64,
    /// See [`ZooReport::dropped_msgs`].
    pub duplicated_msgs: u64,
    /// See [`ZooReport::dropped_msgs`].
    pub delayed_msgs: u64,
    /// Profiled tier count; procs `0..profiled_procs` are tiers and
    /// proc `profiled_procs` is the (unprofiled, origin) client proc.
    pub profiled_procs: u32,
    /// Pub/sub only: events delivered to subscribers.
    pub events_delivered: u64,
    /// Cache topology only: shard hits.
    pub cache_hits: u64,
    /// Cache topology only: peer invalidations delivered.
    pub invalidations: u64,
}

/// Runs the configured zoo assembly.
pub fn run_zoo(cfg: &ZooConfig) -> ZooReport {
    match cfg.topology {
        Topology::Fanout => fanout::run(cfg),
        Topology::PubSub => pubsub::run(cfg),
        Topology::CacheWt => cachewt::run(cfg),
    }
}

/// Client-side completion counters, shared across a topology's
/// closed-loop clients.
#[derive(Debug, Default)]
pub(crate) struct ZooStats {
    pub(crate) completed: u64,
    pub(crate) errors: u64,
}

/// One closed-loop zoo client: think (shaped), fire the
/// topology-specific request, await the reply, repeat.
pub(crate) struct ZooClient<F: FnMut(&mut SmallRng, ChanId) -> Msg> {
    pub(crate) make_req: F,
    pub(crate) rng: SmallRng,
    pub(crate) entry: ChanId,
    pub(crate) reply: ChanId,
    pub(crate) stats: Rc<RefCell<ZooStats>>,
    pub(crate) warmup: Cycles,
    pub(crate) base_think: Cycles,
    pub(crate) shape: LoadShape,
    pub(crate) started: Cycles,
    pub(crate) state: ClientState,
}

pub(crate) enum ClientState {
    Think,
    Sent,
    WaitReply,
}

/// The reply payload every zoo tier sends back to its client.
#[derive(Debug)]
pub(crate) struct ClientReply {
    pub(crate) ok: bool,
}

impl<F: FnMut(&mut SmallRng, ChanId) -> Msg> ThreadBody for ZooClient<F> {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match std::mem::replace(&mut self.state, ClientState::Think) {
            ClientState::Think => {
                if matches!(wake, Wake::Slept) {
                    self.started = cx.now();
                    self.state = ClientState::Sent;
                    let msg = (self.make_req)(&mut self.rng, self.reply);
                    Op::Send(self.entry, msg)
                } else {
                    // Draw a fresh think and run it through the load
                    // shape at the current virtual time.
                    let u = self.rng.gen::<f64>();
                    let base = (self.base_think as f64 * (0.25 + 1.5 * u)) as u64;
                    self.state = ClientState::Think;
                    Op::Sleep(self.shape.scale_think(base, cx.now()))
                }
            }
            ClientState::Sent => {
                self.state = ClientState::WaitReply;
                Op::Recv(self.reply)
            }
            ClientState::WaitReply => {
                let Wake::Received(msg) = wake else {
                    unreachable!("zoo client waits for its reply");
                };
                let r = msg.take::<ClientReply>();
                let mut st = self.stats.borrow_mut();
                if !r.ok {
                    st.errors += 1;
                } else if self.started >= self.warmup {
                    st.completed += 1;
                }
                drop(st);
                self.state = ClientState::Think;
                let u = self.rng.gen::<f64>();
                let base = (self.base_think as f64 * (0.25 + 1.5 * u)) as u64;
                Op::Sleep(self.shape.scale_think(base, cx.now()))
            }
        }
    }
}

/// The planted zero-progress defect (see
/// [`crate::tpcw::TpcwConfig::livelock_pair`]).
pub(crate) struct PingPongPeer {
    pub(crate) rx: ChanId,
    pub(crate) tx: ChanId,
    pub(crate) serves: bool,
}

impl ThreadBody for PingPongPeer {
    fn resume(&mut self, _cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match wake {
            Wake::Start if self.serves => Op::Recv(self.rx),
            Wake::Start | Wake::Received(_) => Op::Send(self.tx, Msg::new((), 0)),
            Wake::Done => Op::Recv(self.rx),
            _ => unreachable!("ping-pong only sends and receives"),
        }
    }
}

// ---------------------------------------------------------------------
// Chaos-explorer glue
// ---------------------------------------------------------------------

/// Virtual horizon of a zoo chaos run with the default workload.
pub const ZOO_HORIZON: u64 = 30 * CPU_HZ;

/// The crashable/slowable backend role of a topology.
fn backend_role(t: Topology) -> &'static str {
    match t {
        Topology::Fanout => "svc",
        Topology::PubSub => "sub",
        Topology::CacheWt => "store",
    }
}

/// The sampling space of a zoo assembly.
pub fn zoo_space(t: Topology) -> ChaosSpace {
    ChaosSpace {
        channels: vec!["front".into(), "backbone".into()],
        crashable: vec![backend_role(t).into()],
        slowable: vec![backend_role(t).into()],
        horizon: ZOO_HORIZON,
        max_fault_ppm: 100_000,
        max_delay: CPU_HZ / 50,
    }
}

/// The workload knobs a zoo chaos repro carries.
pub fn zoo_workload() -> Vec<(String, u64)> {
    vec![
        ("clients".into(), 12),
        ("services".into(), 3),
        ("duration".into(), ZOO_HORIZON),
        ("warmup".into(), 5 * CPU_HZ),
        ("rpc_timeout".into(), CPU_HZ / 2),
        ("step_budget".into(), 2_000_000),
        ("livelock_pair".into(), 0),
    ]
}

fn ppm_to_p(ppm: u64) -> f64 {
    ppm as f64 / 1_000_000.0
}

/// The faultable channel roles of a zoo assembly.
fn chan_mut<'a>(faults: &'a mut ZooFaults, name: &str) -> Option<&'a mut ChannelFaults> {
    match name {
        "front" => Some(&mut faults.front_chan),
        "backbone" => Some(&mut faults.backbone_chan),
        _ => None,
    }
}

/// Resolves a repro into a concrete [`ZooConfig`] for topology `t`.
/// Unknown roles are ignored, exactly as in [`crate::chaos::config_of`].
pub fn zoo_config_of(t: Topology, repro: &ChaosRepro) -> ZooConfig {
    let mut faults = ZooFaults {
        seed: repro.seed,
        ..ZooFaults::default()
    };
    for f in &repro.faults {
        match f {
            FaultEntry::Drop { chan, ppm } => {
                if let Some(c) = chan_mut(&mut faults, chan) {
                    c.drop_p = ppm_to_p(*ppm);
                }
            }
            FaultEntry::Dup { chan, ppm } => {
                if let Some(c) = chan_mut(&mut faults, chan) {
                    c.dup_p = ppm_to_p(*ppm);
                }
            }
            FaultEntry::Delay { chan, ppm, cycles } => {
                if let Some(c) = chan_mut(&mut faults, chan) {
                    c.delay_p = ppm_to_p(*ppm);
                    c.delay_cycles = *cycles;
                }
            }
            FaultEntry::Crash { proc, at } => {
                if proc == backend_role(t) {
                    faults.crash_at = Some(*at);
                }
            }
            FaultEntry::Slowdown {
                machine,
                from,
                until,
                factor,
            } => {
                if machine == backend_role(t) {
                    faults.slowdown = Some((*from, *until, *factor));
                }
            }
        }
    }

    let knob = |name: &str, default: u64| repro.knob(name).unwrap_or(default);
    ZooConfig {
        topology: t,
        clients: knob("clients", 12) as u32,
        services: knob("services", 3) as u32,
        duration: knob("duration", ZOO_HORIZON),
        warmup: knob("warmup", 5 * CPU_HZ),
        rpc_timeout: knob("rpc_timeout", CPU_HZ / 2),
        seed: repro.seed,
        sched: repro.policy.parse().unwrap_or_default(),
        step_budget: match knob("step_budget", 2_000_000) {
            0 => None,
            b => Some(b),
        },
        livelock_pair: knob("livelock_pair", 0) != 0,
        faults: Some(faults),
        ..ZooConfig::default()
    }
}

/// Executes a repro on a zoo topology and checks every applicable
/// oracle (mass conservation, dictionary, fault accounting, progress).
pub fn run_zoo_scenario(t: Topology, repro: &ChaosRepro) -> ScenarioResult {
    let r = run_zoo(&zoo_config_of(t, repro));

    let progress = match &r.outcome {
        RunOutcome::ReachedLimit | RunOutcome::Idle => ProgressState::Completed,
        RunOutcome::Deadlock(d) => ProgressState::Deadlock(d.to_string()),
        RunOutcome::Livelock(l) => ProgressState::Livelock(l.to_string()),
    };
    let has = |pred: &dyn Fn(&FaultEntry) -> bool| repro.faults.iter().any(pred);
    let ev = Evidence {
        compute_truth: r.compute_truth.clone(),
        drops_permitted: has(&|f| matches!(f, FaultEntry::Drop { ppm, .. } if *ppm > 0)),
        dups_permitted: has(&|f| matches!(f, FaultEntry::Dup { ppm, .. } if *ppm > 0)),
        delays_permitted: has(&|f| matches!(f, FaultEntry::Delay { ppm, .. } if *ppm > 0)),
        crash_permitted: has(&|f| matches!(f, FaultEntry::Crash { .. })),
        dropped: r.dropped_msgs,
        duplicated: r.duplicated_msgs,
        delayed: r.delayed_msgs,
        progress,
        dumps: r.dumps,
        federation: None,
    };
    let violations = check_all(&ev);

    let mut h = Fnv64::new();
    h.write(dumpjson::to_json(&ev.dumps).as_bytes());
    for n in [ev.dropped, ev.duplicated, ev.delayed] {
        h.write_u64(n);
    }
    for &tc in &ev.compute_truth {
        h.write(&tc.to_le_bytes());
    }
    let outcome = r.outcome.to_string();
    h.write(outcome.as_bytes());
    let h = h.finish();

    ScenarioResult {
        violations,
        fingerprint: h,
        outcome,
        faults_seen: (ev.dropped, ev.duplicated, ev.delayed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(t: Topology) -> ZooConfig {
        ZooConfig {
            topology: t,
            clients: 8,
            duration: 20 * CPU_HZ,
            warmup: 5 * CPU_HZ,
            comm_log: true,
            ..ZooConfig::default()
        }
    }

    #[test]
    fn fanout_serves_and_logs() {
        let r = run_zoo(&quick(Topology::Fanout));
        assert!(r.completed > 20, "completed {}", r.completed);
        assert_eq!(r.errors, 0, "clean run has no error replies");
        assert_eq!(r.dumps.len(), r.profiled_procs as usize);
        assert!(r.compute_truth.iter().all(|&c| c > 0));
        let log = r.comm.expect("comm log requested");
        // Every recv has exactly one ground-truth producer and origin.
        assert_eq!(log.truth_pairs().len(), log.recv_count());
        assert_eq!(log.truth_origins().len(), log.recv_count());
    }

    #[test]
    fn pubsub_multicasts_each_publish_twice() {
        let r = run_zoo(&quick(Topology::PubSub));
        assert!(r.completed > 20, "completed {}", r.completed);
        // Each publish (including warmup ones) lands on exactly two
        // subscribers; completed only counts post-warmup publishes.
        assert!(
            r.events_delivered >= 2 * r.completed,
            "delivered {} for {} publishes",
            r.events_delivered,
            r.completed
        );
        let log = r.comm.expect("comm log requested");
        assert!(log.send_count() > log.recv_count() / 2);
    }

    #[test]
    fn cachewt_invalidates_peers_on_writes() {
        let r = run_zoo(&quick(Topology::CacheWt));
        assert!(r.completed > 20, "completed {}", r.completed);
        assert!(r.cache_hits > 0, "reads hit the cache");
        assert!(r.invalidations > 0, "writes invalidate the peer shard");
    }

    #[test]
    fn flash_crowd_outpaces_steady_load() {
        let steady = run_zoo(&quick(Topology::Fanout));
        let mut cfg = quick(Topology::Fanout);
        cfg.shape = LoadShape::FlashCrowd {
            at: 8 * CPU_HZ,
            len: 10 * CPU_HZ,
            surge_ppm: 150_000,
        };
        let crowd = run_zoo(&cfg);
        assert!(
            crowd.completed > steady.completed * 2,
            "crowd {} vs steady {}",
            crowd.completed,
            steady.completed
        );
    }

    #[test]
    fn comm_log_is_pure_observation() {
        // Same config, log on vs off: identical outcome and truth-side
        // measurements.
        let mut on = quick(Topology::CacheWt);
        on.comm_log = true;
        let mut off = on.clone();
        off.comm_log = false;
        let a = run_zoo(&on);
        let b = run_zoo(&off);
        assert!(a.comm.is_some() && b.comm.is_none());
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.compute_truth, b.compute_truth);
        assert_eq!(a.cache_hits, b.cache_hits);
        assert_eq!(a.invalidations, b.invalidations);
    }
}
