//! Small measurement helpers shared by the app harnesses.

use whodunit_core::cost::CPU_HZ;

/// Online mean/count accumulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct MeanAcc {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
}

impl MeanAcc {
    /// Adds an observation.
    pub fn add(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
    }

    /// The mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Converts `bytes` transferred over `cycles` of virtual time into
/// megabits per second (the paper's throughput unit for Apache, Squid
/// and Haboob).
pub fn mbps(bytes: u64, cycles: u64) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    let secs = cycles as f64 / CPU_HZ as f64;
    bytes as f64 * 8.0 / 1e6 / secs
}

/// Converts `count` events over `cycles` into events per minute (the
/// paper's TPC-W throughput unit).
pub fn per_minute(count: u64, cycles: u64) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    let secs = cycles as f64 / CPU_HZ as f64;
    count as f64 * 60.0 / secs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_acc_basics() {
        let mut m = MeanAcc::default();
        assert_eq!(m.mean(), 0.0);
        m.add(10);
        m.add(20);
        assert_eq!(m.count, 2);
        assert!((m.mean() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn mbps_conversion() {
        // 1 MB over 1 second = 8 Mb/s.
        assert!((mbps(1_000_000, CPU_HZ) - 8.0).abs() < 1e-9);
        assert_eq!(mbps(1, 0), 0.0);
    }

    #[test]
    fn per_minute_conversion() {
        assert!((per_minute(60, CPU_HZ) - 3600.0).abs() < 1e-9);
    }
}
