//! The TPC-W 3-tier assembly: squid → tomcat → mysql (§8.4).
//!
//! All requests flow through a Squid-like front tier to the Tomcat-like
//! servlet container and on to the MySQL-like database, each tier a
//! separate profiled process. Closed-loop emulated clients sample the
//! browsing mix with exponential think times and record per-interaction
//! response times.
//!
//! The front tier forwards every dynamic request through the *same*
//! call path, so — as §8.4 observes — it transfers the same transaction
//! context to Tomcat, and the per-interaction distinction arises from
//! Tomcat's per-servlet call paths; Whodunit then maintains separate
//! contexts (and crosstalk attribution) at MySQL for every interaction.

use crate::appserver::{
    build_appserver, AppHandles, AppServerConfig, PageReply, PageReq, StaticReply, StaticReq,
    IMAGE_BYTES,
};
use crate::dbserver::{build_dbserver, DbConfig, DbHandles, Engine};
use crate::metrics::{per_minute, MeanAcc};
use crate::rtconf::{make_runtime, ProcRuntime, RtKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use whodunit_core::cost::{cycles_to_ms, ms_to_cycles, CPU_HZ};
use whodunit_core::frame::FrameId;
use whodunit_core::ids::{ChanId, ProcId};
use whodunit_core::stitch::StageDump;
use whodunit_sim::{
    ChannelFaults, Cycles, FaultPlan, Msg, Op, RunOutcome, SchedulePolicy, Sim, SimConfig,
    ThreadBody, ThreadCx, Wake,
};
use whodunit_workload::{Interaction, Mix, TpcwMix};

/// Number of BestSellers subjects (cache key space).
pub const SUBJECTS: u64 = 24;

/// Messages arriving at the squid forwarder's poll channel.
#[derive(Debug)]
enum SquidMsg {
    FromClient {
        interaction: Interaction,
        key: u64,
        reply: ChanId,
    },
    /// A static image request (§8.4: Squid caches TPC-W's static
    /// content; only misses travel to Tomcat).
    ImageReq { id: u64, reply: ChanId },
}

/// Squid-tier shared state: the static-content cache.
#[derive(Debug, Default)]
pub struct SquidShared {
    img_cache: std::collections::HashSet<u64>,
    /// Image requests served from the cache.
    pub img_hits: u64,
    /// Image requests forwarded to Tomcat.
    pub img_misses: u64,
}

/// The squid front tier: a forwarding thread per worker. Every request
/// takes the same call path (client_http_request → forward), matching
/// §8.4's observation.
struct SquidWorker {
    shared: Rc<RefCell<SquidShared>>,
    in_chan: ChanId,
    tomcat: ChanId,
    my_reply: ChanId,
    f_main: FrameId,
    f_fwd: FrameId,
    f_img: FrameId,
    state: FState,
}

enum FState {
    Init,
    WaitMsg,
    Forward(Option<(Interaction, u64, ChanId)>),
    WaitTomcat(Option<ChanId>),
    Reply(Option<(Interaction, bool, ChanId)>),
    /// Serving an image from the cache.
    ImgHit(Option<(u64, ChanId)>),
    /// Fetching a missed image from Tomcat.
    ImgForward(Option<(u64, ChanId)>),
    WaitImg(Option<ChanId>),
    ImgReply(Option<(u64, ChanId)>),
    Done,
}

impl ThreadBody for SquidWorker {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match std::mem::replace(&mut self.state, FState::WaitMsg) {
            FState::Init => {
                cx.push_frame(self.f_main);
                self.state = FState::WaitMsg;
                Op::Recv(self.in_chan)
            }
            FState::WaitMsg => {
                let Wake::Received(msg) = wake else {
                    unreachable!("squid worker waits for client requests");
                };
                match msg.take::<SquidMsg>() {
                    SquidMsg::FromClient {
                        interaction,
                        key,
                        reply,
                    } => {
                        cx.push_frame(self.f_fwd);
                        self.state = FState::Forward(Some((interaction, key, reply)));
                        Op::Compute(ms_to_cycles(0.5))
                    }
                    SquidMsg::ImageReq { id, reply } => {
                        cx.push_frame(self.f_img);
                        if self.shared.borrow().img_cache.contains(&id) {
                            self.shared.borrow_mut().img_hits += 1;
                            self.state = FState::ImgHit(Some((id, reply)));
                            Op::Compute(ms_to_cycles(0.12))
                        } else {
                            self.shared.borrow_mut().img_misses += 1;
                            self.state = FState::ImgForward(Some((id, reply)));
                            Op::Compute(ms_to_cycles(0.2))
                        }
                    }
                }
            }
            FState::ImgHit(data) => {
                let (id, reply) = data.expect("image data");
                cx.pop_frame();
                self.state = FState::Done;
                Op::Send(
                    reply,
                    Msg::new(
                        StaticReply {
                            id,
                            bytes: IMAGE_BYTES,
                        },
                        IMAGE_BYTES,
                    ),
                )
            }
            FState::ImgForward(data) => {
                let (id, reply) = data.expect("image data");
                self.state = FState::WaitImg(Some(reply));
                Op::Send(
                    self.tomcat,
                    Msg::new(
                        StaticReq {
                            id,
                            reply: self.my_reply,
                        },
                        300,
                    ),
                )
            }
            FState::WaitImg(reply) => match wake {
                Wake::Done => {
                    self.state = FState::WaitImg(reply);
                    Op::Recv(self.my_reply)
                }
                Wake::Received(msg) => {
                    let sr = msg.take::<StaticReply>();
                    self.shared.borrow_mut().img_cache.insert(sr.id);
                    self.state = FState::ImgReply(Some((sr.id, reply.expect("client chan"))));
                    Op::Compute(ms_to_cycles(0.1))
                }
                _ => unreachable!("WaitImg sees send-done then reply"),
            },
            FState::ImgReply(data) => {
                let (id, reply) = data.expect("image data");
                cx.pop_frame();
                self.state = FState::Done;
                Op::Send(
                    reply,
                    Msg::new(
                        StaticReply {
                            id,
                            bytes: IMAGE_BYTES,
                        },
                        IMAGE_BYTES,
                    ),
                )
            }
            FState::Forward(data) => {
                let (interaction, key, reply) = data.expect("request data");
                let req = PageReq {
                    interaction,
                    key,
                    tag: 0,
                    reply: self.my_reply,
                };
                self.state = FState::WaitTomcat(Some(reply));
                Op::Send(self.tomcat, Msg::new(req, 500))
            }
            FState::WaitTomcat(reply) => match wake {
                Wake::Done => {
                    self.state = FState::WaitTomcat(reply);
                    Op::Recv(self.my_reply)
                }
                Wake::Received(msg) => {
                    let pr = msg.take::<PageReply>();
                    let client = reply.expect("client reply channel");
                    self.state = FState::Reply(Some((pr.interaction, pr.ok, client)));
                    Op::Compute(ms_to_cycles(0.3))
                }
                _ => unreachable!("WaitTomcat sees send-done then reply"),
            },
            FState::Reply(data) => {
                let (interaction, ok, client) = data.expect("reply data");
                cx.pop_frame();
                self.state = FState::Done;
                Op::Send(
                    client,
                    Msg::new(
                        PageReply {
                            interaction,
                            tag: 0,
                            ok,
                        },
                        8 * 1024,
                    ),
                )
            }
            FState::Done => {
                self.state = FState::WaitMsg;
                Op::Recv(self.in_chan)
            }
        }
    }
}

/// Per-interaction client-side measurements.
#[derive(Debug, Default)]
pub struct ClientStats {
    /// Response-time accumulators per interaction (cycles), measured
    /// after warmup.
    pub rt: HashMap<Interaction, MeanAcc>,
    /// Interactions completed after warmup.
    pub completed: u64,
    /// Error pages received (whole run, warmup included).
    pub errors: u64,
    /// Error pages classified per interaction.
    pub errors_by: HashMap<Interaction, u64>,
}

struct TpcwClient {
    mix: TpcwMix,
    rng: SmallRng,
    squid: ChanId,
    reply: ChanId,
    stats: Rc<RefCell<ClientStats>>,
    warmup: Cycles,
    search_terms: u64,
    images_per_page: u32,
    current: Option<(Interaction, Cycles)>,
    state: CState,
}

enum CState {
    Think,
    Sent,
    WaitReply,
    /// Fetching the page's static images (id base, remaining).
    FetchImage {
        base: u64,
        left: u32,
    },
    WaitImage {
        base: u64,
        left: u32,
    },
}

impl TpcwClient {
    fn draw_key(&mut self, i: Interaction) -> u64 {
        match i {
            Interaction::BestSellers => self.rng.gen_range(0..SUBJECTS),
            Interaction::SearchResult => {
                // Zipf-ish search terms: a hot head (popular subjects
                // and titles, highly cacheable within the 30 s TTL) and
                // a long tail of rare terms.
                if self.rng.gen::<f64>() < 0.70 {
                    self.rng.gen_range(0..30)
                } else {
                    30 + self.rng.gen_range(0..self.search_terms)
                }
            }
            _ => self.rng.gen::<u64>() >> 16,
        }
    }
}

impl ThreadBody for TpcwClient {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match std::mem::replace(&mut self.state, CState::Think) {
            CState::Think => {
                // After Start or after a completed interaction: think,
                // then issue the next request.
                if matches!(wake, Wake::Slept) {
                    let i = self.mix.next_interaction();
                    let key = self.draw_key(i);
                    self.current = Some((i, cx.now()));
                    self.state = CState::Sent;
                    Op::Send(
                        self.squid,
                        Msg::new(
                            SquidMsg::FromClient {
                                interaction: i,
                                key,
                                reply: self.reply,
                            },
                            400,
                        ),
                    )
                } else {
                    self.state = CState::Think;
                    Op::Sleep(self.mix.think_time())
                }
            }
            CState::Sent => {
                self.state = CState::WaitReply;
                Op::Recv(self.reply)
            }
            CState::WaitReply => {
                let Wake::Received(msg) = wake else {
                    unreachable!("client waits for its page");
                };
                let pr = msg.take::<PageReply>();
                let (i, started) = self.current.take().expect("in flight");
                debug_assert_eq!(pr.interaction, i);
                if !pr.ok {
                    // Classify the failure; errors never count as
                    // completions and never enter the RT statistics.
                    let mut st = self.stats.borrow_mut();
                    st.errors += 1;
                    *st.errors_by.entry(i).or_insert(0) += 1;
                } else if started >= self.warmup {
                    let mut st = self.stats.borrow_mut();
                    st.rt.entry(i).or_default().add(cx.now() - started);
                    st.completed += 1;
                }
                if self.images_per_page > 0 {
                    // The page embeds thumbnails; fetch them through
                    // squid's static-content cache.
                    let base = (self.rng.gen::<u64>() % 150) * 8;
                    self.state = CState::FetchImage {
                        base,
                        left: self.images_per_page,
                    };
                    // Fall through via an instant no-op sleep.
                    return Op::Sleep(1);
                }
                self.state = CState::Think;
                Op::Sleep(self.mix.think_time())
            }
            CState::FetchImage { base, left } => {
                if left == 0 {
                    self.state = CState::Think;
                    return Op::Sleep(self.mix.think_time());
                }
                self.state = CState::WaitImage { base, left };
                Op::Send(
                    self.squid,
                    Msg::new(
                        SquidMsg::ImageReq {
                            id: base + left as u64,
                            reply: self.reply,
                        },
                        300,
                    ),
                )
            }
            CState::WaitImage { base, left } => match wake {
                Wake::Done => {
                    self.state = CState::WaitImage { base, left };
                    Op::Recv(self.reply)
                }
                Wake::Received(_) => {
                    self.state = CState::FetchImage {
                        base,
                        left: left - 1,
                    };
                    // Continue immediately with the next image.
                    Op::Sleep(1)
                }
                _ => unreachable!("client waits for its image"),
            },
        }
    }
}

/// TPC-W experiment configuration.
#[derive(Clone, Debug)]
pub struct TpcwConfig {
    /// Concurrent emulated browsers.
    pub clients: u32,
    /// Database storage engine (Figure 11's MyISAM → InnoDB knob).
    pub engine: Engine,
    /// Servlet result caching (Figures 11–12's caching knob).
    pub caching: bool,
    /// Profiler installed in all three server tiers.
    pub rt: RtKind,
    /// Virtual run duration (including warmup).
    pub duration: Cycles,
    /// Measurements start after this much virtual time.
    pub warmup: Cycles,
    /// Distinct search terms (SearchResult cache key space).
    pub search_terms: u64,
    /// Static images fetched per page (through squid's cache).
    pub images_per_page: u32,
    /// The TPC-W interaction mix (the paper uses browsing).
    pub mix: Mix,
    /// Base RNG seed.
    pub seed: u64,
    /// Tomcat's DB-RPC timeout (see [`AppServerConfig::db_timeout`]).
    pub db_timeout: Cycles,
    /// Optional seeded fault plan for the assembly (`None` = fault-free).
    pub faults: Option<TpcwFaults>,
    /// Ready-queue tie-breaking policy (FIFO = the historical schedule).
    pub sched: SchedulePolicy,
    /// Livelock bound: maximum thread resumes at a single virtual
    /// instant before the run is declared livelocked (`None` = off).
    pub step_budget: Option<u64>,
    /// Spawns an intentionally buggy zero-latency ping-pong thread pair
    /// that never advances virtual time — a planted bounded-progress
    /// defect for exercising the chaos explorer's livelock oracle.
    /// Requires a `step_budget`, or the run never terminates.
    pub livelock_pair: bool,
    /// Records the per-channel send/recv event log (plus ground-truth
    /// pairings) for black-box inference. Pure observation: enabling
    /// it never changes the run (see the engine's comm-log test), so
    /// the batch fingerprint is unaffected.
    pub comm_log: bool,
}

/// Fault knobs for the 3-tier assembly, resolved into a
/// [`whodunit_sim::FaultPlan`] once the channels and processes exist.
#[derive(Clone, Copy, Debug, Default)]
pub struct TpcwFaults {
    /// Seed of the fault plan's random stream.
    pub seed: u64,
    /// Faults on the tomcat → mysql request channel.
    pub db_chan: ChannelFaults,
    /// Faults on the client → squid channel. Note that a *dropped*
    /// client request strands that client for the rest of the run (the
    /// closed-loop browser has no reply timeout), shrinking offered
    /// load — use drops here for orphaned-message stress, not for
    /// throughput comparisons.
    pub front_chan: ChannelFaults,
    /// Crash the mysql process at this virtual time.
    pub db_crash_at: Option<Cycles>,
    /// Slow the mysql machine: `(from, until, factor)`.
    pub db_slowdown: Option<(Cycles, Cycles, u64)>,
}

impl Default for TpcwConfig {
    fn default() -> Self {
        TpcwConfig {
            clients: 100,
            engine: Engine::MyIsam,
            caching: false,
            rt: RtKind::Whodunit,
            duration: 400 * CPU_HZ,
            warmup: 60 * CPU_HZ,
            search_terms: 2000,
            images_per_page: 3,
            mix: Mix::Browsing,
            seed: 1,
            db_timeout: AppServerConfig::default().db_timeout,
            faults: None,
            sched: SchedulePolicy::Fifo,
            step_budget: None,
            livelock_pair: false,
            comm_log: false,
        }
    }
}

/// Results of one TPC-W run.
pub struct TpcwReport {
    /// Interactions per minute completed in the measurement window.
    pub throughput_per_min: f64,
    /// Mean response time per interaction, in milliseconds.
    pub rt_ms: HashMap<Interaction, f64>,
    /// Ground-truth DB CPU cycles per interaction (from the simulator,
    /// for validating the profiler).
    pub db_cpu_truth: HashMap<Interaction, u64>,
    /// Queries served per interaction.
    pub db_served: HashMap<Interaction, u64>,
    /// Application-server cache hits.
    pub cache_hits: u64,
    /// Squid static-content cache hits.
    pub img_hits: u64,
    /// Squid static-content cache misses.
    pub img_misses: u64,
    /// Stage dumps (squid, tomcat, mysql) when Whodunit was installed.
    pub dumps: Vec<StageDump>,
    /// The three tier runtimes (squid, tomcat, mysql).
    pub runtimes: Vec<ProcRuntime>,
    /// The database handles' counter lock (§8.1 checks).
    pub counter_lock: whodunit_core::ids::LockId,
    /// Measurement window length in cycles.
    pub window: Cycles,
    /// Total bytes sent over every channel (application data plus
    /// synopsis piggyback) — the denominator of §9.1's communication
    /// overhead.
    pub wire_bytes: u64,
    /// Synopsis piggyback bytes across all profiled stages.
    pub piggyback_bytes: u64,
    /// Error pages the clients received (tomcat shed the request).
    pub client_errors: u64,
    /// Error pages classified per interaction.
    pub errors_by: HashMap<Interaction, u64>,
    /// Tomcat DB-RPC timeouts fired.
    pub app_db_timeouts: u64,
    /// Tomcat DB-RPC resends issued.
    pub app_db_retries: u64,
    /// Requests tomcat shed after exhausting its timeout/retry budget.
    pub app_sheds: u64,
    /// Messages the fault plan dropped on the wire.
    pub dropped_msgs: u64,
    /// Messages the fault plan duplicated on the wire.
    pub duplicated_msgs: u64,
    /// Messages the fault plan delayed on the wire.
    pub delayed_msgs: u64,
    /// How the run ended: limit reached, idle, or a detected
    /// deadlock/livelock with its diagnostic.
    pub outcome: RunOutcome,
    /// Ground-truth compute cycles per profiled tier
    /// (squid, tomcat, mysql) straight from the simulator — the
    /// denominator of profile-mass conservation checks.
    pub compute_truth: Vec<u64>,
    /// The comm event log (with ground truth) when
    /// [`TpcwConfig::comm_log`] was set. Procs are squid=0, tomcat=1,
    /// mysql=2, clients=3; clients are the marked origin tier.
    pub comm: Option<whodunit_core::blackbox::CommLog>,
}

/// The planted livelock defect: two threads ping-ponging over
/// zero-latency, zero-cost channels. Every exchange happens at the same
/// virtual instant, so the pair makes unbounded scheduler steps without
/// ever advancing time — exactly what the step budget exists to catch.
struct PingPongPeer {
    rx: ChanId,
    tx: ChanId,
    serves: bool,
}

impl ThreadBody for PingPongPeer {
    fn resume(&mut self, _cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match wake {
            Wake::Start if self.serves => Op::Recv(self.rx),
            Wake::Start | Wake::Received(_) => Op::Send(self.tx, Msg::new((), 0)),
            Wake::Done => Op::Recv(self.rx),
            _ => unreachable!("ping-pong only sends and receives"),
        }
    }
}

/// Runs the TPC-W assembly.
pub fn run_tpcw(cfg: TpcwConfig) -> TpcwReport {
    run_tpcw_inner(cfg, None)
}

/// Runs the TPC-W assembly in streaming mode: identical build and
/// schedule to [`run_tpcw`], but the run advances in epochs of
/// `epoch_len` virtual cycles and each epoch's per-stage profile
/// increment is emitted to `sink` via [`Sim::run_streaming`].
///
/// Streaming only changes when profile state is *observed*: the
/// report (and in particular its dumps) is bit-identical to the
/// batch run's for the same config.
pub fn run_tpcw_streaming(
    cfg: TpcwConfig,
    epoch_len: u64,
    sink: &mut dyn whodunit_core::delta::DeltaSink,
) -> TpcwReport {
    run_tpcw_inner(cfg, Some((epoch_len, sink)))
}

fn run_tpcw_inner(
    cfg: TpcwConfig,
    streaming: Option<(u64, &mut dyn whodunit_core::delta::DeltaSink)>,
) -> TpcwReport {
    let mut sim = Sim::new(SimConfig::default());
    sim.set_schedule_policy(cfg.sched);
    sim.set_step_budget(cfg.step_budget);
    let client_m = sim.add_machine(8);
    let squid_m = sim.add_machine(1);
    let tomcat_m = sim.add_machine(2);
    let mysql_m = sim.add_machine(1);

    let squid_pr = make_runtime(cfg.rt, ProcId(0), "squid", sim.frames().clone());
    let tomcat_pr = make_runtime(cfg.rt, ProcId(1), "tomcat", sim.frames().clone());
    let mysql_pr = make_runtime(cfg.rt, ProcId(2), "mysql", sim.frames().clone());
    let squid_proc = sim.add_process("squid", squid_pr.rt.clone());
    let tomcat_proc = sim.add_process("tomcat", tomcat_pr.rt.clone());
    let mysql_proc = sim.add_process("mysql", mysql_pr.rt.clone());
    let client_proc = sim.add_unprofiled_process("clients");
    if cfg.comm_log {
        sim.mark_comm_origin(client_proc);
    }

    let db: DbHandles = build_dbserver(
        &mut sim,
        mysql_proc,
        mysql_m,
        DbConfig {
            engine: cfg.engine,
            executors: 64,
        },
    );
    let app: AppHandles = build_appserver(
        &mut sim,
        tomcat_proc,
        tomcat_m,
        db.req_chan,
        AppServerConfig {
            caching: cfg.caching,
            db_timeout: cfg.db_timeout,
            ..AppServerConfig::default()
        },
    );

    let squid_in = sim.add_channel(240_000, 20);
    if let Some(fs) = cfg.faults {
        let mut plan = FaultPlan::new(fs.seed)
            .channel_faults(db.req_chan, fs.db_chan)
            .channel_faults(squid_in, fs.front_chan);
        if let Some(at) = fs.db_crash_at {
            plan = plan.crash(mysql_proc, at);
        }
        if let Some((from, until, factor)) = fs.db_slowdown {
            plan = plan.slowdown(mysql_m, from, until, factor);
        }
        sim.set_fault_plan(plan);
    }
    let f_sq_main = sim.frame("comm_poll");
    let f_sq_fwd = sim.frame("client_http_request");
    let f_sq_img = sim.frame("clientCacheHit_static");
    let squid_shared = Rc::new(RefCell::new(SquidShared::default()));
    for i in 0..32 {
        let my_reply = sim.add_channel(240_000, 20);
        sim.spawn(
            squid_proc,
            squid_m,
            &format!("squid{i}"),
            Box::new(SquidWorker {
                shared: squid_shared.clone(),
                in_chan: squid_in,
                tomcat: app.req_chan,
                my_reply,
                f_main: f_sq_main,
                f_fwd: f_sq_fwd,
                f_img: f_sq_img,
                state: FState::Init,
            }),
        );
    }

    let stats = Rc::new(RefCell::new(ClientStats::default()));
    for i in 0..cfg.clients {
        let reply = sim.add_channel(240_000, 20);
        sim.spawn(
            client_proc,
            client_m,
            &format!("eb{i}"),
            Box::new(TpcwClient {
                mix: TpcwMix::with_mix(
                    cfg.seed.wrapping_add(i as u64).wrapping_mul(0x9e37),
                    cfg.mix,
                ),
                rng: SmallRng::seed_from_u64(cfg.seed ^ (i as u64) << 20),
                squid: squid_in,
                reply,
                stats: stats.clone(),
                warmup: cfg.warmup,
                search_terms: cfg.search_terms,
                images_per_page: cfg.images_per_page,
                current: None,
                state: CState::Think,
            }),
        );
    }

    if cfg.livelock_pair {
        let a = sim.add_channel(0, 0);
        let b = sim.add_channel(0, 0);
        sim.spawn(
            client_proc,
            client_m,
            "pingpong0",
            Box::new(PingPongPeer {
                rx: b,
                tx: a,
                serves: false,
            }),
        );
        sim.spawn(
            client_proc,
            client_m,
            "pingpong1",
            Box::new(PingPongPeer {
                rx: a,
                tx: b,
                serves: true,
            }),
        );
    }

    let outcome = match streaming {
        None => sim.run_until_outcome(cfg.duration),
        Some((epoch_len, sink)) => sim.run_streaming(cfg.duration, epoch_len, sink),
    };
    let comm = sim.take_comm_log();

    let compute_truth = vec![
        sim.proc_compute_cycles(squid_proc),
        sim.proc_compute_cycles(tomcat_proc),
        sim.proc_compute_cycles(mysql_proc),
    ];
    let dropped_msgs = sim.chans.total_dropped();
    let duplicated_msgs = sim.chans.total_duplicated();
    let delayed_msgs = sim.chans.total_delayed();
    let wire_bytes = sim.chans.total_bytes();
    let window = cfg.duration - cfg.warmup;
    let st = stats.borrow();
    let rt_ms = st
        .rt
        .iter()
        .map(|(&i, acc)| (i, cycles_to_ms(acc.mean() as u64)))
        .collect();
    let sh = db.shared.borrow();
    let db_cpu_truth = sh
        .served
        .iter()
        .map(|(&i, &n)| (i, n * crate::dbserver::query_for(i).cost()))
        .collect();
    let cache_hits = app.shared.borrow().cache_hits;
    let img_hits = squid_shared.borrow().img_hits;
    let img_misses = squid_shared.borrow().img_misses;
    let db_served = sh.served.clone();
    let dumps = sim.collect_dumps();
    let piggyback_bytes = dumps.iter().map(|d| d.piggyback_bytes).sum();
    let ash = app.shared.borrow();
    TpcwReport {
        throughput_per_min: per_minute(st.completed, window),
        rt_ms,
        db_cpu_truth,
        db_served,
        cache_hits,
        img_hits,
        img_misses,
        dumps,
        runtimes: vec![squid_pr, tomcat_pr, mysql_pr],
        counter_lock: db.counter_lock,
        window,
        wire_bytes,
        piggyback_bytes,
        client_errors: st.errors,
        errors_by: st.errors_by.clone(),
        app_db_timeouts: ash.db_timeouts,
        app_db_retries: ash.db_retries_used,
        app_sheds: ash.sheds,
        dropped_msgs,
        duplicated_msgs,
        delayed_msgs,
        outcome,
        compute_truth,
        comm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(clients: u32, caching: bool, engine: Engine) -> TpcwReport {
        run_tpcw(TpcwConfig {
            clients,
            caching,
            engine,
            duration: 120 * CPU_HZ,
            warmup: 30 * CPU_HZ,
            ..TpcwConfig::default()
        })
    }

    #[test]
    fn tpcw_serves_interactions_end_to_end() {
        let r = quick(40, false, Engine::MyIsam);
        assert!(
            r.throughput_per_min > 100.0,
            "tput {}",
            r.throughput_per_min
        );
        assert!(
            r.db_served.len() >= 8,
            "interaction coverage {:?}",
            r.db_served.len()
        );
        assert_eq!(r.dumps.len(), 3, "three profiled stages");
    }

    #[test]
    fn bestsellers_dominates_db_cpu() {
        let r = quick(40, false, Engine::MyIsam);
        let total: u64 = r.db_cpu_truth.values().sum();
        let bs = *r.db_cpu_truth.get(&Interaction::BestSellers).unwrap_or(&0);
        let sr = *r.db_cpu_truth.get(&Interaction::SearchResult).unwrap_or(&0);
        assert!(bs + sr > total / 2, "BS+SR = {}, total {}", bs + sr, total);
    }

    #[test]
    fn caching_reduces_db_queries() {
        let plain = quick(40, false, Engine::MyIsam);
        let cached = quick(40, true, Engine::MyIsam);
        assert!(cached.cache_hits > 0);
        let plain_q: u64 = plain.db_served.values().sum();
        let cached_q: u64 = cached.db_served.values().sum();
        assert!(cached_q < plain_q, "cached {cached_q} vs plain {plain_q}");
    }

    #[test]
    fn mysql_counter_flow_is_excluded() {
        let r = quick(20, false, Engine::MyIsam);
        let w = r.runtimes[2].whodunit.as_ref().unwrap().borrow();
        // §8.1: the shared counter is seen (its lock has activity) but
        // no transaction flow is inferred in MySQL.
        assert!(!w
            .flow_log()
            .iter()
            .any(|e| matches!(e, whodunit_core::shm::FlowEvent::Consumed { .. })));
        let stats = w.detector().lock_stats(r.counter_lock);
        assert_eq!(stats.producers, 0, "counter increments are non-MOV");
    }

    #[test]
    fn communication_overhead_is_about_one_percent() {
        // §9.1: "92.52 MB of data and 0.95 MB of transaction context is
        // transferred among the stages — a communication overhead of
        // about 1%".
        let r = quick(60, false, Engine::MyIsam);
        assert!(r.piggyback_bytes > 0);
        let pct = r.piggyback_bytes as f64 * 100.0 / r.wire_bytes as f64;
        assert!(pct < 3.0, "communication overhead {pct:.2}%");
        assert!(pct > 0.01, "piggyback is actually being counted: {pct:.4}%");
    }

    #[test]
    fn static_images_flow_through_squid_cache() {
        let r = quick(40, false, Engine::MyIsam);
        assert!(r.img_hits + r.img_misses > 100, "images requested");
        assert!(
            r.img_hits > r.img_misses,
            "the cache absorbs most image traffic: {} hits vs {} misses",
            r.img_hits,
            r.img_misses
        );
    }

    #[test]
    fn db_crash_degrades_gracefully_and_conserves_profile_mass() {
        // MySQL dies mid-run: tomcat's DB RPCs time out, retries are
        // spent, requests are shed, and the clients see classified
        // error pages — while every profiled tier's CCT mass still
        // sums to the simulator's ground-truth compute cycles.
        let r = run_tpcw(TpcwConfig {
            clients: 30,
            duration: 90 * CPU_HZ,
            warmup: 20 * CPU_HZ,
            db_timeout: CPU_HZ / 2,
            faults: Some(TpcwFaults {
                seed: 9,
                db_crash_at: Some(45 * CPU_HZ),
                ..TpcwFaults::default()
            }),
            ..TpcwConfig::default()
        });
        assert!(r.throughput_per_min > 0.0, "pre-crash pages completed");
        assert!(r.app_db_timeouts > 0, "timeouts fired after the crash");
        assert!(r.app_db_retries > 0, "retries were attempted");
        assert!(r.app_sheds > 0, "requests were shed");
        assert!(r.client_errors > 0, "clients saw error pages");
        assert!(!r.errors_by.is_empty(), "errors are classified");
        for (idx, pr) in r.runtimes.iter().enumerate() {
            let w = pr.whodunit.as_ref().unwrap().borrow();
            let cct_sum: u64 = w
                .profiled_contexts()
                .iter()
                .map(|&c| w.cct(c).map_or(0, |t| t.total().cycles))
                .sum();
            assert_eq!(
                cct_sum, r.compute_truth[idx],
                "tier {idx} profile mass diverges from ground truth"
            );
        }
    }

    #[test]
    fn dropped_db_requests_are_retried_transparently() {
        // 20% of tomcat→mysql requests vanish on the wire; the tagged
        // timeout/retry path re-sends them and clients rarely notice.
        let r = run_tpcw(TpcwConfig {
            clients: 20,
            duration: 90 * CPU_HZ,
            warmup: 20 * CPU_HZ,
            db_timeout: CPU_HZ,
            faults: Some(TpcwFaults {
                seed: 11,
                db_chan: whodunit_sim::ChannelFaults {
                    drop_p: 0.2,
                    ..Default::default()
                },
                ..TpcwFaults::default()
            }),
            ..TpcwConfig::default()
        });
        assert!(r.dropped_msgs > 0, "the plan actually dropped messages");
        assert!(r.app_db_retries > 0, "drops surfaced as retries");
        assert!(
            r.throughput_per_min > 50.0,
            "retries keep the site serving: {}",
            r.throughput_per_min
        );
    }

    #[test]
    fn comm_log_covers_every_recv_without_changing_the_run() {
        let mut cfg = TpcwConfig {
            clients: 15,
            duration: 60 * CPU_HZ,
            warmup: 10 * CPU_HZ,
            comm_log: true,
            ..TpcwConfig::default()
        };
        let on = run_tpcw(cfg.clone());
        cfg.comm_log = false;
        let off = run_tpcw(cfg);
        // Observation only: the run is bit-identical either way.
        assert_eq!(on.throughput_per_min, off.throughput_per_min);
        assert_eq!(on.db_served, off.db_served);
        assert_eq!(on.compute_truth, off.compute_truth);
        let log = on.comm.expect("comm log requested");
        assert!(off.comm.is_none());
        // Ground truth attributes every recv to one send and one root.
        assert!(log.recv_count() > 1000, "recvs {}", log.recv_count());
        assert_eq!(log.truth_pairs().len(), log.recv_count());
        assert_eq!(log.truth_origins().len(), log.recv_count());
    }

    #[test]
    fn mysql_contexts_distinguish_interactions() {
        let r = quick(60, false, Engine::MyIsam);
        let w = r.runtimes[2].whodunit.as_ref().unwrap().borrow();
        let remote_ctxs = w
            .profiled_contexts()
            .into_iter()
            .filter(|&c| w.ctx_string(c).starts_with("remote("))
            .count();
        // One remote context per interaction type that reached MySQL.
        assert!(remote_ctxs >= 6, "distinct MySQL contexts: {remote_ctxs}");
    }
}
