//! Event-driven DNS cache server (§4.1's second example).
//!
//! "Consider an event-driven DNS server. Two different transactions are
//! possible in this application: one corresponding to a cache hit and
//! the other corresponding to a cache miss. Typically, cache hit and
//! cache miss events are handled by different event handlers. So, two
//! different transaction contexts will be established."
//!
//! The model: a single event-loop thread dispatches `recv_query`, then
//! either `reply_from_cache` (hit) or `forward_query` (miss); upstream
//! responses come back through `upstream_reply`, which caches and
//! answers. Whodunit establishes exactly the two context chains the
//! paper predicts.

use crate::metrics::MeanAcc;
use crate::rtconf::{make_runtime, ProcRuntime, RtKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use whodunit_core::cost::{ms_to_cycles, CPU_HZ};
use whodunit_core::events::EventCtx;
use whodunit_core::frame::FrameId;
use whodunit_core::ids::ChanId;
use whodunit_sim::{Cycles, Msg, Op, Sim, SimConfig, ThreadBody, ThreadCx, Wake};

/// Messages at the DNS server's poll channel.
#[derive(Debug)]
enum DnsMsg {
    Query { qid: u64, name: u32, reply: ChanId },
    UpstreamReply { qid: u64, name: u32 },
}

/// An upstream resolver request.
#[derive(Debug)]
struct UpstreamReq {
    qid: u64,
    name: u32,
    reply: ChanId,
}

struct DnsShared {
    cache: HashMap<u32, u64>,
    pending: HashMap<u64, (ChanId, EventCtx)>,
    /// Cache hits.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
    /// Answers sent.
    pub answers: u64,
}

enum DState {
    Init,
    WaitMsg,
    RecvDone { qid: u64, name: u32, reply: ChanId },
    HitDone { reply: ChanId },
    MissDone { qid: u64, name: u32, reply: ChanId },
    UpstreamDone { reply: ChanId },
    Sent,
}

/// The DNS event loop.
struct DnsLoop {
    shared: Rc<RefCell<DnsShared>>,
    poll: ChanId,
    upstream: ChanId,
    f_recv: FrameId,
    f_hit: FrameId,
    f_fwd: FrameId,
    f_upstream: FrameId,
    state: DState,
}

impl DnsLoop {
    fn dispatch(&self, cx: &mut ThreadCx<'_>, ev: EventCtx, handler: FrameId) {
        cx.runtime()
            .borrow_mut()
            .on_event_dispatch(cx.me(), ev, handler);
        cx.push_frame(handler);
    }

    fn finish(&self, cx: &mut ThreadCx<'_>) -> EventCtx {
        let ev = cx.runtime().borrow_mut().on_event_create(cx.me());
        cx.runtime().borrow_mut().on_handler_done(cx.me());
        cx.pop_frame();
        ev
    }
}

impl ThreadBody for DnsLoop {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match std::mem::replace(&mut self.state, DState::WaitMsg) {
            DState::Init => {
                cx.push_frame(cx.frame("dns_event_loop"));
                self.state = DState::WaitMsg;
                Op::Recv(self.poll)
            }
            DState::WaitMsg => {
                let Wake::Received(msg) = wake else {
                    unreachable!("event loop waits on its poll channel");
                };
                match msg.take::<DnsMsg>() {
                    DnsMsg::Query { qid, name, reply } => {
                        self.dispatch(cx, EventCtx::default(), self.f_recv);
                        self.state = DState::RecvDone { qid, name, reply };
                        Op::Compute(ms_to_cycles(0.05))
                    }
                    DnsMsg::UpstreamReply { qid, name } => {
                        let (reply, ev) = self
                            .shared
                            .borrow_mut()
                            .pending
                            .remove(&qid)
                            .expect("pending query");
                        self.shared.borrow_mut().cache.insert(name, qid);
                        self.dispatch(cx, ev, self.f_upstream);
                        self.state = DState::UpstreamDone { reply };
                        Op::Compute(ms_to_cycles(0.08))
                    }
                }
            }
            DState::RecvDone { qid, name, reply } => {
                let ev = self.finish(cx);
                let hit = self.shared.borrow().cache.contains_key(&name);
                if hit {
                    self.shared.borrow_mut().hits += 1;
                    self.dispatch(cx, ev, self.f_hit);
                    self.state = DState::HitDone { reply };
                    Op::Compute(ms_to_cycles(0.04))
                } else {
                    self.shared.borrow_mut().misses += 1;
                    self.dispatch(cx, ev, self.f_fwd);
                    self.state = DState::MissDone { qid, name, reply };
                    Op::Compute(ms_to_cycles(0.06))
                }
            }
            DState::HitDone { reply } => {
                self.finish(cx);
                self.shared.borrow_mut().answers += 1;
                self.state = DState::Sent;
                Op::Send(reply, Msg::new(0u32, 200))
            }
            DState::MissDone { qid, name, reply } => {
                // The forward handler's continuation (and the client's
                // reply channel) wait for the upstream response.
                let ev = self.finish(cx);
                self.shared.borrow_mut().pending.insert(qid, (reply, ev));
                self.state = DState::Sent;
                Op::Send(
                    self.upstream,
                    Msg::new(
                        UpstreamReq {
                            qid,
                            name,
                            reply: self.poll,
                        },
                        120,
                    ),
                )
            }
            DState::UpstreamDone { reply } => {
                self.finish(cx);
                self.shared.borrow_mut().answers += 1;
                self.state = DState::Sent;
                Op::Send(reply, Msg::new(0u32, 200))
            }
            DState::Sent => {
                self.state = DState::WaitMsg;
                Op::Recv(self.poll)
            }
        }
    }
}

/// The upstream resolver: fixed latency per query.
struct Upstream {
    in_chan: ChanId,
    state: u8,
    pending: Option<UpstreamReq>,
}

impl ThreadBody for Upstream {
    fn resume(&mut self, _cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match self.state {
            0 => {
                self.state = 1;
                Op::Recv(self.in_chan)
            }
            1 => {
                let Wake::Received(msg) = wake else {
                    unreachable!("upstream waits for queries");
                };
                self.pending = Some(msg.take::<UpstreamReq>());
                self.state = 2;
                // Recursive resolution takes a while.
                Op::Sleep(ms_to_cycles(30.0))
            }
            2 => {
                let r = self.pending.take().expect("query pending");
                self.state = 3;
                Op::Send(
                    r.reply,
                    Msg::new(
                        DnsMsg::UpstreamReply {
                            qid: r.qid,
                            name: r.name,
                        },
                        300,
                    ),
                )
            }
            _ => {
                self.state = 1;
                Op::Recv(self.in_chan)
            }
        }
    }
}

/// A closed-loop DNS client.
struct DnsClient {
    rng: SmallRng,
    server: ChanId,
    reply: ChanId,
    id: u64,
    seq: u64,
    names: u32,
    rt_acc: Rc<RefCell<MeanAcc>>,
    sent_at: Cycles,
    state: u8,
}

impl ThreadBody for DnsClient {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match self.state {
            0 => {
                self.seq += 1;
                let name = self.rng.gen_range(0..self.names);
                self.sent_at = cx.now();
                self.state = 1;
                Op::Send(
                    self.server,
                    Msg::new(
                        DnsMsg::Query {
                            qid: (self.id << 32) | self.seq,
                            name,
                            reply: self.reply,
                        },
                        100,
                    ),
                )
            }
            1 => {
                self.state = 2;
                Op::Recv(self.reply)
            }
            2 => {
                let Wake::Received(_) = wake else {
                    unreachable!("client waits for the answer");
                };
                self.rt_acc.borrow_mut().add(cx.now() - self.sent_at);
                self.state = 0;
                Op::Sleep(ms_to_cycles(5.0))
            }
            _ => Op::Exit,
        }
    }
}

/// Harness configuration.
#[derive(Clone, Debug)]
pub struct DnsConfig {
    /// Closed-loop clients.
    pub clients: u32,
    /// Distinct names queried (cache key space).
    pub names: u32,
    /// Profiler for the server process.
    pub rt: RtKind,
    /// Virtual duration.
    pub duration: Cycles,
}

impl Default for DnsConfig {
    fn default() -> Self {
        DnsConfig {
            clients: 8,
            names: 400,
            rt: RtKind::Whodunit,
            duration: 10 * CPU_HZ,
        }
    }
}

/// Results of one DNS run.
pub struct DnsReport {
    /// Answers served.
    pub answers: u64,
    /// Cache hits.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
    /// Mean client-observed latency in cycles.
    pub mean_rt: f64,
    /// The server runtime.
    pub runtime: ProcRuntime,
}

/// Runs the DNS server experiment.
pub fn run_dnsd(cfg: DnsConfig) -> DnsReport {
    let mut sim = Sim::new(SimConfig::default());
    let server_m = sim.add_machine(1);
    let net_m = sim.add_machine(2);

    let pr = make_runtime(cfg.rt, whodunit_core::ids::ProcId(0), "dnsd", sim.frames().clone());
    let server_proc = sim.add_process("dnsd", pr.rt.clone());
    let other_proc = sim.add_unprofiled_process("net");

    let poll = sim.add_channel(60_000, 4);
    let upstream_chan = sim.add_channel(240_000, 8);

    let shared = Rc::new(RefCell::new(DnsShared {
        cache: HashMap::new(),
        pending: HashMap::new(),
        hits: 0,
        misses: 0,
        answers: 0,
    }));
    let f_recv = sim.frame("recv_query");
    let f_hit = sim.frame("reply_from_cache");
    let f_fwd = sim.frame("forward_query");
    let f_upstream = sim.frame("upstream_reply");
    sim.spawn(
        server_proc,
        server_m,
        "dns_loop",
        Box::new(DnsLoop {
            shared: shared.clone(),
            poll,
            upstream: upstream_chan,
            f_recv,
            f_hit,
            f_fwd,
            f_upstream,
            state: DState::Init,
        }),
    );
    for i in 0..4 {
        sim.spawn(
            other_proc,
            net_m,
            &format!("upstream{i}"),
            Box::new(Upstream {
                in_chan: upstream_chan,
                state: 0,
                pending: None,
            }),
        );
    }
    let rt_acc = Rc::new(RefCell::new(MeanAcc::default()));
    for i in 0..cfg.clients {
        let reply = sim.add_channel(60_000, 4);
        sim.spawn(
            other_proc,
            net_m,
            &format!("resolver{i}"),
            Box::new(DnsClient {
                rng: SmallRng::seed_from_u64(77 ^ (i as u64) << 8),
                server: poll,
                reply,
                id: i as u64,
                seq: 0,
                names: cfg.names,
                rt_acc: rt_acc.clone(),
                sent_at: 0,
                state: 0,
            }),
        );
    }
    sim.run_until(cfg.duration);
    let mean_rt = rt_acc.borrow().mean();
    let sh = shared.borrow();
    DnsReport {
        answers: sh.answers,
        hits: sh.hits,
        misses: sh.misses,
        mean_rt,
        runtime: pr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dns_establishes_hit_and_miss_contexts() {
        let r = run_dnsd(DnsConfig::default());
        assert!(r.answers > 500, "answers {}", r.answers);
        assert!(r.hits > 0 && r.misses > 0);
        let w = r.runtime.whodunit.as_ref().unwrap().borrow();
        let ctxs: Vec<String> = w
            .profiled_contexts()
            .iter()
            .map(|&c| w.ctx_string(c))
            .collect();
        // §4.1: exactly the two transaction shapes.
        assert!(
            ctxs.iter().any(|s| s == "recv_query -> reply_from_cache"),
            "hit context: {ctxs:?}"
        );
        assert!(
            ctxs.iter()
                .any(|s| s == "recv_query -> forward_query -> upstream_reply"),
            "miss context: {ctxs:?}"
        );
    }

    #[test]
    fn cache_hits_dominate_with_a_small_name_space() {
        let r = run_dnsd(DnsConfig {
            names: 50,
            ..DnsConfig::default()
        });
        assert!(
            r.hits > 5 * r.misses,
            "{} hits vs {} misses",
            r.hits,
            r.misses
        );
        assert!(r.mean_rt > 0.0);
    }

    #[test]
    fn runs_unprofiled_too() {
        let r = run_dnsd(DnsConfig {
            rt: RtKind::None,
            duration: 3 * CPU_HZ,
            ..DnsConfig::default()
        });
        assert!(r.answers > 100);
    }
}
