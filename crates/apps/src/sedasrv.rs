//! Haboob-like SEDA web server (Figure 10, §8.3, §9.3).
//!
//! The stage graph follows Figure 10:
//!
//! ```text
//! ListenStage → HttpServer → ReadStage → HttpRecv → CacheStage
//!                      hit ↘                         ↓ miss
//!                      WriteStage ← File I/O Stage ← MissStage
//! ```
//!
//! Each stage is a [`whodunit_sim::seda::StageWorker`] pool consuming
//! from its stage queue; queue elements carry transaction contexts via
//! the Figure 5 hooks, so a request's context at WriteStage is either
//! the hit path `[Listen…Cache, Write]` or the miss path
//! `[…Cache, Miss, FileIO, Write]` — letting Whodunit report the two
//! WriteStage appearances separately (37.65% vs 46.58% in the paper).
//!
//! Connections (with their request lists) traverse the pipeline as
//! single elements; CacheStage splits a connection's files into a hit
//! batch and a miss batch.

use crate::metrics::mbps;
use crate::rtconf::{make_runtime, ProcRuntime, RtKind};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use whodunit_core::cost::CPU_HZ;
use whodunit_core::ids::{ChanId, LockMode};
use whodunit_sim::seda::{StageOutcome, StageQueue, StageWorker};
use whodunit_sim::{Cycles, Msg, Op, Sim, SimConfig, ThreadBody, ThreadCx, Wake};
use whodunit_workload::{WebTrace, WebTraceConfig};

/// Per-connection stage costs.
const LISTEN_COST: Cycles = 90_000;
const HTTPSERVER_COST: Cycles = 80_000;
const READ_COST: Cycles = 110_000;
const RECV_COST: Cycles = 80_000;
const CACHE_COST: Cycles = 110_000;
const MISS_BASE: Cycles = 150_000;
/// File-I/O cost per byte read from disk (miss path).
const FILEIO_PER_BYTE: Cycles = 260;
const FILEIO_BASE: Cycles = 120_000;
/// Write cost per byte (Haboob's Java I/O path is expensive).
const WRITE_PER_BYTE: Cycles = 380;
const WRITE_BASE: Cycles = 70_000;

/// A connection travelling the pipeline.
#[derive(Debug)]
struct ConnElem {
    files: Vec<(u32, u64)>,
    reply: ChanId,
}

/// Shared server state.
pub struct HaboobShared {
    /// File cache: present files.
    cache: HashMap<u32, u64>,
    cache_bytes: u64,
    cache_capacity: u64,
    /// Bytes served.
    pub served_bytes: u64,
    /// Requests (files) served.
    pub served_reqs: u64,
    /// Hit/miss counts per file request.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
}

impl HaboobShared {
    fn cache_insert(&mut self, file: u32, bytes: u64) {
        if self.cache.contains_key(&file) {
            return;
        }
        // Crude capacity bound: refuse inserts beyond capacity (Haboob
        // keeps a bounded page cache; eviction details don't matter for
        // the profile shape).
        if self.cache_bytes + bytes > self.cache_capacity {
            return;
        }
        self.cache_bytes += bytes;
        self.cache.insert(file, bytes);
    }
}

/// The acceptor: injects arriving connections into ListenStage's queue.
struct Acceptor {
    in_chan: ChanId,
    listen_q: Rc<RefCell<StageQueue>>,
    state: AState,
}

enum AState {
    WaitConn,
    Locked(Option<ConnElem>),
    Pushed,
    Notified,
}

impl ThreadBody for Acceptor {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match std::mem::replace(&mut self.state, AState::WaitConn) {
            AState::WaitConn => match wake {
                Wake::Start => {
                    self.state = AState::WaitConn;
                    Op::Recv(self.in_chan)
                }
                Wake::Received(msg) => {
                    let elem = msg.take::<ConnElem>();
                    self.state = AState::Locked(Some(elem));
                    Op::Lock(self.listen_q.borrow().lock, LockMode::Exclusive)
                }
                _ => unreachable!("acceptor waits for connections"),
            },
            AState::Locked(elem) => {
                let elem = elem.expect("element present");
                let ctx = cx.runtime().borrow_mut().on_stage_make_elem(cx.me());
                self.listen_q.borrow_mut().push(ctx, Box::new(elem));
                self.state = AState::Pushed;
                Op::Unlock(self.listen_q.borrow().lock)
            }
            AState::Pushed => {
                self.state = AState::Notified;
                Op::Notify(self.listen_q.borrow().cond, false)
            }
            AState::Notified => {
                self.state = AState::WaitConn;
                Op::Recv(self.in_chan)
            }
        }
    }
}

/// Haboob experiment configuration.
#[derive(Clone, Debug)]
pub struct HaboobConfig {
    /// Closed-loop clients.
    pub clients: u32,
    /// Cache capacity in bytes.
    pub cache_bytes: u64,
    /// Profiler installed in the server process.
    pub rt: RtKind,
    /// Virtual run duration.
    pub duration: Cycles,
    /// Trace parameters.
    pub trace: WebTraceConfig,
    /// Worker threads per stage.
    pub workers_per_stage: u32,
}

impl Default for HaboobConfig {
    fn default() -> Self {
        HaboobConfig {
            clients: 24,
            cache_bytes: 2 * 1024 * 1024,
            rt: RtKind::Whodunit,
            duration: 20 * CPU_HZ,
            trace: WebTraceConfig {
                files: 5000,
                ..WebTraceConfig::default()
            },
            workers_per_stage: 2,
        }
    }
}

/// Results of one Haboob run.
pub struct HaboobReport {
    /// Client-facing throughput in Mb/s.
    pub throughput_mbps: f64,
    /// Requests (files) served.
    pub reqs: u64,
    /// Request hit fraction.
    pub hit_rate: f64,
    /// The server's profiling runtime.
    pub runtime: ProcRuntime,
    /// Virtual duration.
    pub duration: Cycles,
}

/// The same closed-loop client as the httpd harness: sends a whole
/// connection (its request list), reads one response per file.
struct HaboobClient {
    trace: WebTrace,
    server: ChanId,
    reply: ChanId,
    outstanding: usize,
}

impl HaboobClient {
    fn next_conn(&mut self) -> ConnElem {
        let mut files = Vec::new();
        loop {
            let r = self.trace.next_request();
            files.push((r.file, r.bytes));
            if r.last_on_connection {
                break;
            }
        }
        ConnElem {
            files,
            reply: self.reply,
        }
    }
}

impl ThreadBody for HaboobClient {
    fn resume(&mut self, _cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match wake {
            Wake::Start | Wake::Done if self.outstanding == 0 => {
                let conn = self.next_conn();
                self.outstanding = conn.files.len();
                Op::Send(self.server, Msg::new(conn, 400))
            }
            Wake::Done => Op::Recv(self.reply),
            Wake::Received(_) => {
                self.outstanding -= 1;
                if self.outstanding == 0 {
                    let conn = self.next_conn();
                    self.outstanding = conn.files.len();
                    Op::Send(self.server, Msg::new(conn, 400))
                } else {
                    Op::Recv(self.reply)
                }
            }
            _ => unreachable!("client wakes: start/done/received"),
        }
    }
}

/// Runs the Haboob-like SEDA server.
pub fn run_haboob(cfg: HaboobConfig) -> HaboobReport {
    let mut sim = Sim::new(SimConfig::default());
    let server_m = sim.add_machine(1);
    let client_m = sim.add_machine(8);

    let pr = make_runtime(
        cfg.rt,
        whodunit_core::ids::ProcId(0),
        "haboob",
        sim.frames().clone(),
    );
    let server_proc = sim.add_process("haboob", pr.rt.clone());
    let client_proc = sim.add_unprofiled_process("clients");

    let in_chan = sim.add_channel(240_000, 20);

    let shared = Rc::new(RefCell::new(HaboobShared {
        cache: HashMap::new(),
        cache_bytes: 0,
        cache_capacity: cfg.cache_bytes,
        served_bytes: 0,
        served_reqs: 0,
        hits: 0,
        misses: 0,
    }));

    // Build the stage queues.
    let mk_q = |sim: &mut Sim| {
        let l = sim.add_lock();
        let c = sim.add_cond();
        StageQueue::new(l, c)
    };
    let q_listen = mk_q(&mut sim);
    let q_httpserver = mk_q(&mut sim);
    let q_read = mk_q(&mut sim);
    let q_recv = mk_q(&mut sim);
    let q_cache = mk_q(&mut sim);
    let q_miss = mk_q(&mut sim);
    let q_fileio = mk_q(&mut sim);
    let q_write = mk_q(&mut sim);

    let f_listen = sim.frame("ListenStage");
    let f_httpserver = sim.frame("HttpServer");
    let f_read = sim.frame("ReadStage");
    let f_recv = sim.frame("HttpRecv");
    let f_cache = sim.frame("CacheStage");
    let f_miss = sim.frame("MissStage");
    let f_fileio = sim.frame("FileIoStage");
    let f_write = sim.frame("WriteStage");

    // Simple pass-through stages.
    type Handler = Box<dyn FnMut(&mut ThreadCx<'_>, Box<dyn std::any::Any>) -> StageOutcome>;
    let passthrough = |next: Rc<RefCell<StageQueue>>, cost: Cycles| -> Handler {
        Box::new(move |_cx, data| {
            let elem = data.downcast::<ConnElem>().expect("conn element");
            StageOutcome::compute(cost).emit(&next, *elem)
        })
    };

    let spawn_stage = |sim: &mut Sim,
                       name: &str,
                       frame: whodunit_core::frame::FrameId,
                       q: &Rc<RefCell<StageQueue>>,
                       n: u32,
                       mk: &mut dyn FnMut() -> Handler| {
        for i in 0..n {
            sim.spawn(
                server_proc,
                server_m,
                &format!("{name}{i}"),
                StageWorker::new(frame, q.clone(), mk()),
            );
        }
    };

    let n = cfg.workers_per_stage;
    {
        let next = q_httpserver.clone();
        spawn_stage(&mut sim, "listen", f_listen, &q_listen, 1, &mut || {
            passthrough(next.clone(), LISTEN_COST)
        });
    }
    {
        let next = q_read.clone();
        spawn_stage(
            &mut sim,
            "httpserver",
            f_httpserver,
            &q_httpserver,
            1,
            &mut || passthrough(next.clone(), HTTPSERVER_COST),
        );
    }
    {
        let next = q_recv.clone();
        spawn_stage(&mut sim, "read", f_read, &q_read, n, &mut || {
            passthrough(next.clone(), READ_COST)
        });
    }
    {
        let next = q_cache.clone();
        spawn_stage(&mut sim, "httprecv", f_recv, &q_recv, n, &mut || {
            passthrough(next.clone(), RECV_COST)
        });
    }
    {
        // CacheStage: split into hit batch (→ WriteStage) and miss
        // batch (→ MissStage).
        let sh = shared.clone();
        let qw = q_write.clone();
        let qm = q_miss.clone();
        spawn_stage(&mut sim, "cache", f_cache, &q_cache, n, &mut || {
            let sh = sh.clone();
            let qw = qw.clone();
            let qm = qm.clone();
            Box::new(move |_cx, data| {
                let elem = data.downcast::<ConnElem>().expect("conn element");
                let ConnElem { files, reply } = *elem;
                let mut hits = Vec::new();
                let mut misses = Vec::new();
                {
                    let mut s = sh.borrow_mut();
                    for (f, b) in files {
                        if s.cache.contains_key(&f) {
                            s.hits += 1;
                            hits.push((f, b));
                        } else {
                            s.misses += 1;
                            misses.push((f, b));
                        }
                    }
                }
                let mut out = StageOutcome::compute(CACHE_COST);
                if !hits.is_empty() {
                    out = out.emit(&qw, ConnElem { files: hits, reply });
                }
                if !misses.is_empty() {
                    out = out.emit(
                        &qm,
                        ConnElem {
                            files: misses,
                            reply,
                        },
                    );
                }
                out
            })
        });
    }
    {
        let next = q_fileio.clone();
        spawn_stage(&mut sim, "miss", f_miss, &q_miss, n, &mut || {
            passthrough(next.clone(), MISS_BASE)
        });
    }
    {
        // File I/O: read the files from disk, insert into the cache.
        let sh = shared.clone();
        let qw = q_write.clone();
        spawn_stage(&mut sim, "fileio", f_fileio, &q_fileio, n, &mut || {
            let sh = sh.clone();
            let qw = qw.clone();
            Box::new(move |_cx, data| {
                let elem = data.downcast::<ConnElem>().expect("conn element");
                let bytes: u64 = elem.files.iter().map(|&(_, b)| b).sum();
                {
                    let mut s = sh.borrow_mut();
                    for &(f, b) in &elem.files {
                        s.cache_insert(f, b);
                    }
                }
                StageOutcome::compute(FILEIO_BASE + bytes * FILEIO_PER_BYTE).emit(&qw, *elem)
            })
        });
    }
    {
        // WriteStage: send each file's bytes back to the client.
        let sh = shared.clone();
        spawn_stage(&mut sim, "write", f_write, &q_write, n + 2, &mut || {
            let sh = sh.clone();
            Box::new(move |_cx, data| {
                let elem = data.downcast::<ConnElem>().expect("conn element");
                let bytes: u64 = elem.files.iter().map(|&(_, b)| b).sum();
                let mut out = StageOutcome::compute(WRITE_BASE + bytes * WRITE_PER_BYTE);
                {
                    let mut s = sh.borrow_mut();
                    s.served_bytes += bytes;
                    s.served_reqs += elem.files.len() as u64;
                }
                for &(_, b) in &elem.files {
                    out = out.send(elem.reply, Msg::new(b, b));
                }
                out
            })
        });
    }

    sim.spawn(
        server_proc,
        server_m,
        "acceptor",
        Box::new(Acceptor {
            in_chan,
            listen_q: q_listen.clone(),
            state: AState::WaitConn,
        }),
    );

    for i in 0..cfg.clients {
        let reply = sim.add_channel(240_000, 20);
        let mut tc = cfg.trace.clone();
        tc.stream = i as u64 + 1;
        sim.spawn(
            client_proc,
            client_m,
            &format!("client{i}"),
            Box::new(HaboobClient {
                trace: WebTrace::new(tc),
                server: in_chan,
                reply,
                outstanding: 0,
            }),
        );
    }

    sim.run_until(cfg.duration);

    let sh = shared.borrow();
    let hit_rate = if sh.hits + sh.misses == 0 {
        0.0
    } else {
        sh.hits as f64 / (sh.hits + sh.misses) as f64
    };
    HaboobReport {
        throughput_mbps: mbps(sh.served_bytes, cfg.duration),
        reqs: sh.served_reqs,
        hit_rate,
        runtime: pr,
        duration: cfg.duration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(rt: RtKind) -> HaboobReport {
        run_haboob(HaboobConfig {
            clients: 12,
            duration: 6 * CPU_HZ,
            rt,
            ..HaboobConfig::default()
        })
    }

    #[test]
    fn haboob_serves_requests() {
        let r = quick(RtKind::Whodunit);
        assert!(r.reqs > 100, "reqs {}", r.reqs);
        assert!(r.hit_rate > 0.2, "hit rate {}", r.hit_rate);
        assert!(r.throughput_mbps > 1.0, "tput {}", r.throughput_mbps);
    }

    #[test]
    fn write_stage_appears_in_hit_and_miss_contexts() {
        // Figure 10: WriteStage reached via the cache-hit path and via
        // MissStage → FileIoStage.
        let r = quick(RtKind::Whodunit);
        let w = r.runtime.whodunit.as_ref().unwrap().borrow();
        let ctxs: Vec<String> = w
            .profiled_contexts()
            .iter()
            .map(|&c| w.ctx_string(c))
            .collect();
        let hit = "ListenStage -> HttpServer -> ReadStage -> HttpRecv -> CacheStage -> WriteStage";
        let miss = "ListenStage -> HttpServer -> ReadStage -> HttpRecv -> CacheStage -> MissStage -> FileIoStage -> WriteStage";
        assert!(ctxs.iter().any(|s| s == hit), "hit path missing: {ctxs:?}");
        assert!(
            ctxs.iter().any(|s| s == miss),
            "miss path missing: {ctxs:?}"
        );
    }

    #[test]
    fn profiling_overhead_is_moderate() {
        let base = quick(RtKind::None);
        let prof = quick(RtKind::Whodunit);
        let oh = 1.0 - prof.throughput_mbps / base.throughput_mbps;
        assert!(oh < 0.15, "overhead {:.1}%", oh * 100.0);
    }
}
