//! Behavioural models of the paper's subject systems, built on the
//! `whodunit-sim` substrate.
//!
//! | Module | Models | Paper use |
//! |---|---|---|
//! | [`httpd`] | Apache 2.x: listener + worker pool sharing a VM-emulated fd queue (Figure 1) | Fig 8, §9.2, Table 3 |
//! | [`dbserver`] | MySQL 4.x: tables, MyISAM table locks vs InnoDB row locks, query cost model, the §8.1 shared counter | Table 1, Figs 11–12 |
//! | [`proxy`] | Squid: event-driven proxy cache (`httpAccept`, `clientReadRequest`, `commConnectHandle`, `httpReadReply`, `commHandleWrite`) | Fig 9, §9.3 |
//! | [`sedasrv`] | Haboob: SEDA web server (ListenStage … WriteStage) | Fig 10, §9.3 |
//! | [`appserver`] | Tomcat: one servlet per TPC-W interaction, DB RPCs, optional 30 s result caching | §8.4, Table 2 |
//! | [`tpcw`] | The 3-tier assembly squid → tomcat → mysql with closed-loop clients | Table 1, Figs 11–12, Table 2 |
//!
//! Each module exposes a `run_*` harness that wires a complete
//! simulation, runs it for a configured virtual duration, and returns a
//! report with the measurements the corresponding table/figure needs.
//!
//! [`chaos`] is the exception: it does not model a subject system but
//! materializes sampled chaos scenarios (schedule policy + fault plan)
//! onto the [`tpcw`] assembly and checks the
//! [`whodunit_core::oracle`]s after each run.
//!
//! [`zoo`] steps beyond the paper's subjects: a topology zoo (fan-out
//! graph, pub/sub bus, write-through cache pair) with time-varying
//! load shapes, built to exercise black-box inference stitching
//! (`whodunit-infer`) and its ground-truth scoring.

#![warn(missing_docs)]

pub mod appserver;
pub mod chaos;
pub mod dbserver;
pub mod dnsd;
pub mod federation;
pub mod httpd;
pub mod metrics;
pub mod proxy;
pub mod rtconf;
pub mod sedasrv;
pub mod sentinel;
pub mod tpcw;
pub mod zoo;
