//! Tomcat-like servlet container (§8.4).
//!
//! A pool of worker threads serves page requests; each TPC-W
//! interaction is implemented by its own servlet (a distinct call-path
//! frame, which is what lets Whodunit extend a separate transaction
//! context from Tomcat to MySQL per interaction). A servlet computes,
//! issues its database RPC, renders, and replies.
//!
//! With [`AppServerConfig::caching`] enabled, the BestSellers and
//! SearchResult servlets cache their query results for 30 seconds
//! (TPC-W clause 6.3.3.1), the optimization Figures 11/12 evaluate.

use crate::dbserver::{DbReply, DbReq};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use whodunit_core::cost::ms_to_cycles;
use whodunit_core::frame::FrameId;
use whodunit_core::ids::ChanId;
use whodunit_sim::{Cycles, Msg, Op, Sim, ThreadBody, ThreadCx, Wake};
use whodunit_workload::Interaction;

/// A page request from the tier above (squid).
#[derive(Debug)]
pub struct PageReq {
    /// The interaction to execute.
    pub interaction: Interaction,
    /// Key for caches/rows (subject id, search term, item row…).
    pub key: u64,
    /// Routing tag the requester uses to match the reply.
    pub tag: u64,
    /// Channel to reply on.
    pub reply: ChanId,
}

/// A static-content request (image/thumbnail; §8.4's static content).
#[derive(Debug)]
pub struct StaticReq {
    /// Object id.
    pub id: u64,
    /// Channel to reply on.
    pub reply: ChanId,
}

/// A static object.
#[derive(Debug)]
pub struct StaticReply {
    /// Object id.
    pub id: u64,
    /// Object size in bytes.
    pub bytes: u64,
}

/// Bytes per static image.
pub const IMAGE_BYTES: u64 = 4 * 1024;

/// A rendered page.
#[derive(Debug)]
pub struct PageReply {
    /// The interaction that was executed.
    pub interaction: Interaction,
    /// The requester's routing tag.
    pub tag: u64,
    /// `false` when the server shed the request (its database RPC
    /// exhausted the timeout/retry budget) and the page is an error
    /// page rather than a result.
    pub ok: bool,
}

/// Application-server configuration.
#[derive(Clone, Copy, Debug)]
pub struct AppServerConfig {
    /// Worker threads.
    pub workers: u32,
    /// Enable the §8.4 result caching optimization.
    pub caching: bool,
    /// CPU cost of servlet logic per request.
    pub servlet_cost: Cycles,
    /// CPU cost of rendering the response.
    pub render_cost: Cycles,
    /// Cache TTL (TPC-W allows 30 s).
    pub cache_ttl: Cycles,
    /// How long a worker waits for its database reply before
    /// resending. Generous by default so healthy runs never time out.
    pub db_timeout: Cycles,
    /// Resend attempts per request after the first send.
    pub db_retries: u32,
    /// Server-wide budget of resends; once spent, timed-out requests
    /// are shed immediately instead of retried (retry storms under a
    /// dead database would otherwise triple its queue).
    pub retry_budget: u64,
}

impl Default for AppServerConfig {
    fn default() -> Self {
        AppServerConfig {
            workers: 96,
            caching: false,
            servlet_cost: ms_to_cycles(5.0),
            render_cost: ms_to_cycles(1.0),
            cache_ttl: 30 * whodunit_core::cost::CPU_HZ,
            db_timeout: 30 * whodunit_core::cost::CPU_HZ,
            db_retries: 2,
            retry_budget: 1 << 20,
        }
    }
}

/// Internal calls per servlet cycle (drives the gprof baseline; Java
/// servlet code is call-dense).
pub const CYCLES_PER_CALL: u64 = 700;

/// Shared application-server state.
pub struct AppShared {
    cfg: AppServerConfig,
    /// `(interaction, key)` → cache-entry expiry time.
    cache: HashMap<(Interaction, u64), Cycles>,
    /// Database queries issued.
    pub db_queries: u64,
    /// Cache hits (queries avoided).
    pub cache_hits: u64,
    /// Pages served.
    pub pages: u64,
    /// Database RPC timeouts fired.
    pub db_timeouts: u64,
    /// Database RPC resends (consumed from [`AppServerConfig::retry_budget`]).
    pub db_retries_used: u64,
    /// Requests shed with an error page.
    pub sheds: u64,
    /// Replies that arrived after their request had been timed out
    /// (recognized by the [`DbReq::tag`] echo and discarded).
    pub late_db_replies: u64,
}

impl AppShared {
    fn cacheable(&self, i: Interaction) -> bool {
        self.cfg.caching && matches!(i, Interaction::BestSellers | Interaction::SearchResult)
    }

    fn cache_lookup(&mut self, i: Interaction, key: u64, now: Cycles) -> bool {
        if !self.cacheable(i) {
            return false;
        }
        match self.cache.get(&(i, key)) {
            Some(&expiry) if expiry > now => {
                self.cache_hits += 1;
                true
            }
            _ => false,
        }
    }

    fn cache_insert(&mut self, i: Interaction, key: u64, now: Cycles) {
        if self.cacheable(i) {
            let ttl = self.cfg.cache_ttl;
            self.cache.insert((i, key), now + ttl);
        }
    }

    /// Consumes one resend from the server-wide budget; `false` means
    /// the budget is spent and the caller must shed instead.
    fn try_take_retry(&mut self) -> bool {
        if self.db_retries_used < self.cfg.retry_budget {
            self.db_retries_used += 1;
            true
        } else {
            false
        }
    }
}

enum SState {
    Init,
    WaitReq,
    Serviced(Option<PageReq>),
    WaitDb {
        req: Option<PageReq>,
        /// Resends already issued for this request.
        attempts: u32,
        /// Tag of the outstanding [`DbReq`]; replies carrying an older
        /// tag are late duplicates and are discarded.
        tag: u64,
    },
    Rendered {
        req: Option<PageReq>,
        ok: bool,
    },
    StaticServed(Option<StaticReq>),
    Replied,
}

struct ServletWorker {
    shared: Rc<RefCell<AppShared>>,
    in_chan: ChanId,
    db_chan: ChanId,
    db_reply: ChanId,
    f_main: FrameId,
    f_servlets: HashMap<Interaction, FrameId>,
    f_call: FrameId,
    f_static: FrameId,
    /// Monotonic source of [`DbReq::tag`] values for this worker.
    next_tag: u64,
    state: SState,
}

impl ThreadBody for ServletWorker {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match std::mem::replace(&mut self.state, SState::WaitReq) {
            SState::Init => {
                cx.push_frame(self.f_main);
                self.state = SState::WaitReq;
                Op::Recv(self.in_chan)
            }
            SState::WaitReq => {
                let Wake::Received(msg) = wake else {
                    unreachable!("servlet worker waits for requests");
                };
                match msg.try_take::<PageReq>() {
                    Ok(req) => {
                        cx.push_frame(self.f_servlets[&req.interaction]);
                        let cost = self.shared.borrow().cfg.servlet_cost;
                        cx.count_calls(self.f_call, cost / CYCLES_PER_CALL);
                        self.state = SState::Serviced(Some(req));
                        Op::Compute(cost)
                    }
                    Err(msg) => {
                        // Static content: served from disk, no DB.
                        let req = msg.take::<StaticReq>();
                        cx.push_frame(self.f_static);
                        self.state = SState::StaticServed(Some(req));
                        Op::Compute(ms_to_cycles(0.3))
                    }
                }
            }
            SState::StaticServed(req) => {
                let r = req.expect("static request present");
                cx.pop_frame();
                self.state = SState::Replied;
                Op::Send(
                    r.reply,
                    Msg::new(
                        StaticReply {
                            id: r.id,
                            bytes: IMAGE_BYTES,
                        },
                        IMAGE_BYTES,
                    ),
                )
            }
            SState::Serviced(req) => {
                let r = req.as_ref().expect("request present");
                let hit = self
                    .shared
                    .borrow_mut()
                    .cache_lookup(r.interaction, r.key, cx.now());
                if hit {
                    let cost = self.shared.borrow().cfg.render_cost;
                    self.state = SState::Rendered { req, ok: true };
                    Op::Compute(cost)
                } else {
                    self.shared.borrow_mut().db_queries += 1;
                    self.next_tag += 1;
                    let tag = self.next_tag;
                    let db_req = DbReq {
                        interaction: r.interaction,
                        row: r.key,
                        tag,
                        reply: self.db_reply,
                    };
                    self.state = SState::WaitDb {
                        req,
                        attempts: 0,
                        tag,
                    };
                    Op::Send(self.db_chan, Msg::new(db_req, 600))
                }
            }
            SState::WaitDb { req, attempts, tag } => match wake {
                Wake::Done => {
                    let timeout = self.shared.borrow().cfg.db_timeout;
                    self.state = SState::WaitDb { req, attempts, tag };
                    Op::RecvTimeout(self.db_reply, timeout)
                }
                Wake::Received(msg) => {
                    let rep = msg.take::<DbReply>();
                    if rep.tag != tag {
                        // A reply to an attempt we already timed out
                        // on; the current attempt is still in flight.
                        let timeout = self.shared.borrow().cfg.db_timeout;
                        self.shared.borrow_mut().late_db_replies += 1;
                        self.state = SState::WaitDb { req, attempts, tag };
                        return Op::RecvTimeout(self.db_reply, timeout);
                    }
                    let r = req.as_ref().expect("request present");
                    self.shared
                        .borrow_mut()
                        .cache_insert(r.interaction, r.key, cx.now());
                    let cost = self.shared.borrow().cfg.render_cost;
                    self.state = SState::Rendered { req, ok: true };
                    Op::Compute(cost)
                }
                Wake::RecvTimedOut => {
                    let retry = {
                        let mut sh = self.shared.borrow_mut();
                        sh.db_timeouts += 1;
                        attempts < sh.cfg.db_retries && sh.try_take_retry()
                    };
                    if retry {
                        let r = req.as_ref().expect("request present");
                        self.next_tag += 1;
                        let tag = self.next_tag;
                        let db_req = DbReq {
                            interaction: r.interaction,
                            row: r.key,
                            tag,
                            reply: self.db_reply,
                        };
                        self.state = SState::WaitDb {
                            req,
                            attempts: attempts + 1,
                            tag,
                        };
                        Op::Send(self.db_chan, Msg::new(db_req, 600))
                    } else {
                        // Shed: render a cheap error page instead of
                        // waiting on a database that is not answering.
                        self.shared.borrow_mut().sheds += 1;
                        self.state = SState::Rendered { req, ok: false };
                        Op::Compute(ms_to_cycles(0.1))
                    }
                }
                _ => unreachable!("WaitDb sees send-done, reply, or timeout"),
            },
            SState::Rendered { req, ok } => {
                let r = req.expect("request present");
                cx.pop_frame();
                if ok {
                    self.shared.borrow_mut().pages += 1;
                }
                self.state = SState::Replied;
                Op::Send(
                    r.reply,
                    Msg::new(
                        PageReply {
                            interaction: r.interaction,
                            tag: r.tag,
                            ok,
                        },
                        8 * 1024,
                    ),
                )
            }
            SState::Replied => {
                self.state = SState::WaitReq;
                Op::Recv(self.in_chan)
            }
        }
    }
}

/// Handles returned by [`build_appserver`].
pub struct AppHandles {
    /// The page-request channel.
    pub req_chan: ChanId,
    /// Shared state (cache stats).
    pub shared: Rc<RefCell<AppShared>>,
}

/// Builds the application-server tier into `sim`.
pub fn build_appserver(
    sim: &mut Sim,
    proc: whodunit_core::ids::ProcId,
    machine: whodunit_sim::MachineId,
    db_chan: ChanId,
    cfg: AppServerConfig,
) -> AppHandles {
    let shared = Rc::new(RefCell::new(AppShared {
        cfg,
        cache: HashMap::new(),
        db_queries: 0,
        cache_hits: 0,
        pages: 0,
        db_timeouts: 0,
        db_retries_used: 0,
        sheds: 0,
        late_db_replies: 0,
    }));
    let req_chan = sim.add_channel(240_000, 20);
    let f_main = sim.frame("tomcat_service");
    let f_call = sim.frame("servlet_internal");
    let f_static = sim.frame("default_servlet_static");
    let mut f_servlets = HashMap::new();
    for it in Interaction::ALL {
        f_servlets.insert(it, sim.frame(it.servlet()));
    }
    for i in 0..cfg.workers {
        let db_reply = sim.add_channel(240_000, 20);
        sim.spawn(
            proc,
            machine,
            &format!("tomcat{i}"),
            Box::new(ServletWorker {
                shared: shared.clone(),
                in_chan: req_chan,
                db_chan,
                db_reply,
                f_main,
                f_servlets: f_servlets.clone(),
                f_call,
                f_static,
                next_tag: 0,
                state: SState::Init,
            }),
        );
    }
    AppHandles { req_chan, shared }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared(caching: bool) -> AppShared {
        AppShared {
            cfg: AppServerConfig {
                caching,
                ..AppServerConfig::default()
            },
            cache: HashMap::new(),
            db_queries: 0,
            cache_hits: 0,
            pages: 0,
            db_timeouts: 0,
            db_retries_used: 0,
            sheds: 0,
            late_db_replies: 0,
        }
    }

    #[test]
    fn caching_disabled_never_hits() {
        let mut s = shared(false);
        s.cache_insert(Interaction::BestSellers, 1, 0);
        assert!(!s.cache_lookup(Interaction::BestSellers, 1, 1));
        assert_eq!(s.cache_hits, 0);
    }

    #[test]
    fn only_bestsellers_and_searchresult_are_cacheable() {
        let s = shared(true);
        assert!(s.cacheable(Interaction::BestSellers));
        assert!(s.cacheable(Interaction::SearchResult));
        assert!(!s.cacheable(Interaction::Home));
        assert!(!s.cacheable(Interaction::AdminConfirm));
    }

    #[test]
    fn entries_expire_after_ttl() {
        let mut s = shared(true);
        let ttl = s.cfg.cache_ttl;
        s.cache_insert(Interaction::BestSellers, 7, 1000);
        assert!(s.cache_lookup(Interaction::BestSellers, 7, 1000 + ttl - 1));
        assert!(!s.cache_lookup(Interaction::BestSellers, 7, 1000 + ttl));
        assert_eq!(s.cache_hits, 1);
    }

    #[test]
    fn keys_are_independent() {
        let mut s = shared(true);
        s.cache_insert(Interaction::SearchResult, 1, 0);
        assert!(!s.cache_lookup(Interaction::SearchResult, 2, 1));
        assert!(!s.cache_lookup(Interaction::BestSellers, 1, 1));
        assert!(s.cache_lookup(Interaction::SearchResult, 1, 1));
    }

    #[test]
    fn retry_budget_is_consumed_then_denied() {
        let mut s = shared(false);
        s.cfg.retry_budget = 2;
        assert!(s.try_take_retry());
        assert!(s.try_take_retry());
        assert!(!s.try_take_retry(), "budget of 2 denies the third resend");
        assert_eq!(s.db_retries_used, 2);
    }

    /// Sends one PageReq and records the reply's `ok` flag.
    struct Probe {
        app: ChanId,
        reply: ChanId,
        got: Rc<RefCell<Option<bool>>>,
        state: u8,
    }

    impl ThreadBody for Probe {
        fn resume(&mut self, _cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
            match self.state {
                0 => {
                    self.state = 1;
                    Op::Send(
                        self.app,
                        Msg::new(
                            PageReq {
                                interaction: Interaction::Home,
                                key: 1,
                                tag: 7,
                                reply: self.reply,
                            },
                            400,
                        ),
                    )
                }
                1 => {
                    self.state = 2;
                    Op::Recv(self.reply)
                }
                _ => {
                    let Wake::Received(msg) = wake else {
                        unreachable!("probe waits for its page");
                    };
                    let pr = msg.take::<PageReply>();
                    *self.got.borrow_mut() = Some(pr.ok);
                    Op::Exit
                }
            }
        }
    }

    /// Runs one request against an appserver whose DB channel nobody
    /// serves, so every attempt times out.
    fn run_against_dead_db(cfg: AppServerConfig) -> (Option<bool>, Rc<RefCell<AppShared>>) {
        let mut sim = whodunit_sim::Sim::new(whodunit_sim::SimConfig::default());
        let m = sim.add_machine(2);
        let proc = sim.add_unprofiled_process("tomcat");
        let dead_db = sim.add_channel(240_000, 20);
        let app = build_appserver(&mut sim, proc, m, dead_db, cfg);
        let got = Rc::new(RefCell::new(None));
        let reply = sim.add_channel(240_000, 20);
        let driver = sim.add_unprofiled_process("driver");
        sim.spawn(
            driver,
            m,
            "probe",
            Box::new(Probe {
                app: app.req_chan,
                reply,
                got: got.clone(),
                state: 0,
            }),
        );
        sim.run_to_idle();
        let outcome = *got.borrow();
        (outcome, app.shared)
    }

    #[test]
    fn dead_db_times_out_retries_then_sheds() {
        let cfg = AppServerConfig {
            workers: 1,
            db_timeout: 1_000_000,
            db_retries: 2,
            ..AppServerConfig::default()
        };
        let (got, shared) = run_against_dead_db(cfg);
        assert_eq!(got, Some(false), "client gets an error page, not a hang");
        let sh = shared.borrow();
        assert_eq!(sh.db_timeouts, 3, "initial attempt plus two resends");
        assert_eq!(sh.db_retries_used, 2);
        assert_eq!(sh.sheds, 1);
        assert_eq!(sh.pages, 0, "an error page is not a served page");
    }

    #[test]
    fn exhausted_retry_budget_sheds_without_resending() {
        let cfg = AppServerConfig {
            workers: 1,
            db_timeout: 1_000_000,
            db_retries: 2,
            retry_budget: 0,
            ..AppServerConfig::default()
        };
        let (got, shared) = run_against_dead_db(cfg);
        assert_eq!(got, Some(false));
        let sh = shared.borrow();
        assert_eq!(sh.db_timeouts, 1, "no budget, no resend");
        assert_eq!(sh.db_retries_used, 0);
        assert_eq!(sh.sheds, 1);
    }
}
