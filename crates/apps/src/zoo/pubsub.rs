//! Pub/sub event bus: publishers → broker → topic subscribers.
//!
//! Publishers post events to a broker, which acks the publisher and
//! forwards the event to every subscriber registered for the event's
//! topic (each topic lands on exactly two subscribers, so one logical
//! publish multiplies into two one-way deliveries). The subscriber
//! edges are the interesting part for inference: they carry **no
//! replies**, so nesting gives the inferrer nothing and only the
//! per-channel timing window pairs them.

use super::{ClientReply, ClientState, PingPongPeer, ZooClient, ZooConfig, ZooReport, ZooStats};
use crate::rtconf::make_runtime;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::rc::Rc;
use whodunit_core::cost::ms_to_cycles;
use whodunit_core::frame::FrameId;
use whodunit_core::ids::{ChanId, ProcId};
use whodunit_sim::{FaultPlan, Msg, Op, Sim, SimConfig, ThreadBody, ThreadCx, Wake};

/// Distinct topics on the bus.
const TOPICS: u64 = 16;

/// Publisher → broker.
#[derive(Debug)]
struct Publish {
    topic: u64,
    reply: ChanId,
}

/// Broker → subscriber (one-way; no reply channel at all).
#[derive(Debug)]
struct Event {
    topic: u64,
}

/// Is subscriber `j` of `count` subscribed to `topic`? Every topic
/// maps to exactly two subscribers (its home and the next one), so
/// each publish fans out to two deliveries.
fn subscribed(j: u64, count: u64, topic: u64) -> bool {
    topic % count == j || (topic + 1) % count == j
}

struct BrokerWorker {
    in_chan: ChanId,
    subs: Rc<Vec<ChanId>>,
    f_main: FrameId,
    f_pub: FrameId,
    state: BState,
}

enum BState {
    Init,
    WaitMsg,
    /// Forwarding: next subscriber index to consider.
    Fan {
        i: usize,
        topic: u64,
        reply: ChanId,
    },
    Ack {
        reply: ChanId,
    },
    Done,
}

impl ThreadBody for BrokerWorker {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match std::mem::replace(&mut self.state, BState::WaitMsg) {
            BState::Init => {
                cx.push_frame(self.f_main);
                self.state = BState::WaitMsg;
                Op::Recv(self.in_chan)
            }
            BState::WaitMsg => {
                let Wake::Received(msg) = wake else {
                    unreachable!("broker worker waits for publishes");
                };
                let p = msg.take::<Publish>();
                cx.push_frame(self.f_pub);
                self.state = BState::Fan {
                    i: 0,
                    topic: p.topic,
                    reply: p.reply,
                };
                Op::Compute(ms_to_cycles(0.3))
            }
            BState::Fan { i, topic, reply } => {
                let n = self.subs.len();
                // Deliver to the next subscribed index, if any.
                for j in i..n {
                    if subscribed(j as u64, n as u64, topic) {
                        self.state = BState::Fan {
                            i: j + 1,
                            topic,
                            reply,
                        };
                        return Op::Send(self.subs[j], Msg::new(Event { topic }, 512));
                    }
                }
                cx.pop_frame();
                self.state = BState::Ack { reply };
                Op::Compute(ms_to_cycles(0.05))
            }
            BState::Ack { reply } => {
                self.state = BState::Done;
                Op::Send(reply, Msg::new(ClientReply { ok: true }, 128))
            }
            BState::Done => {
                self.state = BState::WaitMsg;
                Op::Recv(self.in_chan)
            }
        }
    }
}

struct SubscriberWorker {
    in_chan: ChanId,
    f_main: FrameId,
    f_ev: FrameId,
    delivered: Rc<RefCell<u64>>,
    state: SubState,
}

enum SubState {
    Init,
    WaitMsg,
    Work,
}

impl ThreadBody for SubscriberWorker {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match std::mem::replace(&mut self.state, SubState::WaitMsg) {
            SubState::Init => {
                cx.push_frame(self.f_main);
                self.state = SubState::WaitMsg;
                Op::Recv(self.in_chan)
            }
            SubState::WaitMsg => {
                let Wake::Received(msg) = wake else {
                    unreachable!("subscriber waits for events");
                };
                let ev = msg.take::<Event>();
                *self.delivered.borrow_mut() += 1;
                cx.push_frame(self.f_ev);
                self.state = SubState::Work;
                Op::Compute(ms_to_cycles(0.4 + (ev.topic % 3) as f64 * 0.2))
            }
            SubState::Work => {
                cx.pop_frame();
                self.state = SubState::WaitMsg;
                Op::Recv(self.in_chan)
            }
        }
    }
}

/// Builds and runs the pub/sub assembly.
pub(super) fn run(cfg: &ZooConfig) -> ZooReport {
    let subs_n = cfg.services.max(2) as usize;
    let mut sim = Sim::new(SimConfig::default());
    sim.set_schedule_policy(cfg.sched);
    sim.set_step_budget(cfg.step_budget);

    let client_m = sim.add_machine(8);
    let broker_m = sim.add_machine(2);
    let sub_m: Vec<_> = (0..subs_n).map(|_| sim.add_machine(1)).collect();

    let broker_pr = make_runtime(cfg.rt, ProcId(0), "broker", sim.frames().clone());
    let broker_proc = sim.add_process("broker", broker_pr.rt.clone());
    let mut sub_procs = Vec::new();
    for i in 0..subs_n {
        let name = format!("sub{i}");
        let pr = make_runtime(cfg.rt, ProcId(1 + i as u32), &name, sim.frames().clone());
        sub_procs.push(sim.add_process(&name, pr.rt.clone()));
    }
    let client_proc = sim.add_unprofiled_process("publishers");
    if cfg.comm_log {
        sim.mark_comm_origin(client_proc);
    }

    let broker_in = sim.add_channel(240_000, 20);
    let sub_in: Vec<_> = (0..subs_n).map(|_| sim.add_channel(240_000, 20)).collect();
    if let Some(fs) = cfg.faults {
        let mut plan = FaultPlan::new(fs.seed)
            .channel_faults(broker_in, fs.front_chan)
            .channel_faults(sub_in[0], fs.backbone_chan);
        let victim = subs_n - 1;
        if let Some(at) = fs.crash_at {
            plan = plan.crash(sub_procs[victim], at);
        }
        if let Some((from, until, factor)) = fs.slowdown {
            plan = plan.slowdown(sub_m[victim], from, until, factor);
        }
        sim.set_fault_plan(plan);
    }

    let f_b_main = sim.frame("broker_poll");
    let f_b_pub = sim.frame("broker_publish");
    let sub_chans = Rc::new(sub_in.clone());
    for w in 0..6 {
        sim.spawn(
            broker_proc,
            broker_m,
            &format!("broker{w}"),
            Box::new(BrokerWorker {
                in_chan: broker_in,
                subs: sub_chans.clone(),
                f_main: f_b_main,
                f_pub: f_b_pub,
                state: BState::Init,
            }),
        );
    }
    let f_s_main = sim.frame("sub_poll");
    let f_s_ev = sim.frame("sub_consume");
    let delivered = Rc::new(RefCell::new(0u64));
    for (i, &proc) in sub_procs.iter().enumerate() {
        for w in 0..2 {
            sim.spawn(
                proc,
                sub_m[i],
                &format!("sub{i}w{w}"),
                Box::new(SubscriberWorker {
                    in_chan: sub_in[i],
                    f_main: f_s_main,
                    f_ev: f_s_ev,
                    delivered: delivered.clone(),
                    state: SubState::Init,
                }),
            );
        }
    }

    let stats = Rc::new(RefCell::new(ZooStats::default()));
    for c in 0..cfg.clients {
        let reply = sim.add_channel(240_000, 20);
        sim.spawn(
            client_proc,
            client_m,
            &format!("pub{c}"),
            Box::new(ZooClient {
                make_req: |rng: &mut SmallRng, reply| {
                    Msg::new(
                        Publish {
                            topic: rand::Rng::gen_range(rng, 0..TOPICS),
                            reply,
                        },
                        256,
                    )
                },
                rng: SmallRng::seed_from_u64(cfg.seed ^ ((c as u64) << 24) ^ 0x9b),
                entry: broker_in,
                reply,
                stats: stats.clone(),
                warmup: cfg.warmup,
                base_think: cfg.base_think,
                shape: cfg.shape,
                started: 0,
                state: ClientState::Think,
            }),
        );
    }

    if cfg.livelock_pair {
        let a = sim.add_channel(0, 0);
        let b = sim.add_channel(0, 0);
        sim.spawn(
            client_proc,
            client_m,
            "pingpong0",
            Box::new(PingPongPeer {
                rx: b,
                tx: a,
                serves: false,
            }),
        );
        sim.spawn(
            client_proc,
            client_m,
            "pingpong1",
            Box::new(PingPongPeer {
                rx: a,
                tx: b,
                serves: true,
            }),
        );
    }

    let outcome = sim.run_until_outcome(cfg.duration);
    let comm = sim.take_comm_log();
    let mut compute_truth = vec![sim.proc_compute_cycles(broker_proc)];
    compute_truth.extend(sub_procs.iter().map(|&p| sim.proc_compute_cycles(p)));
    let st = stats.borrow();
    let events_delivered = *delivered.borrow();
    ZooReport {
        completed: st.completed,
        errors: st.errors,
        outcome,
        dumps: sim.collect_dumps(),
        compute_truth,
        comm,
        dropped_msgs: sim.chans.total_dropped(),
        duplicated_msgs: sim.chans.total_duplicated(),
        delayed_msgs: sim.chans.total_delayed(),
        profiled_procs: 1 + subs_n as u32,
        events_delivered,
        cache_hits: 0,
        invalidations: 0,
    }
}
