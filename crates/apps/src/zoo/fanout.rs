//! Microservice fan-out/fan-in: gateway → K services → gateway.
//!
//! Each client request reaches a gateway worker, which issues one
//! sub-request to *every* service and merges the K replies before
//! answering the client. The K sibling sub-requests leave the gateway
//! back-to-back at virtually the same instant on different channels —
//! the structure that makes naive global-FIFO pairing fall over and
//! per-channel windows necessary. Fan-in replies arrive in service
//! order only on a quiet system; under load they interleave.
//!
//! Workers carry a per-request sequence number so a reply that limps
//! in after its RPC timed out (crashed or slowed service) is
//! discarded instead of being credited to the *next* request.

use super::{ClientReply, ClientState, PingPongPeer, ZooClient, ZooConfig, ZooReport, ZooStats};
use crate::rtconf::make_runtime;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::rc::Rc;
use whodunit_core::cost::ms_to_cycles;
use whodunit_core::frame::FrameId;
use whodunit_core::ids::{ChanId, ProcId};
use whodunit_sim::{Cycles, FaultPlan, Msg, Op, Sim, SimConfig, ThreadBody, ThreadCx, Wake};

/// Client → gateway request.
#[derive(Debug)]
struct FanReq {
    key: u64,
    reply: ChanId,
}

/// Gateway → service sub-request.
#[derive(Debug)]
struct SvcReq {
    key: u64,
    seq: u64,
    reply: ChanId,
}

/// Service → gateway sub-reply.
#[derive(Debug)]
struct SvcReply {
    seq: u64,
}

struct GatewayWorker {
    in_chan: ChanId,
    services: Rc<Vec<ChanId>>,
    my_reply: ChanId,
    timeout: Cycles,
    f_main: FrameId,
    f_fan: FrameId,
    seq: u64,
    state: GState,
}

enum GState {
    Init,
    WaitMsg,
    /// Sending sub-request `i` of the current fan-out.
    SendSvc {
        i: usize,
        key: u64,
        client: ChanId,
    },
    /// Fan-in: `left` sub-replies outstanding.
    Collect {
        left: usize,
        client: ChanId,
    },
    Merge {
        client: ChanId,
    },
    Reply {
        client: ChanId,
        ok: bool,
    },
    Done,
}

impl ThreadBody for GatewayWorker {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match std::mem::replace(&mut self.state, GState::WaitMsg) {
            GState::Init => {
                cx.push_frame(self.f_main);
                self.state = GState::WaitMsg;
                Op::Recv(self.in_chan)
            }
            GState::WaitMsg => {
                let Wake::Received(msg) = wake else {
                    unreachable!("gateway worker waits for client requests");
                };
                let req = msg.take::<FanReq>();
                cx.push_frame(self.f_fan);
                self.seq += 1;
                self.state = GState::SendSvc {
                    i: 0,
                    key: req.key,
                    client: req.reply,
                };
                Op::Compute(ms_to_cycles(0.2))
            }
            GState::SendSvc { i, key, client } => {
                if i == self.services.len() {
                    self.state = GState::Collect {
                        left: self.services.len(),
                        client,
                    };
                    return Op::RecvTimeout(self.my_reply, self.timeout);
                }
                self.state = GState::SendSvc {
                    i: i + 1,
                    key,
                    client,
                };
                Op::Send(
                    self.services[i],
                    Msg::new(
                        SvcReq {
                            key: key.wrapping_add(i as u64),
                            seq: self.seq,
                            reply: self.my_reply,
                        },
                        300,
                    ),
                )
            }
            GState::Collect { left, client } => match wake {
                Wake::Received(msg) => {
                    let r = msg.take::<SvcReply>();
                    // Stale replies (a previous request's timed-out
                    // sub-RPC) are discarded, not credited.
                    let left = if r.seq == self.seq { left - 1 } else { left };
                    if left == 0 {
                        self.state = GState::Merge { client };
                        Op::Compute(ms_to_cycles(0.4))
                    } else {
                        self.state = GState::Collect { left, client };
                        Op::RecvTimeout(self.my_reply, self.timeout)
                    }
                }
                Wake::RecvTimedOut => {
                    self.state = GState::Reply { client, ok: false };
                    Op::Compute(ms_to_cycles(0.1))
                }
                _ => unreachable!("fan-in sees sub-replies or a timeout"),
            },
            GState::Merge { client } => {
                self.state = GState::Reply { client, ok: true };
                Op::Compute(ms_to_cycles(0.1))
            }
            GState::Reply { client, ok } => {
                cx.pop_frame();
                self.state = GState::Done;
                Op::Send(client, Msg::new(ClientReply { ok }, 2048))
            }
            GState::Done => {
                self.state = GState::WaitMsg;
                Op::Recv(self.in_chan)
            }
        }
    }
}

struct ServiceWorker {
    in_chan: ChanId,
    f_main: FrameId,
    f_op: FrameId,
    cost_ms: f64,
    state: SState,
}

enum SState {
    Init,
    WaitMsg,
    Work { seq: u64, reply: ChanId },
    Reply { seq: u64, reply: ChanId },
    Done,
}

impl ThreadBody for ServiceWorker {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match std::mem::replace(&mut self.state, SState::WaitMsg) {
            SState::Init => {
                cx.push_frame(self.f_main);
                self.state = SState::WaitMsg;
                Op::Recv(self.in_chan)
            }
            SState::WaitMsg => {
                let Wake::Received(msg) = wake else {
                    unreachable!("service worker waits for sub-requests");
                };
                let req = msg.take::<SvcReq>();
                cx.push_frame(self.f_op);
                self.state = SState::Work {
                    seq: req.seq,
                    reply: req.reply,
                };
                // Key-dependent cost keeps service latencies diverse.
                Op::Compute(ms_to_cycles(self.cost_ms * (1.0 + (req.key % 5) as f64 * 0.2)))
            }
            SState::Work { seq, reply } => {
                cx.pop_frame();
                self.state = SState::Reply { seq, reply };
                Op::Compute(ms_to_cycles(0.05))
            }
            SState::Reply { seq, reply } => {
                self.state = SState::Done;
                Op::Send(reply, Msg::new(SvcReply { seq }, 600))
            }
            SState::Done => {
                self.state = SState::WaitMsg;
                Op::Recv(self.in_chan)
            }
        }
    }
}

/// Builds and runs the fan-out assembly.
pub(super) fn run(cfg: &ZooConfig) -> ZooReport {
    let services = cfg.services.max(1) as usize;
    let mut sim = Sim::new(SimConfig::default());
    sim.set_schedule_policy(cfg.sched);
    sim.set_step_budget(cfg.step_budget);

    let client_m = sim.add_machine(8);
    let gw_m = sim.add_machine(2);
    let svc_m: Vec<_> = (0..services).map(|_| sim.add_machine(2)).collect();

    let gw_pr = make_runtime(cfg.rt, ProcId(0), "gateway", sim.frames().clone());
    let gw_proc = sim.add_process("gateway", gw_pr.rt.clone());
    let mut svc_procs = Vec::new();
    for i in 0..services {
        let name = format!("svc{i}");
        let pr = make_runtime(cfg.rt, ProcId(1 + i as u32), &name, sim.frames().clone());
        svc_procs.push(sim.add_process(&name, pr.rt.clone()));
    }
    let client_proc = sim.add_unprofiled_process("clients");
    if cfg.comm_log {
        sim.mark_comm_origin(client_proc);
    }

    let gw_in = sim.add_channel(240_000, 20);
    let svc_in: Vec<_> = (0..services).map(|_| sim.add_channel(240_000, 20)).collect();
    if let Some(fs) = cfg.faults {
        let mut plan = FaultPlan::new(fs.seed)
            .channel_faults(gw_in, fs.front_chan)
            .channel_faults(svc_in[0], fs.backbone_chan);
        let victim = services - 1;
        if let Some(at) = fs.crash_at {
            plan = plan.crash(svc_procs[victim], at);
        }
        if let Some((from, until, factor)) = fs.slowdown {
            plan = plan.slowdown(svc_m[victim], from, until, factor);
        }
        sim.set_fault_plan(plan);
    }

    let f_gw_main = sim.frame("gw_poll");
    let f_gw_fan = sim.frame("gw_fanout_request");
    let svc_chans = Rc::new(svc_in.clone());
    for w in 0..8 {
        let my_reply = sim.add_channel(240_000, 20);
        sim.spawn(
            gw_proc,
            gw_m,
            &format!("gw{w}"),
            Box::new(GatewayWorker {
                in_chan: gw_in,
                services: svc_chans.clone(),
                my_reply,
                timeout: cfg.rpc_timeout,
                f_main: f_gw_main,
                f_fan: f_gw_fan,
                seq: 0,
                state: GState::Init,
            }),
        );
    }
    let f_svc_main = sim.frame("svc_poll");
    let f_svc_op = sim.frame("svc_handle");
    for (i, &proc) in svc_procs.iter().enumerate() {
        for w in 0..2 {
            sim.spawn(
                proc,
                svc_m[i],
                &format!("svc{i}w{w}"),
                Box::new(ServiceWorker {
                    in_chan: svc_in[i],
                    f_main: f_svc_main,
                    f_op: f_svc_op,
                    cost_ms: 0.5 + i as f64 * 0.3,
                    state: SState::Init,
                }),
            );
        }
    }

    let stats = Rc::new(RefCell::new(ZooStats::default()));
    for c in 0..cfg.clients {
        let reply = sim.add_channel(240_000, 20);
        sim.spawn(
            client_proc,
            client_m,
            &format!("fan_client{c}"),
            Box::new(ZooClient {
                make_req: |rng: &mut SmallRng, reply| {
                    Msg::new(
                        FanReq {
                            key: rand::Rng::gen::<u64>(rng) >> 16,
                            reply,
                        },
                        400,
                    )
                },
                rng: SmallRng::seed_from_u64(cfg.seed ^ ((c as u64) << 24)),
                entry: gw_in,
                reply,
                stats: stats.clone(),
                warmup: cfg.warmup,
                base_think: cfg.base_think,
                shape: cfg.shape,
                started: 0,
                state: ClientState::Think,
            }),
        );
    }

    if cfg.livelock_pair {
        let a = sim.add_channel(0, 0);
        let b = sim.add_channel(0, 0);
        sim.spawn(
            client_proc,
            client_m,
            "pingpong0",
            Box::new(PingPongPeer {
                rx: b,
                tx: a,
                serves: false,
            }),
        );
        sim.spawn(
            client_proc,
            client_m,
            "pingpong1",
            Box::new(PingPongPeer {
                rx: a,
                tx: b,
                serves: true,
            }),
        );
    }

    let outcome = sim.run_until_outcome(cfg.duration);
    let comm = sim.take_comm_log();
    let mut compute_truth = vec![sim.proc_compute_cycles(gw_proc)];
    compute_truth.extend(svc_procs.iter().map(|&p| sim.proc_compute_cycles(p)));
    let st = stats.borrow();
    ZooReport {
        completed: st.completed,
        errors: st.errors,
        outcome,
        dumps: sim.collect_dumps(),
        compute_truth,
        comm,
        dropped_msgs: sim.chans.total_dropped(),
        duplicated_msgs: sim.chans.total_duplicated(),
        delayed_msgs: sim.chans.total_delayed(),
        profiled_procs: 1 + services as u32,
        events_delivered: 0,
        cache_hits: 0,
        invalidations: 0,
    }
}
