//! Write-through cache pair: front → 2 shards → store, with peer
//! invalidations between the shards.
//!
//! Reads hit the key's home shard; misses walk through to the store
//! and fill the cache. Writes go through the home shard to the store
//! and then broadcast an invalidation to the *peer* shard — a
//! fire-and-forget edge between mid-tier siblings that neither the
//! request nor the reply path explains. A write-heavy flash crowd
//! turns that edge into an invalidation storm, which is precisely the
//! traffic pattern black-box inference finds hardest to attribute: a
//! burst of same-sized messages on one channel at near-identical
//! timestamps.

use super::{ClientReply, ClientState, PingPongPeer, ZooClient, ZooConfig, ZooReport, ZooStats};
use crate::rtconf::make_runtime;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;
use whodunit_core::cost::ms_to_cycles;
use whodunit_core::frame::FrameId;
use whodunit_core::ids::{ChanId, ProcId};
use whodunit_sim::{Cycles, FaultPlan, Msg, Op, Sim, SimConfig, ThreadBody, ThreadCx, Wake};

/// Cache key space.
const KEYS: u64 = 64;

/// Client → front.
#[derive(Debug)]
struct CacheOp {
    key: u64,
    write: bool,
    reply: ChanId,
}

/// Front → shard, or shard → shard (invalidation).
#[derive(Debug)]
enum ShardMsg {
    Op {
        key: u64,
        write: bool,
        seq: u64,
        reply: ChanId,
    },
    /// Peer invalidation after a write-through. Fire-and-forget.
    Inval { key: u64 },
}

/// Shard → store.
#[derive(Debug)]
struct StoreReq {
    write: bool,
    seq: u64,
    reply: ChanId,
}

/// Store → shard.
#[derive(Debug)]
struct StoreReply {
    seq: u64,
}

/// Shard → front.
#[derive(Debug)]
struct ShardReply {
    seq: u64,
    ok: bool,
}

struct FrontWorker {
    in_chan: ChanId,
    shards: [ChanId; 2],
    my_reply: ChanId,
    timeout: Cycles,
    f_main: FrameId,
    f_op: FrameId,
    seq: u64,
    state: FState,
}

enum FState {
    Init,
    WaitMsg,
    ToShard {
        key: u64,
        write: bool,
        client: ChanId,
    },
    WaitShard {
        client: ChanId,
    },
    Reply {
        client: ChanId,
        ok: bool,
    },
    Done,
}

impl ThreadBody for FrontWorker {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match std::mem::replace(&mut self.state, FState::WaitMsg) {
            FState::Init => {
                cx.push_frame(self.f_main);
                self.state = FState::WaitMsg;
                Op::Recv(self.in_chan)
            }
            FState::WaitMsg => {
                let Wake::Received(msg) = wake else {
                    unreachable!("front worker waits for client ops");
                };
                let op = msg.take::<CacheOp>();
                cx.push_frame(self.f_op);
                self.seq += 1;
                self.state = FState::ToShard {
                    key: op.key,
                    write: op.write,
                    client: op.reply,
                };
                Op::Compute(ms_to_cycles(0.1))
            }
            FState::ToShard { key, write, client } => {
                self.state = FState::WaitShard { client };
                Op::Send(
                    self.shards[(key % 2) as usize],
                    Msg::new(
                        ShardMsg::Op {
                            key,
                            write,
                            seq: self.seq,
                            reply: self.my_reply,
                        },
                        350,
                    ),
                )
            }
            FState::WaitShard { client } => match wake {
                Wake::Done => {
                    self.state = FState::WaitShard { client };
                    Op::RecvTimeout(self.my_reply, self.timeout)
                }
                Wake::Received(msg) => {
                    let r = msg.take::<ShardReply>();
                    if r.seq != self.seq {
                        // A stale reply from a timed-out shard RPC.
                        self.state = FState::WaitShard { client };
                        return Op::RecvTimeout(self.my_reply, self.timeout);
                    }
                    self.state = FState::Reply { client, ok: r.ok };
                    Op::Compute(ms_to_cycles(0.05))
                }
                Wake::RecvTimedOut => {
                    self.state = FState::Reply { client, ok: false };
                    Op::Compute(ms_to_cycles(0.05))
                }
                _ => unreachable!("front waits on its shard RPC"),
            },
            FState::Reply { client, ok } => {
                cx.pop_frame();
                self.state = FState::Done;
                Op::Send(client, Msg::new(ClientReply { ok }, 1024))
            }
            FState::Done => {
                self.state = FState::WaitMsg;
                Op::Recv(self.in_chan)
            }
        }
    }
}

/// Per-shard shared state.
#[derive(Debug, Default)]
struct ShardShared {
    cache: HashSet<u64>,
    hits: u64,
    invals_delivered: u64,
}

struct ShardWorker {
    in_chan: ChanId,
    peer: ChanId,
    store: ChanId,
    my_reply: ChanId,
    timeout: Cycles,
    shared: Rc<RefCell<ShardShared>>,
    f_main: FrameId,
    f_read: FrameId,
    f_write: FrameId,
    f_inval: FrameId,
    /// This worker's own store-RPC sequence.
    seq: u64,
    /// The front's seq for the op in flight, echoed back on reply.
    pending: u64,
    state: ShState,
}

enum ShState {
    Init,
    WaitMsg,
    HitReply {
        seq: u64,
        reply: ChanId,
    },
    ToStore {
        key: u64,
        write: bool,
        reply: ChanId,
    },
    WaitStore {
        key: u64,
        write: bool,
        reply: ChanId,
    },
    /// Write-through done; invalidate the peer shard.
    Inval {
        key: u64,
        reply: ChanId,
    },
    Reply {
        reply: ChanId,
        ok: bool,
    },
    InvalWork,
    Done,
}

impl ThreadBody for ShardWorker {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match std::mem::replace(&mut self.state, ShState::WaitMsg) {
            ShState::Init => {
                cx.push_frame(self.f_main);
                self.state = ShState::WaitMsg;
                Op::Recv(self.in_chan)
            }
            ShState::WaitMsg => {
                let Wake::Received(msg) = wake else {
                    unreachable!("shard worker waits for ops");
                };
                match msg.take::<ShardMsg>() {
                    ShardMsg::Op {
                        key,
                        write,
                        seq,
                        reply,
                    } => {
                        if write {
                            cx.push_frame(self.f_write);
                            self.state = ShState::ToStore { key, write, reply };
                            // The front's seq is not unique across its
                            // workers; shard RPCs to the store use the
                            // shard worker's own sequence and the
                            // front's seq is restored on reply.
                            self.seq = self.seq.wrapping_add(1);
                            self.pending = seq;
                            Op::Compute(ms_to_cycles(0.15))
                        } else if self.shared.borrow().cache.contains(&key) {
                            self.shared.borrow_mut().hits += 1;
                            cx.push_frame(self.f_read);
                            self.pending = seq;
                            self.state = ShState::HitReply { seq, reply };
                            Op::Compute(ms_to_cycles(0.2))
                        } else {
                            cx.push_frame(self.f_read);
                            self.seq = self.seq.wrapping_add(1);
                            self.pending = seq;
                            self.state = ShState::ToStore { key, write, reply };
                            Op::Compute(ms_to_cycles(0.1))
                        }
                    }
                    ShardMsg::Inval { key } => {
                        let mut sh = self.shared.borrow_mut();
                        sh.cache.remove(&key);
                        sh.invals_delivered += 1;
                        drop(sh);
                        cx.push_frame(self.f_inval);
                        self.state = ShState::InvalWork;
                        Op::Compute(ms_to_cycles(0.05))
                    }
                }
            }
            ShState::HitReply { seq, reply } => {
                cx.pop_frame();
                self.state = ShState::Done;
                Op::Send(reply, Msg::new(ShardReply { seq, ok: true }, 900))
            }
            ShState::ToStore { key, write, reply } => {
                self.state = ShState::WaitStore { key, write, reply };
                Op::Send(
                    self.store,
                    Msg::new(
                        StoreReq {
                            write,
                            seq: self.seq,
                            reply: self.my_reply,
                        },
                        300,
                    ),
                )
            }
            ShState::WaitStore { key, write, reply } => match wake {
                Wake::Done => {
                    self.state = ShState::WaitStore { key, write, reply };
                    Op::RecvTimeout(self.my_reply, self.timeout)
                }
                Wake::Received(msg) => {
                    let r = msg.take::<StoreReply>();
                    if r.seq != self.seq {
                        self.state = ShState::WaitStore { key, write, reply };
                        return Op::RecvTimeout(self.my_reply, self.timeout);
                    }
                    self.shared.borrow_mut().cache.insert(key);
                    if write {
                        self.state = ShState::Inval { key, reply };
                        Op::Compute(ms_to_cycles(0.1))
                    } else {
                        self.state = ShState::Reply { reply, ok: true };
                        Op::Compute(ms_to_cycles(0.15))
                    }
                }
                Wake::RecvTimedOut => {
                    self.state = ShState::Reply { reply, ok: false };
                    Op::Compute(ms_to_cycles(0.05))
                }
                _ => unreachable!("shard waits on its store RPC"),
            },
            ShState::Inval { key, reply } => {
                self.state = ShState::Reply { reply, ok: true };
                Op::Send(self.peer, Msg::new(ShardMsg::Inval { key }, 200))
            }
            ShState::Reply { reply, ok } => {
                cx.pop_frame();
                self.state = ShState::Done;
                Op::Send(
                    reply,
                    Msg::new(
                        ShardReply {
                            seq: self.pending,
                            ok,
                        },
                        900,
                    ),
                )
            }
            ShState::InvalWork => {
                cx.pop_frame();
                self.state = ShState::WaitMsg;
                Op::Recv(self.in_chan)
            }
            ShState::Done => {
                self.state = ShState::WaitMsg;
                Op::Recv(self.in_chan)
            }
        }
    }
}

/// Builds and runs the write-through cache assembly.
pub(super) fn run(cfg: &ZooConfig) -> ZooReport {
    let mut sim = Sim::new(SimConfig::default());
    sim.set_schedule_policy(cfg.sched);
    sim.set_step_budget(cfg.step_budget);

    let client_m = sim.add_machine(8);
    let front_m = sim.add_machine(2);
    let shard_m = [sim.add_machine(1), sim.add_machine(1)];
    let store_m = sim.add_machine(2);

    let front_pr = make_runtime(cfg.rt, ProcId(0), "front", sim.frames().clone());
    let front_proc = sim.add_process("front", front_pr.rt.clone());
    let mut shard_procs = Vec::new();
    for i in 0..2u32 {
        let name = format!("shard{i}");
        let pr = make_runtime(cfg.rt, ProcId(1 + i), &name, sim.frames().clone());
        shard_procs.push(sim.add_process(&name, pr.rt.clone()));
    }
    let store_pr = make_runtime(cfg.rt, ProcId(3), "store", sim.frames().clone());
    let store_proc = sim.add_process("store", store_pr.rt.clone());
    let client_proc = sim.add_unprofiled_process("clients");
    if cfg.comm_log {
        sim.mark_comm_origin(client_proc);
    }

    let front_in = sim.add_channel(240_000, 20);
    let shard_in = [sim.add_channel(240_000, 20), sim.add_channel(240_000, 20)];
    let store_in = sim.add_channel(240_000, 20);
    if let Some(fs) = cfg.faults {
        let mut plan = FaultPlan::new(fs.seed)
            .channel_faults(front_in, fs.front_chan)
            .channel_faults(store_in, fs.backbone_chan);
        if let Some(at) = fs.crash_at {
            plan = plan.crash(store_proc, at);
        }
        if let Some((from, until, factor)) = fs.slowdown {
            plan = plan.slowdown(store_m, from, until, factor);
        }
        sim.set_fault_plan(plan);
    }

    let f_f_main = sim.frame("front_poll");
    let f_f_op = sim.frame("front_route");
    for w in 0..6 {
        let my_reply = sim.add_channel(240_000, 20);
        sim.spawn(
            front_proc,
            front_m,
            &format!("front{w}"),
            Box::new(FrontWorker {
                in_chan: front_in,
                shards: shard_in,
                my_reply,
                timeout: cfg.rpc_timeout,
                f_main: f_f_main,
                f_op: f_f_op,
                seq: 0,
                state: FState::Init,
            }),
        );
    }
    let f_s_main = sim.frame("shard_poll");
    let f_s_read = sim.frame("shard_read");
    let f_s_write = sim.frame("shard_write_through");
    let f_s_inval = sim.frame("shard_invalidate");
    let shard_shared = [
        Rc::new(RefCell::new(ShardShared::default())),
        Rc::new(RefCell::new(ShardShared::default())),
    ];
    for i in 0..2usize {
        for w in 0..3 {
            let my_reply = sim.add_channel(240_000, 20);
            sim.spawn(
                shard_procs[i],
                shard_m[i],
                &format!("shard{i}w{w}"),
                Box::new(ShardWorker {
                    in_chan: shard_in[i],
                    peer: shard_in[1 - i],
                    store: store_in,
                    my_reply,
                    timeout: cfg.rpc_timeout,
                    shared: shard_shared[i].clone(),
                    f_main: f_s_main,
                    f_read: f_s_read,
                    f_write: f_s_write,
                    f_inval: f_s_inval,
                    seq: 0,
                    pending: 0,
                    state: ShState::Init,
                }),
            );
        }
    }
    let f_st_main = sim.frame("store_poll");
    let f_st_op = sim.frame("store_serve");
    for w in 0..4 {
        sim.spawn(
            store_proc,
            store_m,
            &format!("store{w}"),
            Box::new(StoreWorker {
                in_chan: store_in,
                f_main: f_st_main,
                f_op: f_st_op,
                state: StState::Init,
            }),
        );
    }

    let stats = Rc::new(RefCell::new(ZooStats::default()));
    for c in 0..cfg.clients {
        let reply = sim.add_channel(240_000, 20);
        sim.spawn(
            client_proc,
            client_m,
            &format!("cache_client{c}"),
            Box::new(ZooClient {
                make_req: |rng: &mut SmallRng, reply| {
                    let key = rand::Rng::gen_range(rng, 0..KEYS);
                    let write = rand::Rng::gen::<f64>(rng) < 0.3;
                    Msg::new(CacheOp { key, write, reply }, 300)
                },
                rng: SmallRng::seed_from_u64(cfg.seed ^ ((c as u64) << 24) ^ 0xc4),
                entry: front_in,
                reply,
                stats: stats.clone(),
                warmup: cfg.warmup,
                base_think: cfg.base_think,
                shape: cfg.shape,
                started: 0,
                state: ClientState::Think,
            }),
        );
    }

    if cfg.livelock_pair {
        let a = sim.add_channel(0, 0);
        let b = sim.add_channel(0, 0);
        sim.spawn(
            client_proc,
            client_m,
            "pingpong0",
            Box::new(PingPongPeer {
                rx: b,
                tx: a,
                serves: false,
            }),
        );
        sim.spawn(
            client_proc,
            client_m,
            "pingpong1",
            Box::new(PingPongPeer {
                rx: a,
                tx: b,
                serves: true,
            }),
        );
    }

    let outcome = sim.run_until_outcome(cfg.duration);
    let comm = sim.take_comm_log();
    let compute_truth = vec![
        sim.proc_compute_cycles(front_proc),
        sim.proc_compute_cycles(shard_procs[0]),
        sim.proc_compute_cycles(shard_procs[1]),
        sim.proc_compute_cycles(store_proc),
    ];
    let st = stats.borrow();
    let hits = shard_shared[0].borrow().hits + shard_shared[1].borrow().hits;
    let invals =
        shard_shared[0].borrow().invals_delivered + shard_shared[1].borrow().invals_delivered;
    ZooReport {
        completed: st.completed,
        errors: st.errors,
        outcome,
        dumps: sim.collect_dumps(),
        compute_truth,
        comm,
        dropped_msgs: sim.chans.total_dropped(),
        duplicated_msgs: sim.chans.total_duplicated(),
        delayed_msgs: sim.chans.total_delayed(),
        profiled_procs: 4,
        events_delivered: 0,
        cache_hits: hits,
        invalidations: invals,
    }
}

struct StoreWorker {
    in_chan: ChanId,
    f_main: FrameId,
    f_op: FrameId,
    state: StState,
}

enum StState {
    Init,
    WaitMsg,
    Reply { seq: u64, reply: ChanId },
    Done,
}

impl ThreadBody for StoreWorker {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match std::mem::replace(&mut self.state, StState::WaitMsg) {
            StState::Init => {
                cx.push_frame(self.f_main);
                self.state = StState::WaitMsg;
                Op::Recv(self.in_chan)
            }
            StState::WaitMsg => {
                let Wake::Received(msg) = wake else {
                    unreachable!("store worker waits for requests");
                };
                let req = msg.take::<StoreReq>();
                cx.push_frame(self.f_op);
                self.state = StState::Reply {
                    seq: req.seq,
                    reply: req.reply,
                };
                Op::Compute(ms_to_cycles(if req.write { 1.0 } else { 0.6 }))
            }
            StState::Reply { seq, reply } => {
                cx.pop_frame();
                self.state = StState::Done;
                Op::Send(reply, Msg::new(StoreReply { seq }, 700))
            }
            StState::Done => {
                self.state = StState::WaitMsg;
                Op::Recv(self.in_chan)
            }
        }
    }
}
