//! Sentinel wiring for the TPC-W stack: budget calibration, SLO-watched
//! runs, and the anomaly-capture pipeline.
//!
//! The flow mirrors what an always-on deployment does:
//!
//! 1. [`calibrate_budget`] runs one known-clean scenario and sets every
//!    tail budget at a configurable margin above the observed baseline
//!    quantile — the zero-false-repro property then follows from the
//!    margin, and is *checked*, not assumed, by the capture oracle.
//! 2. [`run_with_sentinel`] executes a repro with the collector's
//!    [`SentinelSink`] attached: live profile, SLO evaluation over
//!    retained epochs, time-travel snapshots.
//! 3. [`capture_incident`] turns a trip into a minimal, verified
//!    artifact: the scenario is window-scoped (its duration truncated
//!    to just past the violation — prefix determinism makes the
//!    truncated run a bit-exact prefix of the original), greedily
//!    shrunk while it still re-trips the same dimension, replayed
//!    twice to prove bit-identical fingerprints, and pushed through
//!    [`check_capture`] so a capture that fails verification surfaces
//!    as an explicit `false-repro` violation instead of a bogus bundle.

use crate::chaos::{config_of, CHAOS_HORIZON, SHRINKABLE_KNOBS};
use crate::tpcw::{run_tpcw_streaming, TpcwReport};
use whodunit_collector::{
    CollectorConfig, CollectorOutput, SentinelSink, SloBudget, SloViolation,
};
use whodunit_core::dumpjson;
use whodunit_core::hash::Fnv64;
use whodunit_core::oracle::{check_capture, CaptureEvidence, Violation};
use whodunit_core::repro::{ChaosRepro, ReproWindow};
use whodunit_report::live::{IncidentCard, LiveSnapshot, ReplaySummary, ShrinkSummary};
use whodunit_sim::explore;

/// Snapshot cadence for the time-travel ring: frequent enough that a
/// "before" state exists for any post-warmup trip, cheap enough to
/// stay inside the capture-overhead budget.
const SNAPSHOT_EVERY: u64 = 4;

/// One sentinel-watched execution of a repro.
#[derive(Debug)]
pub struct SentinelRun {
    /// The trip, if the budget was violated.
    pub violation: Option<SloViolation>,
    /// Finalized collector output (report + stats).
    pub output: CollectorOutput,
    /// Newest retained snapshot from before the trip.
    pub before: Option<LiveSnapshot>,
    /// Snapshot taken at the trip epoch.
    pub after: Option<LiveSnapshot>,
    /// Scenario fingerprint (same recipe as `chaos::run_scenario`):
    /// equal fingerprints mean bit-identical runs.
    pub fingerprint: u64,
    /// Epochs the sentinel observed.
    pub epochs: u64,
}

/// The run fingerprint: dumps, wire-fault counters, ground truth, and
/// outcome — the same observable surface `chaos::run_scenario` hashes,
/// so streaming-path fingerprints are comparable with batch ones.
fn fingerprint_of(r: &TpcwReport) -> u64 {
    let mut h = Fnv64::new();
    h.write(dumpjson::to_json(&r.dumps).as_bytes());
    for n in [r.dropped_msgs, r.duplicated_msgs, r.delayed_msgs] {
        h.write_u64(n);
    }
    for &t in &r.compute_truth {
        h.write(&t.to_le_bytes());
    }
    h.write(r.outcome.to_string().as_bytes());
    h.finish()
}

/// Executes a repro with the sentinel attached.
pub fn run_with_sentinel(repro: &ChaosRepro, budget: &SloBudget, epoch_len: u64) -> SentinelRun {
    let mut sink = SentinelSink::new(CollectorConfig::default(), budget.clone())
        .with_snapshot_every(SNAPSHOT_EVERY);
    let report = run_tpcw_streaming(config_of(repro), epoch_len, &mut sink);
    let fingerprint = fingerprint_of(&report);
    let (before, after) = match sink.before_after() {
        Some((b, a)) => (Some(b.clone()), Some(a.clone())),
        None => (None, None),
    };
    let violation = sink.sentinel().tripped().cloned();
    let epochs = sink.sentinel().epochs_seen();
    let (output, _, trip_snapshot) = sink.finish();
    SentinelRun {
        violation,
        output,
        before,
        after: after.or(trip_snapshot),
        fingerprint,
        epochs,
    }
}

/// Calibrates a budget from one known-clean scenario:
///
/// - each stage's **tail budget** is `margin_num / margin_den` times
///   the observed baseline quantile, plus a small absolute slack (1%
///   of an epoch) so near-zero baselines don't produce hair-trigger
///   budgets;
/// - each stage's **starvation floor** is the *inverse* margin of the
///   observed low quantile (p10), so a tier whose throughput collapses
///   — the profile signature of a machine slowdown — trips
///   `starve:<stage>`;
/// - the **crosstalk budget** gets the same treatment as the tails;
/// - any **quarantined frame** at all trips `quarantine`.
///
/// The margin is the knob that trades detection sensitivity against
/// false trips on other clean scenarios of the same workload family.
pub fn calibrate_budget(
    clean: &ChaosRepro,
    epoch_len: u64,
    margin_num: u64,
    margin_den: u64,
) -> SloBudget {
    let mut sink = SentinelSink::new(CollectorConfig::default(), SloBudget::default())
        .with_snapshot_every(SNAPSHOT_EVERY);
    run_tpcw_streaming(config_of(clean), epoch_len, &mut sink);
    let s = sink.sentinel();
    let q = s.budget().quantile_ppm;
    let slack = epoch_len / 100;
    let margin_up = |v: u64| v.saturating_mul(margin_num) / margin_den.max(1) + slack;
    let margin_down = |v: u64| v.saturating_mul(margin_den) / margin_num.max(1);
    let stage_cycles = s
        .stages()
        .iter()
        .enumerate()
        .map(|(si, name)| (name.clone(), margin_up(s.lifetime_quantile(si, q).unwrap_or(0))))
        .collect();
    let stage_floor = s
        .stages()
        .iter()
        .enumerate()
        .map(|(si, name)| {
            (
                name.clone(),
                margin_down(s.lifetime_quantile(si, 100_000).unwrap_or(0)),
            )
        })
        .collect();
    SloBudget {
        stage_cycles,
        stage_floor,
        xt_wait: Some(margin_up(s.lifetime_xt_quantile(q).unwrap_or(0))),
        max_quarantined: Some(0),
        ..SloBudget::default()
    }
}

/// A captured, shrunk, replay-verified incident.
#[derive(Debug)]
pub struct Incident {
    /// The original trip that started the capture.
    pub violation: SloViolation,
    /// The minimal window-scoped repro (duration truncated, faults and
    /// knobs shrunk, [`ReproWindow`] stamped).
    pub repro: ChaosRepro,
    /// The capture evidence fed to the oracle.
    pub evidence: CaptureEvidence,
    /// Oracle verdict on the capture: empty means the repro is real,
    /// bit-identical, and re-trips; anything here is a `false-repro`.
    pub oracle: Vec<Violation>,
    /// Renderable incident report data (differential snapshots
    /// included when the ring held a before-state).
    pub card: IncidentCard,
    /// Scenario re-executions the capture cost (truncation check,
    /// shrinking, and the two verification replays).
    pub capture_runs: u64,
}

/// Runs a repro under the budget and, if the sentinel trips, captures
/// a minimal verified incident. Returns `None` when the run stays
/// inside budget.
pub fn capture_incident(
    repro: &ChaosRepro,
    budget: &SloBudget,
    epoch_len: u64,
) -> Option<Incident> {
    let run = run_with_sentinel(repro, budget, epoch_len);
    let trip = run.violation.clone()?;
    let mut capture_runs = 1u64;

    let trips_same = |cand: &ChaosRepro, runs: &mut u64| -> bool {
        *runs += 1;
        run_with_sentinel(cand, budget, epoch_len)
            .violation
            .is_some_and(|v| v.dimension == trip.dimension)
    };

    // Window-scope: cut the scenario off one epoch past the violation.
    // Prefix determinism (the chunked-vs-unchunked lock) means the
    // truncated run replays the identical prefix, so the trip survives
    // unless it depended on nothing — which the re-check catches.
    let mut scoped = repro.clone();
    let duration = scoped.knob("duration").unwrap_or(CHAOS_HORIZON);
    let cut = (trip.epoch + 1).saturating_mul(epoch_len);
    if cut < duration {
        scoped.set_knob("duration", cut);
        if !trips_same(&scoped, &mut capture_runs) {
            scoped = repro.clone();
        }
    }

    // Greedy shrink: drop fault entries and halve shrinkable knobs
    // while the candidate still trips the same dimension.
    let shrunk = explore::shrink(&scoped, SHRINKABLE_KNOBS, |cand| {
        trips_same(cand, &mut capture_runs)
    });

    // Verification replays: the final candidate runs twice; equal
    // fingerprints prove bit-identical replay, and both runs must
    // re-trip the recorded dimension.
    let a = run_with_sentinel(&shrunk, budget, epoch_len);
    let b = run_with_sentinel(&shrunk, budget, epoch_len);
    capture_runs += 2;
    let retrip = |r: &SentinelRun| {
        r.violation
            .as_ref()
            .is_some_and(|v| v.dimension == trip.dimension)
    };
    let evidence = CaptureEvidence {
        dimension: trip.dimension.clone(),
        clean_scenario: repro.faults.is_empty(),
        original_fingerprint: a.fingerprint,
        replay_fingerprint: b.fingerprint,
        retripped: retrip(&a) && retrip(&b),
    };
    let oracle = check_capture(&evidence);

    let mut repro_out = shrunk;
    repro_out.violation = Some(format!("slo:{}", trip.dimension));
    // Everything a later `chaos --replay` needs to re-judge the trip
    // without the calibrated budget in hand: the tripped dimension's
    // ceiling plus the watchdog's window parameters. Together with
    // `window` below (epoch length, trip epoch) this makes the bundle
    // self-contained.
    repro_out.set_knob("slo_budget", trip.budget);
    repro_out.set_knob("slo_quantile_ppm", budget.quantile_ppm);
    repro_out.set_knob("slo_window_epochs", budget.window_epochs);
    repro_out.set_knob("slo_warmup_epochs", budget.warmup_epochs);
    if let Some(v) = &a.violation {
        repro_out.window = Some(ReproWindow {
            epoch_len,
            start: v.epoch.saturating_sub(budget.window_epochs.saturating_sub(1)),
            end: v.epoch,
            dimension: v.dimension.clone(),
        });
    }

    let card = IncidentCard {
        dimension: trip.dimension.clone(),
        detected_epoch: trip.epoch,
        observed: trip.observed,
        budget: trip.budget,
        quantile_ppm: budget.quantile_ppm,
        window: (
            trip.epoch.saturating_sub(budget.window_epochs.saturating_sub(1)),
            trip.epoch,
        ),
        onset_epoch: None,
        degraded: run.output.stats.degraded.clone(),
        shrink: Some(ShrinkSummary {
            faults_before: repro.faults.len() as u64,
            faults_after: repro_out.faults.len() as u64,
            clients_before: repro.knob("clients").unwrap_or(0),
            clients_after: repro_out.knob("clients").unwrap_or(0),
        }),
        replay: Some(ReplaySummary {
            fingerprint: a.fingerprint,
            bit_identical: a.fingerprint == b.fingerprint,
            retripped: evidence.retripped,
        }),
        before: run.before,
        after: run.after,
    };

    Some(Incident {
        violation: trip,
        repro: repro_out,
        evidence,
        oracle,
        card,
        capture_runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::default_workload;
    use whodunit_core::cost::CPU_HZ;
    use whodunit_core::repro::FaultEntry;

    fn clean_repro(seed: u64) -> ChaosRepro {
        let mut r = ChaosRepro {
            seed,
            policy: "fifo".into(),
            workload: default_workload(),
            faults: Vec::new(),
            violation: None,
            window: None,
        };
        r.set_knob("clients", 12);
        r.set_knob("duration", 25 * CPU_HZ);
        r.set_knob("warmup", 5 * CPU_HZ);
        r
    }

    #[test]
    fn calibrated_budget_does_not_trip_on_clean_runs() {
        let budget = calibrate_budget(&clean_repro(1), CPU_HZ, 3, 2);
        assert!(budget.stage_cycles.iter().all(|&(_, b)| b > 0));
        for seed in [1, 2] {
            let run = run_with_sentinel(&clean_repro(seed), &budget, CPU_HZ);
            assert!(run.violation.is_none(), "seed {seed}: {:?}", run.violation);
            assert!(!run.output.stats.used_fallback);
            assert!(run.epochs > 10, "sentinel observed the stream");
        }
    }

    #[test]
    fn planted_slowdown_is_captured_shrunk_and_verified() {
        let budget = calibrate_budget(&clean_repro(1), CPU_HZ, 3, 2);
        let mut storm = clean_repro(1);
        storm.faults = vec![FaultEntry::Slowdown {
            machine: "mysql".into(),
            from: 10 * CPU_HZ,
            until: 25 * CPU_HZ,
            factor: 8,
        }];
        let inc = capture_incident(&storm, &budget, CPU_HZ).expect("slowdown must trip");
        assert!(inc.violation.epoch >= 10, "tripped after onset");
        assert!(inc.oracle.is_empty(), "capture oracle: {:?}", inc.oracle);
        let w = inc.repro.window.as_ref().expect("window stamped");
        assert_eq!(w.dimension, inc.violation.dimension);
        assert!(w.end >= w.start);
        let s = inc.card.shrink.as_ref().unwrap();
        assert!(s.clients_after <= s.clients_before);
        let r = inc.card.replay.as_ref().unwrap();
        assert!(r.bit_identical && r.retripped);
        // The scoped repro is self-contained: parse it back and re-trip.
        let json = whodunit_core::repro::repro_to_json(&inc.repro);
        let parsed = whodunit_core::repro::repro_from_json(&json).unwrap();
        let replay = run_with_sentinel(&parsed, &budget, CPU_HZ);
        assert_eq!(
            replay.violation.map(|v| v.dimension),
            Some(inc.violation.dimension.clone())
        );
    }
}

