//! Apache-like multithreaded web server (Figures 1 & 8, §9.2).
//!
//! A *listener* thread accepts incoming connections and pushes them
//! into a shared fd queue; *worker* threads pop connections and serve
//! the HTTP requests on them. The queue push/pop critical sections run
//! as **guest programs on the instruction emulator** — the exact code
//! shape of Figure 1 — so Whodunit's §3 flow-detection algorithm sees
//! real (emulated) `MOV`s and infers the listener → worker transaction
//! flow, and the emulation's cycle cost (Table 3) is charged to the
//! serving threads, reproducing the §9.2 overhead experiment.
//!
//! Workers also exercise Apache's synchronized memory allocator
//! (§8.1): each connection allocates a block from a VM-emulated free
//! list and returns it afterwards. Whodunit detects the pattern,
//! disables flow for that lock, and stops emulating it — the §7.2
//! bail-out.

use crate::metrics::mbps;
use crate::rtconf::{make_runtime, ProcRuntime, RtKind};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use whodunit_core::cost::CPU_HZ;
use whodunit_core::frame::FrameId;
use whodunit_core::ids::{ChanId, LockId, LockMode, ProcId, ThreadId};
use whodunit_core::rt::Runtime;
use whodunit_sim::time::CondId;
use whodunit_sim::{Cycles, Msg, Op, Sim, SimConfig, ThreadBody, ThreadCx, Wake};
use whodunit_vm::programs::{Allocator, FdQueue};
use whodunit_vm::{Cpu, CsEmulator, ExecMode, GuestMem, Program, TranslationCache};
use whodunit_workload::{WebTrace, WebTraceConfig};

/// Cost of accepting a connection (socket + apr bookkeeping).
const ACCEPT_COST: Cycles = 60_000;
/// Cost of parsing one HTTP request.
const PARSE_COST: Cycles = 100_000;
/// Base cost of a `sendfile` call.
const SENDFILE_BASE: Cycles = 40_000;
/// Per-byte CPU cost of serving content (copy/checksum/driver).
const SENDFILE_PER_BYTE: Cycles = 38;

/// A connection as sent by a client: the requested file sizes and the
/// channel to reply on.
#[derive(Debug)]
struct Conn {
    sizes: Vec<u64>,
    reply: ChanId,
}

/// State shared by the httpd threads.
pub struct HttpdShared {
    mem: GuestMem,
    tcache: TranslationCache,
    fdq: FdQueue,
    alloc: Allocator,
    conns: HashMap<i64, Conn>,
    next_token: i64,
    queued: u32,
    emu: CsEmulator,
    /// Bytes of content served.
    pub served_bytes: u64,
    /// Requests served.
    pub served_reqs: u64,
    /// Connections served.
    pub served_conns: u64,
    /// Cycles spent running guest code (emulated or direct).
    pub guest_cycles: u64,
}

impl HttpdShared {
    fn new(fdq_lock: u32, alloc_lock: u32) -> Self {
        let fdq = FdQueue::new(fdq_lock);
        let alloc = Allocator::at(alloc_lock, 2048);
        let mut mem = GuestMem::new(4096);
        // Seed the allocator's free list with block addresses (the
        // block payloads live at 3000+).
        let blocks: Vec<i64> = (0..64).map(|i| 3000 + i).collect();
        alloc.seed(&mut mem, &blocks);
        FdQueue::init(&mut mem, 900);
        HttpdShared {
            mem,
            tcache: TranslationCache::new(),
            fdq,
            alloc,
            conns: HashMap::new(),
            next_token: 1,
            queued: 0,
            emu: CsEmulator::default(),
            served_bytes: 0,
            served_reqs: 0,
            served_conns: 0,
            guest_cycles: 0,
        }
    }

    /// Runs a guest program for `t`, consulting the runtime for the
    /// §7.2 emulate-or-native decision and streaming memory events to
    /// it. Returns the cycles to charge and the CPU register file
    /// afterwards (for return values).
    fn run_guest(
        &mut self,
        rt: &Rc<RefCell<dyn Runtime>>,
        t: ThreadId,
        stack: &[FrameId],
        prog: &Program,
        lock: LockId,
        args: &[(usize, i64)],
    ) -> (Cycles, [i64; 16]) {
        let mut cpu = Cpu::new(t);
        for &(r, v) in args {
            cpu.regs[r] = v;
        }
        let emulate = rt.borrow().wants_emulation(lock);
        let stats = if emulate {
            let mut rtb = rt.borrow_mut();
            self.emu.run(
                prog,
                &mut cpu,
                &mut self.mem,
                ExecMode::Emulated {
                    tcache: &mut self.tcache,
                },
                &mut |e| rtb.on_mem_event(t, stack, e),
            )
        } else {
            self.emu
                .run(prog, &mut cpu, &mut self.mem, ExecMode::Direct, &mut |_| {})
        };
        self.guest_cycles += stats.cycles;
        (stats.cycles, cpu.regs)
    }
}

/// The listener thread: accept → `ap_queue_push` → notify.
struct Listener {
    shared: Rc<RefCell<HttpdShared>>,
    conn_chan: ChanId,
    qlock: LockId,
    qcond: CondId,
    f_main: FrameId,
    f_accept: FrameId,
    f_push: FrameId,
    state: LState,
}

enum LState {
    Init,
    WaitConn,
    Accepted(i64),
    QLocked(i64),
    Pushed,
    Unlocked,
    Notified,
}

impl ThreadBody for Listener {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match std::mem::replace(&mut self.state, LState::Init) {
            LState::Init => {
                cx.push_frame(self.f_main);
                self.state = LState::WaitConn;
                Op::Recv(self.conn_chan)
            }
            LState::WaitConn => {
                let Wake::Received(msg) = wake else {
                    unreachable!("listener waits only for connections");
                };
                let conn = msg.take::<Conn>();
                let mut sh = self.shared.borrow_mut();
                let token = sh.next_token;
                sh.next_token += 1;
                sh.conns.insert(token, conn);
                drop(sh);
                cx.push_frame(self.f_accept);
                self.state = LState::Accepted(token);
                Op::Compute(ACCEPT_COST)
            }
            LState::Accepted(token) => {
                self.state = LState::QLocked(token);
                Op::Lock(self.qlock, LockMode::Exclusive)
            }
            LState::QLocked(token) => {
                cx.push_frame(self.f_push);
                let rt = cx.runtime();
                let stack: Vec<FrameId> = cx.stack().to_vec();
                let push = self.shared.borrow().fdq.push.clone();
                let (cycles, _) = self.shared.borrow_mut().run_guest(
                    &rt,
                    cx.me(),
                    &stack,
                    &push,
                    self.qlock,
                    &[(1, token), (2, token)],
                );
                self.shared.borrow_mut().queued += 1;
                self.state = LState::Pushed;
                Op::Compute(cycles)
            }
            LState::Pushed => {
                cx.pop_frame();
                self.state = LState::Unlocked;
                Op::Unlock(self.qlock)
            }
            LState::Unlocked => {
                self.state = LState::Notified;
                Op::Notify(self.qcond, false)
            }
            LState::Notified => {
                cx.pop_frame();
                self.state = LState::WaitConn;
                Op::Recv(self.conn_chan)
            }
        }
    }
}

/// A worker thread: `ap_queue_pop` → allocator → serve requests →
/// free → loop.
struct Worker {
    shared: Rc<RefCell<HttpdShared>>,
    qlock: LockId,
    qcond: CondId,
    alock: LockId,
    f_main: FrameId,
    f_pop: FrameId,
    f_process: FrameId,
    f_sendfile: FrameId,
    state: WState,
}

enum WState {
    Init,
    QLock,
    Popped(i64),
    AllocLock(Option<Conn>),
    Alloced(Option<Conn>),
    AllocUnlocked(Option<Conn>),
    Parse { conn: Option<Conn>, idx: usize },
    SendfileDone { conn: Option<Conn>, idx: usize },
    Replied { conn: Option<Conn>, idx: usize },
    FreeLock,
    Freed,
    FreeUnlocked,
}

impl Worker {
    fn pop_or_wait(&mut self, cx: &mut ThreadCx<'_>) -> Op {
        // Holding the queue lock.
        let queued = self.shared.borrow().queued;
        if queued == 0 {
            self.state = WState::QLock;
            return Op::CondWait(self.qcond, self.qlock);
        }
        self.shared.borrow_mut().queued -= 1;
        cx.push_frame(self.f_pop);
        let rt = cx.runtime();
        let stack: Vec<FrameId> = cx.stack().to_vec();
        let pop = self.shared.borrow().fdq.pop.clone();
        let (cycles, regs) =
            self.shared
                .borrow_mut()
                .run_guest(&rt, cx.me(), &stack, &pop, self.qlock, &[]);
        // r5 holds the consumed `sd` (our connection token) after the
        // post-exit use; value integrity through the emulated queue.
        self.state = WState::Popped(regs[5]);
        Op::Compute(cycles)
    }
}

impl ThreadBody for Worker {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match std::mem::replace(&mut self.state, WState::Init) {
            WState::Init => {
                cx.push_frame(self.f_main);
                self.state = WState::QLock;
                Op::Lock(self.qlock, LockMode::Exclusive)
            }
            WState::QLock => {
                debug_assert!(matches!(
                    wake,
                    Wake::LockAcquired { .. } | Wake::CondWoken { .. }
                ));
                self.pop_or_wait(cx)
            }
            WState::Popped(token) => {
                cx.pop_frame();
                let conn = self
                    .shared
                    .borrow_mut()
                    .conns
                    .remove(&token)
                    .expect("popped token has a registered connection");
                self.state = WState::AllocLock(Some(conn));
                Op::Unlock(self.qlock)
            }
            WState::AllocLock(conn) => {
                cx.push_frame(self.f_process);
                self.state = WState::Alloced(conn);
                Op::Lock(self.alock, LockMode::Exclusive)
            }
            WState::Alloced(conn) => {
                let rt = cx.runtime();
                let stack: Vec<FrameId> = cx.stack().to_vec();
                let alloc = self.shared.borrow().alloc.alloc.clone();
                let (cycles, _) = self.shared.borrow_mut().run_guest(
                    &rt,
                    cx.me(),
                    &stack,
                    &alloc,
                    self.alock,
                    &[],
                );
                self.state = WState::AllocUnlocked(conn);
                Op::Compute(cycles)
            }
            WState::AllocUnlocked(conn) => {
                self.state = WState::Parse { conn, idx: 0 };
                Op::Unlock(self.alock)
            }
            WState::Parse { conn, idx } => {
                let done = conn.as_ref().map(|c| idx >= c.sizes.len()).unwrap_or(true);
                if done {
                    // All requests served; return the allocator block.
                    self.state = WState::Freed;
                    // Account the finished connection while dropping it.
                    if let Some(c) = conn {
                        let mut sh = self.shared.borrow_mut();
                        sh.served_conns += 1;
                        drop(c);
                    }
                    return Op::Lock(self.alock, LockMode::Exclusive);
                }
                self.state = WState::SendfileDone { conn, idx };
                Op::Compute(PARSE_COST)
            }
            WState::SendfileDone { conn, idx } => {
                let bytes = conn.as_ref().expect("conn present").sizes[idx];
                cx.push_frame(self.f_sendfile);
                self.state = WState::Replied { conn, idx };
                Op::Compute(SENDFILE_BASE + bytes * SENDFILE_PER_BYTE)
            }
            WState::Replied { conn, idx } => {
                cx.pop_frame();
                let c = conn.as_ref().expect("conn present");
                let bytes = c.sizes[idx];
                let reply = c.reply;
                {
                    let mut sh = self.shared.borrow_mut();
                    sh.served_bytes += bytes;
                    sh.served_reqs += 1;
                }
                self.state = WState::Parse { conn, idx: idx + 1 };
                Op::Send(reply, Msg::new(bytes, bytes))
            }
            WState::Freed => {
                let rt = cx.runtime();
                let stack: Vec<FrameId> = cx.stack().to_vec();
                let free = self.shared.borrow().alloc.free.clone();
                let (cycles, _) = self.shared.borrow_mut().run_guest(
                    &rt,
                    cx.me(),
                    &stack,
                    &free,
                    self.alock,
                    &[(1, 3000)],
                );
                self.state = WState::FreeUnlocked;
                Op::Compute(cycles)
            }
            WState::FreeUnlocked => {
                self.state = WState::FreeLock;
                Op::Unlock(self.alock)
            }
            WState::FreeLock => {
                cx.pop_frame();
                self.state = WState::QLock;
                Op::Lock(self.qlock, LockMode::Exclusive)
            }
        }
    }
}

/// A closed-loop web client: opens a connection, issues its requests,
/// reads the responses, repeats.
struct WebClient {
    trace: WebTrace,
    server: ChanId,
    reply: ChanId,
    outstanding: usize,
}

impl WebClient {
    fn next_conn(&mut self) -> Conn {
        let mut sizes = Vec::new();
        loop {
            let r = self.trace.next_request();
            sizes.push(r.bytes);
            if r.last_on_connection {
                break;
            }
        }
        Conn {
            sizes,
            reply: self.reply,
        }
    }
}

impl ThreadBody for WebClient {
    fn resume(&mut self, _cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match wake {
            Wake::Start | Wake::Done if self.outstanding == 0 => {
                let conn = self.next_conn();
                self.outstanding = conn.sizes.len();
                Op::Send(self.server, Msg::new(conn, 400))
            }
            Wake::Done => Op::Recv(self.reply),
            Wake::Received(_) => {
                self.outstanding -= 1;
                if self.outstanding == 0 {
                    let conn = self.next_conn();
                    self.outstanding = conn.sizes.len();
                    Op::Send(self.server, Msg::new(conn, 400))
                } else {
                    Op::Recv(self.reply)
                }
            }
            _ => unreachable!("client wakes: start/done/received"),
        }
    }
}

/// Harness configuration.
#[derive(Clone, Debug)]
pub struct HttpdConfig {
    /// Number of closed-loop clients.
    pub clients: u32,
    /// Worker threads.
    pub workers: u32,
    /// Server cores.
    pub cores: u32,
    /// Virtual run duration.
    pub duration: Cycles,
    /// Which profiler to install in the server process.
    pub rt: RtKind,
    /// Web trace parameters.
    pub trace: WebTraceConfig,
}

impl Default for HttpdConfig {
    fn default() -> Self {
        HttpdConfig {
            clients: 24,
            workers: 8,
            cores: 1,
            duration: 20 * CPU_HZ,
            rt: RtKind::Whodunit,
            trace: WebTraceConfig::default(),
        }
    }
}

/// Results of one httpd run.
pub struct HttpdReport {
    /// Served content throughput in Mb/s.
    pub throughput_mbps: f64,
    /// Connections completed.
    pub conns: u64,
    /// Requests served.
    pub reqs: u64,
    /// Cycles spent in guest (critical-section) code.
    pub guest_cycles: u64,
    /// The server's profiling runtime (for reading profiles).
    pub runtime: ProcRuntime,
    /// The fd-queue lock (for flow queries).
    pub fdq_lock: LockId,
    /// The allocator lock.
    pub alloc_lock: LockId,
    /// Virtual duration of the run.
    pub duration: Cycles,
}

/// Runs the Apache-like server under the given configuration.
pub fn run_httpd(cfg: HttpdConfig) -> HttpdReport {
    let mut sim = Sim::new(SimConfig::default());
    let server_m = sim.add_machine(cfg.cores);
    let client_m = sim.add_machine(8);

    let qlock = sim.add_lock();
    let qcond = sim.add_cond();
    let alock = sim.add_lock();

    let pr = make_runtime(cfg.rt, ProcId(0), "httpd", sim.frames().clone());
    let httpd_proc = sim.add_process("httpd", pr.rt.clone());
    let client_proc = sim.add_unprofiled_process("clients");

    let conn_chan = sim.add_channel(240_000, 20);

    let shared = Rc::new(RefCell::new(HttpdShared::new(qlock.0, alock.0)));

    let f_lmain = sim.frame("listener_main");
    let f_accept = sim.frame("apr_socket_accept");
    let f_push = sim.frame("ap_queue_push");
    let f_wmain = sim.frame("worker_main");
    let f_pop = sim.frame("ap_queue_pop");
    let f_process = sim.frame("ap_process_connection");
    let f_sendfile = sim.frame("sendfile");

    sim.spawn(
        httpd_proc,
        server_m,
        "listener",
        Box::new(Listener {
            shared: shared.clone(),
            conn_chan,
            qlock,
            qcond,
            f_main: f_lmain,
            f_accept,
            f_push,
            state: LState::Init,
        }),
    );
    for i in 0..cfg.workers {
        sim.spawn(
            httpd_proc,
            server_m,
            &format!("worker{i}"),
            Box::new(Worker {
                shared: shared.clone(),
                qlock,
                qcond,
                alock,
                f_main: f_wmain,
                f_pop,
                f_process,
                f_sendfile,
                state: WState::Init,
            }),
        );
    }
    for i in 0..cfg.clients {
        let reply = sim.add_channel(240_000, 20);
        let mut trace_cfg = cfg.trace.clone();
        trace_cfg.stream = i as u64 + 1;
        sim.spawn(
            client_proc,
            client_m,
            &format!("client{i}"),
            Box::new(WebClient {
                trace: WebTrace::new(trace_cfg),
                server: conn_chan,
                reply,
                outstanding: 0,
            }),
        );
    }

    sim.run_until(cfg.duration);

    let sh = shared.borrow();
    HttpdReport {
        throughput_mbps: mbps(sh.served_bytes, cfg.duration),
        conns: sh.served_conns,
        reqs: sh.served_reqs,
        guest_cycles: sh.guest_cycles,
        runtime: pr,
        fdq_lock: qlock,
        alloc_lock: alock,
        duration: cfg.duration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whodunit_core::shm::FlowEvent;

    fn small_cfg(rt: RtKind) -> HttpdConfig {
        HttpdConfig {
            clients: 8,
            workers: 4,
            duration: 3 * CPU_HZ,
            rt,
            ..HttpdConfig::default()
        }
    }

    #[test]
    fn serves_traffic_and_detects_fd_queue_flow() {
        let r = run_httpd(small_cfg(RtKind::Whodunit));
        assert!(r.reqs > 100, "reqs = {}", r.reqs);
        assert!(r.conns > 20, "conns = {}", r.conns);
        assert!(r.throughput_mbps > 10.0, "tput = {}", r.throughput_mbps);
        let w = r.runtime.whodunit.as_ref().unwrap().borrow();
        // §8.1: flow through the fd queue is detected…
        assert!(w
            .flow_log()
            .iter()
            .any(|e| matches!(e, FlowEvent::Consumed { lock, .. } if *lock == r.fdq_lock)));
        assert!(w.detector().flow_enabled(r.fdq_lock));
        // …and the allocator pattern is excluded + emulation disabled.
        assert!(!w.detector().flow_enabled(r.alloc_lock));
        assert!(!w.wants_emulation(r.alloc_lock));
    }

    #[test]
    fn worker_profile_carries_listener_context() {
        let r = run_httpd(small_cfg(RtKind::Whodunit));
        let w = r.runtime.whodunit.as_ref().unwrap().borrow();
        // Figure 8: the worker's CCT must be annotated with a context
        // containing the listener's push path.
        let flow_ctx = w
            .profiled_contexts()
            .into_iter()
            .find(|&c| w.ctx_string(c).contains("ap_queue_push"))
            .expect("a flow context exists");
        let cct = w.cct(flow_ctx).expect("flow context has samples");
        assert!(cct.total().cycles > 0);
    }

    #[test]
    fn unprofiled_run_serves_more_or_equal() {
        let base = run_httpd(small_cfg(RtKind::None));
        let prof = run_httpd(small_cfg(RtKind::Whodunit));
        assert!(base.throughput_mbps >= prof.throughput_mbps * 0.99);
        // Overhead should be single-digit percent (§9.2 measures 2.3%).
        let oh = 1.0 - prof.throughput_mbps / base.throughput_mbps;
        assert!(oh < 0.15, "overhead {:.1}%", oh * 100.0);
    }

    #[test]
    fn run_is_deterministic() {
        let a = run_httpd(small_cfg(RtKind::Whodunit));
        let b = run_httpd(small_cfg(RtKind::Whodunit));
        assert_eq!(a.reqs, b.reqs);
        assert_eq!(a.conns, b.conns);
        assert_eq!(a.guest_cycles, b.guest_cycles);
    }
}
