//! Driving the collector federation from recorded application streams.
//!
//! The federation tier ([`whodunit_collector::federation`]) is
//! substrate-agnostic: it consumes [`EpochBatch`]es per leaf and a
//! [`LinkPolicy`] for its uplinks. This module supplies both from the
//! TPC-W stack:
//!
//! - [`replica_header`] / [`leaf_stream`]: the delta-level
//!   process-remap trick the fleet benches use (`replicate_fleet` at
//!   the dump level, `fleet_stream` at the stream level), sliced per
//!   leaf — replica `r`'s single-stack stream is remapped into the
//!   `r*g..r*g+g` global stage range and staggered `r * stagger`
//!   epochs, so a leaf owning replicas `[r0, r1)` sees exactly its
//!   subtree's slice of the fleet;
//! - [`fan_in_topology`]: contiguous replica → leaf → region
//!   assignment for any fan-in shape;
//! - [`FaultLinkPolicy`]: the simulator's seeded [`FaultPlan`]
//!   (drop/dup/delay/partition, bit-stable draw stream) adapted onto
//!   the federation's links;
//! - [`run_federation`]: the whole drive loop — build, feed, tick,
//!   finalize — shared by the differential suite and the
//!   `federation` bench.

use whodunit_collector::federation::{
    FedNodeId, Federation, FederationConfig, FederationOutput, LinkPolicy, LinkVerdict,
};
use whodunit_core::delta::{EpochBatch, StreamHeader, StreamStage};
use whodunit_core::ids::ChanId;
use whodunit_sim::FaultPlan;

use std::collections::HashMap;

/// The global fleet header for `replicas` copies of the recorded
/// single-stack header: replica `r`'s stage `i` becomes global stage
/// `r*g + i` with process id `r*g + proc_index(i)` — exactly the id
/// space `replicate_fleet` uses at the dump level.
pub fn replica_header(hdr: &StreamHeader, replicas: usize) -> StreamHeader {
    let g = hdr.stages.len();
    let proc_index = proc_index_of(hdr);
    let mut stages = Vec::with_capacity(g * replicas);
    for r in 0..replicas {
        for s in &hdr.stages {
            stages.push(StreamStage {
                proc: (r * g + proc_index[&s.proc]) as u32,
                stage_name: s.stage_name.clone(),
            });
        }
    }
    StreamHeader { stages }
}

fn proc_index_of(hdr: &StreamHeader) -> HashMap<u32, usize> {
    hdr.stages
        .iter()
        .enumerate()
        .map(|(i, s)| (s.proc, i))
        .collect()
}

/// Total fleet-stream epochs for a recorded stream of `local` epochs
/// replicated `replicas` times with the given stagger.
pub fn fleet_epochs(local: usize, replicas: usize, stagger: u64) -> u64 {
    local as u64 + (replicas as u64 - 1) * stagger
}

/// The slice of the staggered fleet stream owned by one leaf: batches
/// carrying replicas `[r0, r1)`, remapped into global stage/process
/// space, one batch per global epoch (batches with no deltas for the
/// slice are omitted). `end` is stamped as `(epoch + 1) * epoch_len`.
pub fn leaf_stream(
    hdr: &StreamHeader,
    batches: &[EpochBatch],
    r0: usize,
    r1: usize,
    stagger: u64,
    total_epochs: u64,
    epoch_len: u64,
) -> Vec<EpochBatch> {
    let g = hdr.stages.len();
    let proc_index = proc_index_of(hdr);
    let local = batches.len() as u64;
    let mut out = Vec::new();
    for ge in 0..total_epochs {
        let mut deltas = Vec::new();
        for r in r0..r1 {
            let start = r as u64 * stagger;
            if ge < start || ge - start >= local {
                continue;
            }
            let b = &batches[(ge - start) as usize];
            let map = |p: u32| proc_index.get(&p).map(|&i| (r * g + i) as u32);
            for d in &b.deltas {
                deltas.push(d.with_remapped_proc(r * g + d.stage, &map));
            }
        }
        if deltas.is_empty() {
            continue;
        }
        out.push(EpochBatch {
            epoch: ge,
            seq: ge,
            end: (ge + 1) * epoch_len,
            deltas,
        });
    }
    out
}

/// A federation topology: per region, per leaf, the owned global
/// stage indices (the shape `Federation::new` consumes).
pub type FedTopology = Vec<Vec<Vec<usize>>>;

/// Contiguous replica → leaf → region assignment.
///
/// `leaves_by_region[r]` is the leaf count of region `r`; `replicas`
/// are split across the leaves in order, sizes differing by at most
/// one (leaves beyond the replica count own nothing and are not
/// created). Returns the federation topology (per-leaf owned global
/// stage index lists, `g` stages per replica) and the per-leaf replica
/// ranges `[r0, r1)` in leaf-id order.
pub fn fan_in_topology(
    replicas: usize,
    g: usize,
    leaves_by_region: &[usize],
) -> (FedTopology, Vec<(usize, usize)>) {
    let total_leaves: usize = leaves_by_region.iter().sum();
    assert!(total_leaves > 0, "topology needs at least one leaf");
    let used = total_leaves.min(replicas);
    let base = replicas / used;
    let extra = replicas % used;
    let mut ranges = Vec::with_capacity(used);
    let mut next = 0;
    for l in 0..used {
        let take = base + usize::from(l < extra);
        ranges.push((next, next + take));
        next += take;
    }
    assert_eq!(next, replicas);
    let mut topo = Vec::new();
    let mut leaf = 0;
    for &n in leaves_by_region {
        let mut region = Vec::new();
        for _ in 0..n {
            if leaf >= used {
                break;
            }
            let (r0, r1) = ranges[leaf];
            region.push((r0 * g..r1 * g).collect());
            leaf += 1;
        }
        if !region.is_empty() {
            topo.push(region);
        }
    }
    (topo, ranges)
}

/// The simulator's seeded fault plan adapted onto federation links:
/// link ids become [`ChanId`]s, federation ticks become the plan's
/// virtual time (so partition windows are expressed in ticks), and
/// `extra_delay` is used as a tick count.
pub struct FaultLinkPolicy {
    plan: FaultPlan,
}

impl FaultLinkPolicy {
    /// Wraps a plan. Channel ids in the plan address federation links:
    /// leaf uplinks are `ChanId(leaf_id)`, regional uplinks are
    /// `ChanId(leaf_count + region)`.
    pub fn new(plan: FaultPlan) -> FaultLinkPolicy {
        FaultLinkPolicy { plan }
    }
}

impl LinkPolicy for FaultLinkPolicy {
    fn verdict(&mut self, link: u32, now: u64) -> LinkVerdict {
        let v = self.plan.send_verdict_at(ChanId(link), now);
        LinkVerdict {
            copies: v.copies,
            delay: v.extra_delay,
        }
    }
}

/// One planted crash for [`run_federation`].
#[derive(Clone, Copy, Debug)]
pub struct FedCrash {
    /// The node to kill.
    pub node: FedNodeId,
    /// Federation tick of the crash.
    pub at: u64,
    /// Recovery tick, or `None` for an unrecoverable loss.
    pub recover_at: Option<u64>,
}

/// Builds a federation over the replicated fleet of a recorded
/// single-stack stream and drives it to completion: one feed round per
/// global epoch (each leaf gets its slice), one tick per epoch, then
/// finalize (which drains until quiescent or deadline).
#[allow(clippy::too_many_arguments)]
pub fn run_federation(
    hdr: &StreamHeader,
    batches: &[EpochBatch],
    replicas: usize,
    stagger: u64,
    epoch_len: u64,
    leaves_by_region: &[usize],
    cfg: FederationConfig,
    policy: Box<dyn LinkPolicy>,
    crashes: &[FedCrash],
) -> FederationOutput {
    let g = hdr.stages.len();
    let global = replica_header(hdr, replicas);
    let (topo, ranges) = fan_in_topology(replicas, g, leaves_by_region);
    let total = fleet_epochs(batches.len(), replicas, stagger);
    let streams: Vec<Vec<EpochBatch>> = ranges
        .iter()
        .map(|&(r0, r1)| leaf_stream(hdr, batches, r0, r1, stagger, total, epoch_len))
        .collect();
    let mut fed = Federation::new(&global, &topo, cfg, policy);
    for c in crashes {
        fed.crash(c.node, c.at, c.recover_at);
    }
    let mut cursors = vec![0usize; streams.len()];
    for ge in 0..total {
        // One round per global epoch, at most one batch per leaf —
        // ingested serially or on the executor per `cfg.workers`.
        let mut round: Vec<(usize, &EpochBatch)> = Vec::new();
        for (leaf, stream) in streams.iter().enumerate() {
            let cur = cursors[leaf];
            if cur < stream.len() && stream[cur].epoch == ge {
                round.push((leaf, &stream[cur]));
                cursors[leaf] = cur + 1;
            }
        }
        fed.feed_round(&round);
        fed.tick();
    }
    fed.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_splits_replicas_contiguously() {
        let (topo, ranges) = fan_in_topology(10, 3, &[2, 2]);
        assert_eq!(topo.len(), 2);
        assert_eq!(ranges, vec![(0, 3), (3, 6), (6, 8), (8, 10)]);
        // Leaf 0 owns replicas 0..3 → global stages 0..9.
        assert_eq!(topo[0][0], (0..9).collect::<Vec<_>>());
        assert_eq!(topo[1][1], (24..30).collect::<Vec<_>>());
    }

    #[test]
    fn topology_with_more_leaves_than_replicas_shrinks() {
        let (topo, ranges) = fan_in_topology(2, 3, &[2, 2]);
        let leaves: usize = topo.iter().map(|r| r.len()).sum();
        assert_eq!(leaves, 2);
        assert_eq!(ranges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn fault_link_policy_mirrors_the_plan() {
        let plan = FaultPlan::new(7).partition(ChanId(0), 5, 10);
        let mut ours = FaultLinkPolicy::new(plan.clone());
        let mut theirs = plan;
        for now in 0..20 {
            for link in [0u32, 1] {
                let a = ours.verdict(link, now);
                let b = theirs.send_verdict_at(ChanId(link), now);
                assert_eq!((a.copies, a.delay), (b.copies, b.extra_delay));
            }
        }
    }
}
