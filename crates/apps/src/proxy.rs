//! Squid-like event-driven proxy cache (Figure 9, §8.2, §9.3).
//!
//! A single event-loop thread (`comm_poll`) dispatches five handlers,
//! exactly Squid's main handlers from the paper:
//!
//! - `httpAccept` — a client opened a connection;
//! - `clientReadRequest` — a request arrived on a connection;
//! - `commConnectHandle` — an origin connection is being opened (miss);
//! - `httpReadReply` — content arrived from the origin server;
//! - `commHandleWrite` — the response is written back to the client.
//!
//! Each handler execution is reported to the runtime through the §4.1
//! event hooks: the handler runs under the continuation context stored
//! on its connection and leaves a new continuation behind. A cache hit
//! executes `commHandleWrite` under the context
//! `[httpAccept, clientReadRequest]`; a miss goes through
//! `commConnectHandle`/`httpReadReply` first — which is how Whodunit
//! distinguishes the hit and miss appearances of `commHandleWrite`
//! (Figure 9), something a regular profiler cannot do. Persistent
//! connections re-execute `clientReadRequest` after `commHandleWrite`;
//! the §4.1 loop pruning keeps contexts finite.

use crate::metrics::mbps;
use crate::rtconf::{make_runtime, ProcRuntime, RtKind};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use whodunit_core::cost::{ms_to_cycles, CPU_HZ};
use whodunit_core::events::EventCtx;
use whodunit_core::frame::FrameId;
use whodunit_core::ids::ChanId;
use whodunit_sim::{Cycles, Msg, Op, Sim, SimConfig, ThreadBody, ThreadCx, Wake};
use whodunit_workload::{WebTrace, WebTraceConfig};

/// Handler CPU costs.
const ACCEPT_COST: Cycles = 120_000;
const READ_REQ_COST: Cycles = 150_000;
const CONNECT_COST: Cycles = 90_000;
const READ_REPLY_BASE: Cycles = 60_000;
const READ_REPLY_PER_BYTE: Cycles = 50;
const WRITE_BASE: Cycles = 50_000;
const WRITE_PER_BYTE: Cycles = 55;

/// Messages arriving at the proxy's poll channel.
#[derive(Debug)]
enum ProxyMsg {
    /// A client opened a connection.
    NewConn { conn: u64, reply: ChanId },
    /// A request on an open connection.
    Request { conn: u64, file: u32 },
    /// Origin content for an outstanding miss.
    OriginData { conn: u64, file: u32, bytes: u64 },
}

/// A request to the origin server.
#[derive(Debug)]
struct OriginReq {
    conn: u64,
    file: u32,
    reply: ChanId,
}

struct ConnState {
    reply: ChanId,
    ev: EventCtx,
}

/// Cache with a byte-capacity bound and FIFO eviction.
struct ByteCache {
    entries: HashMap<u32, u64>,
    order: VecDeque<u32>,
    bytes: u64,
    capacity: u64,
    /// Requests that hit.
    pub hits: u64,
    /// Requests that missed.
    pub misses: u64,
}

impl ByteCache {
    fn new(capacity: u64) -> Self {
        ByteCache {
            entries: HashMap::new(),
            order: VecDeque::new(),
            bytes: 0,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    fn lookup(&mut self, file: u32) -> Option<u64> {
        match self.entries.get(&file).copied() {
            Some(b) => {
                self.hits += 1;
                Some(b)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, file: u32, bytes: u64) {
        if self.entries.contains_key(&file) {
            return;
        }
        self.entries.insert(file, bytes);
        self.order.push_back(file);
        self.bytes += bytes;
        while self.bytes > self.capacity {
            let Some(victim) = self.order.pop_front() else {
                break;
            };
            if let Some(b) = self.entries.remove(&victim) {
                self.bytes -= b;
            }
        }
    }
}

/// Shared proxy state.
pub struct ProxyShared {
    conns: HashMap<u64, ConnState>,
    cache: ByteCache,
    /// Bytes served to clients.
    pub served_bytes: u64,
    /// Requests served.
    pub served_reqs: u64,
    /// Cache hits.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
}

enum PState {
    Init,
    WaitMsg,
    AcceptDone { conn: u64 },
    ReadDone { conn: u64, file: u32 },
    ConnectDone { conn: u64, file: u32 },
    ReadReplyDone { conn: u64, file: u32, bytes: u64 },
    WriteDone { conn: u64, bytes: u64 },
    Sent,
}

/// The `comm_poll` event-loop thread.
struct EventLoop {
    shared: Rc<RefCell<ProxyShared>>,
    poll: ChanId,
    origin: ChanId,
    f_accept: FrameId,
    f_read: FrameId,
    f_connect: FrameId,
    f_read_reply: FrameId,
    f_write: FrameId,
    state: PState,
}

impl EventLoop {
    /// Figure 4 lines 5–7: dispatch `handler` for the continuation
    /// `ev`, entering the handler's frame.
    fn dispatch(&self, cx: &mut ThreadCx<'_>, ev: EventCtx, handler: FrameId) {
        cx.runtime()
            .borrow_mut()
            .on_event_dispatch(cx.me(), ev, handler);
        cx.push_frame(handler);
    }

    /// The handler returned: capture its continuation for `conn`.
    fn finish(&self, cx: &mut ThreadCx<'_>, conn: u64) -> EventCtx {
        let ev = cx.runtime().borrow_mut().on_event_create(cx.me());
        cx.runtime().borrow_mut().on_handler_done(cx.me());
        cx.pop_frame();
        if let Some(c) = self.shared.borrow_mut().conns.get_mut(&conn) {
            c.ev = ev;
        }
        ev
    }
}

impl ThreadBody for EventLoop {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match std::mem::replace(&mut self.state, PState::WaitMsg) {
            PState::Init => {
                cx.push_frame(cx.frame("comm_poll"));
                self.state = PState::WaitMsg;
                Op::Recv(self.poll)
            }
            PState::WaitMsg => {
                let Wake::Received(msg) = wake else {
                    unreachable!("event loop waits on the poll channel");
                };
                match msg.take::<ProxyMsg>() {
                    ProxyMsg::NewConn { conn, reply } => {
                        self.shared.borrow_mut().conns.insert(
                            conn,
                            ConnState {
                                reply,
                                ev: EventCtx::default(),
                            },
                        );
                        self.dispatch(cx, EventCtx::default(), self.f_accept);
                        self.state = PState::AcceptDone { conn };
                        Op::Compute(ACCEPT_COST)
                    }
                    ProxyMsg::Request { conn, file } => {
                        let ev = self.shared.borrow().conns[&conn].ev;
                        self.dispatch(cx, ev, self.f_read);
                        self.state = PState::ReadDone { conn, file };
                        Op::Compute(READ_REQ_COST)
                    }
                    ProxyMsg::OriginData { conn, file, bytes } => {
                        let ev = self.shared.borrow().conns[&conn].ev;
                        self.dispatch(cx, ev, self.f_read_reply);
                        self.state = PState::ReadReplyDone { conn, file, bytes };
                        Op::Compute(READ_REPLY_BASE + bytes * READ_REPLY_PER_BYTE)
                    }
                }
            }
            PState::AcceptDone { conn } => {
                self.finish(cx, conn);
                self.state = PState::WaitMsg;
                Op::Recv(self.poll)
            }
            PState::ReadDone { conn, file } => {
                let ev = self.finish(cx, conn);
                let hit = self.shared.borrow_mut().cache.lookup(file);
                match hit {
                    Some(bytes) => {
                        self.shared.borrow_mut().hits += 1;
                        self.dispatch(cx, ev, self.f_write);
                        self.state = PState::WriteDone { conn, bytes };
                        Op::Compute(WRITE_BASE + bytes * WRITE_PER_BYTE)
                    }
                    None => {
                        self.shared.borrow_mut().misses += 1;
                        self.dispatch(cx, ev, self.f_connect);
                        self.state = PState::ConnectDone { conn, file };
                        Op::Compute(CONNECT_COST)
                    }
                }
            }
            PState::ConnectDone { conn, file } => {
                self.finish(cx, conn);
                self.state = PState::Sent;
                Op::Send(
                    self.origin,
                    Msg::new(
                        OriginReq {
                            conn,
                            file,
                            reply: self.poll,
                        },
                        400,
                    ),
                )
            }
            PState::ReadReplyDone { conn, file, bytes } => {
                let ev = self.finish(cx, conn);
                self.shared.borrow_mut().cache.insert(file, bytes);
                self.dispatch(cx, ev, self.f_write);
                self.state = PState::WriteDone { conn, bytes };
                Op::Compute(WRITE_BASE + bytes * WRITE_PER_BYTE)
            }
            PState::WriteDone { conn, bytes } => {
                self.finish(cx, conn);
                let reply = self.shared.borrow().conns[&conn].reply;
                {
                    let mut sh = self.shared.borrow_mut();
                    sh.served_bytes += bytes;
                    sh.served_reqs += 1;
                }
                self.state = PState::Sent;
                Op::Send(reply, Msg::new(bytes, bytes))
            }
            PState::Sent => {
                self.state = PState::WaitMsg;
                Op::Recv(self.poll)
            }
        }
    }
}

/// Origin-server worker: returns file content with a small compute.
struct OriginWorker {
    in_chan: ChanId,
    sizes: Rc<Vec<u64>>,
    f_main: FrameId,
    state: OState,
}

enum OState {
    Init,
    WaitReq,
    Serve { req: Option<OriginReq> },
    Sent,
}

impl ThreadBody for OriginWorker {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match std::mem::replace(&mut self.state, OState::WaitReq) {
            OState::Init => {
                cx.push_frame(self.f_main);
                self.state = OState::WaitReq;
                Op::Recv(self.in_chan)
            }
            OState::WaitReq => {
                let Wake::Received(msg) = wake else {
                    unreachable!("origin waits for requests");
                };
                let req = msg.take::<OriginReq>();
                let bytes = self.sizes[req.file as usize];
                self.state = OState::Serve { req: Some(req) };
                Op::Compute(80_000 + bytes * 12)
            }
            OState::Serve { req } => {
                let r = req.expect("request present");
                let bytes = self.sizes[r.file as usize];
                self.state = OState::Sent;
                Op::Send(
                    r.reply,
                    Msg::new(
                        ProxyMsg::OriginData {
                            conn: r.conn,
                            file: r.file,
                            bytes,
                        },
                        bytes,
                    ),
                )
            }
            OState::Sent => {
                self.state = OState::WaitReq;
                Op::Recv(self.in_chan)
            }
        }
    }
}

/// A closed-loop proxy client: per connection, send the requests one
/// at a time, waiting for each response.
struct ProxyClient {
    trace: WebTrace,
    proxy: ChanId,
    reply: ChanId,
    conn_seq: u64,
    id: u64,
    state: ClState,
}

enum ClState {
    OpenConn,
    SendReq { left: Vec<u32>, conn: u64 },
    WaitResp { left: Vec<u32>, conn: u64 },
}

impl ProxyClient {
    fn new_conn_files(&mut self) -> Vec<u32> {
        let mut files = Vec::new();
        loop {
            let r = self.trace.next_request();
            files.push(r.file);
            if r.last_on_connection {
                break;
            }
        }
        files.reverse();
        files
    }
}

impl ThreadBody for ProxyClient {
    fn resume(&mut self, _cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        loop {
            match std::mem::replace(&mut self.state, ClState::OpenConn) {
                ClState::OpenConn => {
                    let files = self.new_conn_files();
                    self.conn_seq += 1;
                    let conn = (self.id << 32) | self.conn_seq;
                    self.state = ClState::SendReq { left: files, conn };
                    return Op::Send(
                        self.proxy,
                        Msg::new(
                            ProxyMsg::NewConn {
                                conn,
                                reply: self.reply,
                            },
                            300,
                        ),
                    );
                }
                ClState::SendReq { mut left, conn } => {
                    // Entered with Wake::Done from the previous send.
                    match left.pop() {
                        Some(file) => {
                            self.state = ClState::WaitResp { left, conn };
                            return Op::Send(
                                self.proxy,
                                Msg::new(ProxyMsg::Request { conn, file }, 350),
                            );
                        }
                        None => {
                            self.state = ClState::OpenConn;
                            continue;
                        }
                    }
                }
                ClState::WaitResp { left, conn } => match wake {
                    Wake::Done => {
                        self.state = ClState::WaitResp { left, conn };
                        return Op::Recv(self.reply);
                    }
                    Wake::Received(_) => {
                        self.state = ClState::SendReq { left, conn };
                        continue;
                    }
                    _ => unreachable!("client waits for responses"),
                },
            }
        }
    }
}

/// Proxy experiment configuration.
#[derive(Clone, Debug)]
pub struct ProxyConfig {
    /// Closed-loop clients.
    pub clients: u32,
    /// Cache capacity in bytes.
    pub cache_bytes: u64,
    /// Profiler installed in the proxy process.
    pub rt: RtKind,
    /// Virtual run duration.
    pub duration: Cycles,
    /// Trace parameters.
    pub trace: WebTraceConfig,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            clients: 24,
            cache_bytes: 24 * 1024 * 1024,
            rt: RtKind::Whodunit,
            duration: 20 * CPU_HZ,
            trace: WebTraceConfig {
                files: 5000,
                ..WebTraceConfig::default()
            },
        }
    }
}

/// Results of one proxy run.
pub struct ProxyReport {
    /// Client-facing throughput in Mb/s.
    pub throughput_mbps: f64,
    /// Requests served.
    pub reqs: u64,
    /// Request hit fraction.
    pub hit_rate: f64,
    /// The proxy process runtime.
    pub runtime: ProcRuntime,
    /// Virtual duration.
    pub duration: Cycles,
}

/// Runs the Squid-like proxy with an origin server behind it.
pub fn run_proxy(cfg: ProxyConfig) -> ProxyReport {
    let mut sim = Sim::new(SimConfig::default());
    let proxy_m = sim.add_machine(1);
    let origin_m = sim.add_machine(2);
    let client_m = sim.add_machine(8);

    let pr = make_runtime(cfg.rt, whodunit_core::ids::ProcId(0), "squid", sim.frames());
    let proxy_proc = sim.add_process("squid", pr.rt.clone());
    let origin_proc = sim.add_unprofiled_process("origin");
    let client_proc = sim.add_unprofiled_process("clients");

    let poll = sim.add_channel(240_000, 20);
    let origin_chan = sim.add_channel(240_000, 20);

    let shared = Rc::new(RefCell::new(ProxyShared {
        conns: HashMap::new(),
        cache: ByteCache::new(cfg.cache_bytes),
        served_bytes: 0,
        served_reqs: 0,
        hits: 0,
        misses: 0,
    }));

    let f_accept = sim.frame("httpAccept");
    let f_read = sim.frame("clientReadRequest");
    let f_connect = sim.frame("commConnectHandle");
    let f_read_reply = sim.frame("httpReadReply");
    let f_write = sim.frame("commHandleWrite");

    sim.spawn(
        proxy_proc,
        proxy_m,
        "comm_poll",
        Box::new(EventLoop {
            shared: shared.clone(),
            poll,
            origin: origin_chan,
            f_accept,
            f_read,
            f_connect,
            f_read_reply,
            f_write,
            state: PState::Init,
        }),
    );

    // The origin serves the shared file population.
    let master = WebTrace::new(cfg.trace.clone());
    let sizes: Rc<Vec<u64>> = Rc::new(
        (0..master.files())
            .map(|f| master.file_size(f as u32))
            .collect(),
    );
    let f_origin = sim.frame("origin_serve");
    for i in 0..4 {
        sim.spawn(
            origin_proc,
            origin_m,
            &format!("origin{i}"),
            Box::new(OriginWorker {
                in_chan: origin_chan,
                sizes: sizes.clone(),
                f_main: f_origin,
                state: OState::Init,
            }),
        );
    }

    for i in 0..cfg.clients {
        let reply = sim.add_channel(240_000, 20);
        let mut tc = cfg.trace.clone();
        tc.stream = i as u64 + 1;
        sim.spawn(
            client_proc,
            client_m,
            &format!("client{i}"),
            Box::new(ProxyClient {
                trace: WebTrace::new(tc),
                proxy: poll,
                reply,
                conn_seq: 0,
                id: i as u64,
                state: ClState::OpenConn,
            }),
        );
    }

    sim.run_until(cfg.duration);

    let sh = shared.borrow();
    let hit_rate = if sh.hits + sh.misses == 0 {
        0.0
    } else {
        sh.hits as f64 / (sh.hits + sh.misses) as f64
    };
    // Silence the unused-constant path for ms_to_cycles (kept for
    // future handler calibration).
    let _ = ms_to_cycles;
    ProxyReport {
        throughput_mbps: mbps(sh.served_bytes, cfg.duration),
        reqs: sh.served_reqs,
        hit_rate,
        runtime: pr,
        duration: cfg.duration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_cache_evicts_fifo_at_capacity() {
        let mut c = ByteCache::new(100);
        c.insert(1, 60);
        c.insert(2, 30);
        assert_eq!(c.lookup(1), Some(60));
        // Third insert overflows: the oldest entry goes.
        c.insert(3, 50);
        assert_eq!(c.lookup(1), None, "file 1 evicted");
        assert_eq!(c.lookup(2), Some(30));
        assert_eq!(c.lookup(3), Some(50));
        assert_eq!(c.hits, 3);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn byte_cache_reinsert_is_idempotent() {
        let mut c = ByteCache::new(100);
        c.insert(1, 40);
        c.insert(1, 40);
        assert_eq!(c.bytes, 40);
    }

    fn quick(rt: RtKind) -> ProxyReport {
        run_proxy(ProxyConfig {
            clients: 12,
            duration: 5 * CPU_HZ,
            rt,
            ..ProxyConfig::default()
        })
    }

    #[test]
    fn proxy_serves_and_caches() {
        let r = quick(RtKind::Whodunit);
        assert!(r.reqs > 200, "reqs {}", r.reqs);
        assert!(r.hit_rate > 0.3, "hit rate {}", r.hit_rate);
        assert!(r.hit_rate < 0.999);
    }

    #[test]
    fn write_handler_appears_in_two_contexts() {
        // Figure 9's headline: commHandleWrite under the hit context
        // [httpAccept, clientReadRequest, commHandleWrite] and the miss
        // context [... commConnectHandle, httpReadReply, commHandleWrite].
        let r = quick(RtKind::Whodunit);
        let w = r.runtime.whodunit.as_ref().unwrap().borrow();
        let ctxs: Vec<String> = w
            .profiled_contexts()
            .iter()
            .map(|&c| w.ctx_string(c))
            .collect();
        let hit = ctxs
            .iter()
            .any(|s| s == "httpAccept -> clientReadRequest -> commHandleWrite");
        let miss = ctxs.iter().any(|s| {
            s == "httpAccept -> clientReadRequest -> commConnectHandle -> httpReadReply -> commHandleWrite"
        });
        assert!(hit, "hit context missing: {ctxs:?}");
        assert!(miss, "miss context missing: {ctxs:?}");
    }

    #[test]
    fn persistent_connections_prune_loops() {
        // Later requests on a connection re-dispatch clientReadRequest
        // after commHandleWrite; pruning keeps every context's handler
        // list duplicate-free.
        let r = quick(RtKind::Whodunit);
        let w = r.runtime.whodunit.as_ref().unwrap().borrow();
        for &c in &w.profiled_contexts() {
            let s = w.ctx_string(c);
            let parts: Vec<&str> = s.split(" -> ").collect();
            let mut dedup = parts.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), parts.len(), "looping context {s}");
        }
    }

    #[test]
    fn profiling_overhead_is_moderate() {
        let base = quick(RtKind::None);
        let prof = quick(RtKind::Whodunit);
        let oh = 1.0 - prof.throughput_mbps / base.throughput_mbps;
        assert!(oh < 0.15, "overhead {:.1}%", oh * 100.0);
        assert!(base.throughput_mbps > 0.0);
    }
}
