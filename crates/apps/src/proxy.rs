//! Squid-like event-driven proxy cache (Figure 9, §8.2, §9.3).
//!
//! A single event-loop thread (`comm_poll`) dispatches five handlers,
//! exactly Squid's main handlers from the paper:
//!
//! - `httpAccept` — a client opened a connection;
//! - `clientReadRequest` — a request arrived on a connection;
//! - `commConnectHandle` — an origin connection is being opened (miss);
//! - `httpReadReply` — content arrived from the origin server;
//! - `commHandleWrite` — the response is written back to the client.
//!
//! Each handler execution is reported to the runtime through the §4.1
//! event hooks: the handler runs under the continuation context stored
//! on its connection and leaves a new continuation behind. A cache hit
//! executes `commHandleWrite` under the context
//! `[httpAccept, clientReadRequest]`; a miss goes through
//! `commConnectHandle`/`httpReadReply` first — which is how Whodunit
//! distinguishes the hit and miss appearances of `commHandleWrite`
//! (Figure 9), something a regular profiler cannot do. Persistent
//! connections re-execute `clientReadRequest` after `commHandleWrite`;
//! the §4.1 loop pruning keeps contexts finite.

use crate::metrics::mbps;
use crate::rtconf::{make_runtime, ProcRuntime, RtKind};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use whodunit_core::cost::{ms_to_cycles, CPU_HZ};
use whodunit_core::events::EventCtx;
use whodunit_core::frame::FrameId;
use whodunit_core::ids::ChanId;
use whodunit_sim::{ChannelFaults, Cycles, FaultPlan, Msg, Op, Sim, SimConfig, ThreadBody, ThreadCx, Wake};
use whodunit_workload::{WebTrace, WebTraceConfig};

/// Handler CPU costs.
const ACCEPT_COST: Cycles = 120_000;
const READ_REQ_COST: Cycles = 150_000;
const CONNECT_COST: Cycles = 90_000;
const READ_REPLY_BASE: Cycles = 60_000;
const READ_REPLY_PER_BYTE: Cycles = 50;
const WRITE_BASE: Cycles = 50_000;
const WRITE_PER_BYTE: Cycles = 55;

/// Messages arriving at the proxy's poll channel.
#[derive(Debug)]
enum ProxyMsg {
    /// A client opened a connection.
    NewConn { conn: u64, reply: ChanId },
    /// A request on an open connection.
    Request { conn: u64, file: u32 },
    /// Origin content for an outstanding miss.
    OriginData { conn: u64, file: u32, bytes: u64 },
}

/// A request to the origin server.
#[derive(Debug)]
struct OriginReq {
    conn: u64,
    file: u32,
    reply: ChanId,
}

struct ConnState {
    reply: ChanId,
    ev: EventCtx,
}

/// One cached object: its size and how long it stays fresh.
#[derive(Clone, Copy)]
struct CacheEntry {
    bytes: u64,
    fresh_until: Cycles,
}

/// What a cache probe found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CacheLookup {
    /// A fresh copy of this many bytes.
    Fresh(u64),
    /// A copy exists but its TTL expired; normally revalidated at the
    /// origin, but servable as-is when the origin is down
    /// (`stale-if-error`).
    Stale(u64),
    /// Nothing cached.
    Miss,
}

/// Cache with a byte-capacity bound, FIFO eviction, and per-entry
/// freshness (entries past their TTL are *stale*: still present, but
/// only served when the origin cannot be reached).
struct ByteCache {
    entries: HashMap<u32, CacheEntry>,
    order: VecDeque<u32>,
    bytes: u64,
    capacity: u64,
    /// Requests that hit fresh content.
    pub hits: u64,
    /// Requests that missed (or found only a stale copy).
    pub misses: u64,
}

impl ByteCache {
    fn new(capacity: u64) -> Self {
        ByteCache {
            entries: HashMap::new(),
            order: VecDeque::new(),
            bytes: 0,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    fn lookup(&mut self, file: u32, now: Cycles) -> CacheLookup {
        match self.entries.get(&file).copied() {
            Some(e) if e.fresh_until > now => {
                self.hits += 1;
                CacheLookup::Fresh(e.bytes)
            }
            Some(e) => {
                self.misses += 1;
                CacheLookup::Stale(e.bytes)
            }
            None => {
                self.misses += 1;
                CacheLookup::Miss
            }
        }
    }

    /// Any cached copy, fresh or stale, without touching the counters.
    fn stale_copy(&self, file: u32) -> Option<u64> {
        self.entries.get(&file).map(|e| e.bytes)
    }

    fn insert(&mut self, file: u32, bytes: u64, fresh_until: Cycles) {
        if let Some(e) = self.entries.get_mut(&file) {
            // Revalidated: refresh the TTL in place.
            e.fresh_until = fresh_until;
            return;
        }
        self.entries.insert(file, CacheEntry { bytes, fresh_until });
        self.order.push_back(file);
        self.bytes += bytes;
        while self.bytes > self.capacity {
            let Some(victim) = self.order.pop_front() else {
                break;
            };
            if let Some(e) = self.entries.remove(&victim) {
                self.bytes -= e.bytes;
            }
        }
    }
}

/// Shared proxy state.
pub struct ProxyShared {
    conns: HashMap<u64, ConnState>,
    cache: ByteCache,
    /// Bytes served to clients.
    pub served_bytes: u64,
    /// Requests served.
    pub served_reqs: u64,
    /// Cache hits.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
    /// Requests answered from a stale cache entry because the origin
    /// stopped responding (`stale-if-error`).
    pub stale_served: u64,
    /// Origin fetches re-sent after a timeout.
    pub origin_retries: u64,
    /// Requests failed with an error page (origin down, nothing
    /// cached).
    pub failed: u64,
    /// Origin replies that arrived after their fetch had been retried
    /// or abandoned, and were discarded.
    pub late_replies: u64,
}

/// How a response written back to the client is accounted.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ServeKind {
    /// Normal content (fresh hit or origin fetch).
    Content,
    /// A stale cache entry served because the origin is down.
    Stale,
    /// An error page: origin down and nothing cached.
    Error,
}

/// An origin fetch the event loop is waiting on.
struct PendingFetch {
    file: u32,
    /// Resends already issued.
    attempts: u32,
    /// Virtual time after which this fetch is considered timed out.
    deadline: Cycles,
}

enum PState {
    Init,
    WaitMsg,
    AcceptDone { conn: u64 },
    ReadDone { conn: u64, file: u32 },
    ConnectDone { conn: u64, file: u32 },
    RetryDone { conn: u64, file: u32 },
    ReadReplyDone { conn: u64, file: u32, bytes: u64 },
    WriteDone { conn: u64, bytes: u64, kind: ServeKind },
    Sent,
}

/// The `comm_poll` event-loop thread.
struct EventLoop {
    shared: Rc<RefCell<ProxyShared>>,
    poll: ChanId,
    origin: ChanId,
    f_accept: FrameId,
    f_read: FrameId,
    f_connect: FrameId,
    f_read_reply: FrameId,
    f_write: FrameId,
    /// Handler frame for an origin-fetch resend.
    f_retry: FrameId,
    /// Handler frame for serving a stale entry (the degraded path gets
    /// its own call path, so the profile shows it — Figure 9 style).
    f_stale: FrameId,
    /// Handler frame for writing an error page.
    f_error: FrameId,
    /// Outstanding origin fetches by connection.
    pending: HashMap<u64, PendingFetch>,
    /// Per-attempt origin timeout (doubles on every resend).
    timeout: Cycles,
    /// Resends before degrading.
    max_retries: u32,
    /// Freshness TTL newly fetched entries get.
    fresh_ttl: Cycles,
    state: PState,
}

impl EventLoop {
    /// Figure 4 lines 5–7: dispatch `handler` for the continuation
    /// `ev`, entering the handler's frame.
    fn dispatch(&self, cx: &mut ThreadCx<'_>, ev: EventCtx, handler: FrameId) {
        cx.runtime()
            .borrow_mut()
            .on_event_dispatch(cx.me(), ev, handler);
        cx.push_frame(handler);
    }

    /// The handler returned: capture its continuation for `conn`.
    fn finish(&self, cx: &mut ThreadCx<'_>, conn: u64) -> EventCtx {
        let ev = cx.runtime().borrow_mut().on_event_create(cx.me());
        cx.runtime().borrow_mut().on_handler_done(cx.me());
        cx.pop_frame();
        if let Some(c) = self.shared.borrow_mut().conns.get_mut(&conn) {
            c.ev = ev;
        }
        ev
    }

    /// Waits on the poll channel — with a deadline when origin fetches
    /// are outstanding, plain otherwise (so idle runs still drain).
    fn wait_op(&self, now: Cycles) -> Op {
        match self.pending.values().map(|p| p.deadline).min() {
            Some(d) => Op::RecvTimeout(self.poll, d.saturating_sub(now).max(1)),
            None => Op::Recv(self.poll),
        }
    }

    /// The poll wait expired: find the most overdue fetch and either
    /// resend it (exponential backoff) or degrade — serve a stale copy
    /// if one exists, an error page otherwise.
    fn on_fetch_timeout(&mut self, cx: &mut ThreadCx<'_>) -> Op {
        let now = cx.now();
        let expired = self
            .pending
            .iter()
            .filter(|&(_, p)| p.deadline <= now)
            .min_by_key(|&(&c, p)| (p.deadline, c))
            .map(|(&c, _)| c);
        let Some(conn) = expired else {
            // Raced with a delivery that already cleared the fetch.
            self.state = PState::WaitMsg;
            return self.wait_op(now);
        };
        let ev = self.shared.borrow().conns[&conn].ev;
        let (file, attempts) = {
            let p = &self.pending[&conn];
            (p.file, p.attempts)
        };
        if attempts < self.max_retries {
            if let Some(p) = self.pending.get_mut(&conn) {
                p.attempts += 1;
                // Backoff: timeout, 2·timeout, 4·timeout, …
                p.deadline =
                    now.saturating_add(self.timeout.saturating_mul(1 << p.attempts.min(16)));
            }
            self.shared.borrow_mut().origin_retries += 1;
            self.dispatch(cx, ev, self.f_retry);
            self.state = PState::RetryDone { conn, file };
            Op::Compute(CONNECT_COST)
        } else {
            self.pending.remove(&conn);
            let stale = self.shared.borrow().cache.stale_copy(file);
            match stale {
                Some(bytes) => {
                    self.dispatch(cx, ev, self.f_stale);
                    self.state = PState::WriteDone {
                        conn,
                        bytes,
                        kind: ServeKind::Stale,
                    };
                    Op::Compute(WRITE_BASE + bytes * WRITE_PER_BYTE)
                }
                None => {
                    self.dispatch(cx, ev, self.f_error);
                    self.state = PState::WriteDone {
                        conn,
                        bytes: 0,
                        kind: ServeKind::Error,
                    };
                    Op::Compute(WRITE_BASE)
                }
            }
        }
    }
}

impl ThreadBody for EventLoop {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match std::mem::replace(&mut self.state, PState::WaitMsg) {
            PState::Init => {
                cx.push_frame(cx.frame("comm_poll"));
                self.state = PState::WaitMsg;
                Op::Recv(self.poll)
            }
            PState::WaitMsg => {
                let msg = match wake {
                    Wake::Received(msg) => msg,
                    Wake::RecvTimedOut => return self.on_fetch_timeout(cx),
                    _ => unreachable!("event loop waits on the poll channel"),
                };
                match msg.take::<ProxyMsg>() {
                    ProxyMsg::NewConn { conn, reply } => {
                        self.shared.borrow_mut().conns.insert(
                            conn,
                            ConnState {
                                reply,
                                ev: EventCtx::default(),
                            },
                        );
                        self.dispatch(cx, EventCtx::default(), self.f_accept);
                        self.state = PState::AcceptDone { conn };
                        Op::Compute(ACCEPT_COST)
                    }
                    ProxyMsg::Request { conn, file } => {
                        let ev = self.shared.borrow().conns[&conn].ev;
                        self.dispatch(cx, ev, self.f_read);
                        self.state = PState::ReadDone { conn, file };
                        Op::Compute(READ_REQ_COST)
                    }
                    ProxyMsg::OriginData { conn, file, bytes } => {
                        let live = self
                            .pending
                            .get(&conn)
                            .is_some_and(|p| p.file == file);
                        if !live {
                            // A reply for a fetch we retried or gave
                            // up on — the connection has moved on.
                            self.shared.borrow_mut().late_replies += 1;
                            self.state = PState::WaitMsg;
                            return self.wait_op(cx.now());
                        }
                        self.pending.remove(&conn);
                        let ev = self.shared.borrow().conns[&conn].ev;
                        self.dispatch(cx, ev, self.f_read_reply);
                        self.state = PState::ReadReplyDone { conn, file, bytes };
                        Op::Compute(READ_REPLY_BASE + bytes * READ_REPLY_PER_BYTE)
                    }
                }
            }
            PState::AcceptDone { conn } => {
                self.finish(cx, conn);
                self.state = PState::WaitMsg;
                self.wait_op(cx.now())
            }
            PState::ReadDone { conn, file } => {
                let ev = self.finish(cx, conn);
                let hit = self.shared.borrow_mut().cache.lookup(file, cx.now());
                match hit {
                    CacheLookup::Fresh(bytes) => {
                        self.shared.borrow_mut().hits += 1;
                        self.dispatch(cx, ev, self.f_write);
                        self.state = PState::WriteDone {
                            conn,
                            bytes,
                            kind: ServeKind::Content,
                        };
                        Op::Compute(WRITE_BASE + bytes * WRITE_PER_BYTE)
                    }
                    CacheLookup::Stale(_) | CacheLookup::Miss => {
                        self.shared.borrow_mut().misses += 1;
                        self.dispatch(cx, ev, self.f_connect);
                        self.state = PState::ConnectDone { conn, file };
                        Op::Compute(CONNECT_COST)
                    }
                }
            }
            PState::ConnectDone { conn, file } => {
                self.finish(cx, conn);
                self.pending.insert(
                    conn,
                    PendingFetch {
                        file,
                        attempts: 0,
                        deadline: cx.now().saturating_add(self.timeout),
                    },
                );
                self.state = PState::Sent;
                Op::Send(
                    self.origin,
                    Msg::new(
                        OriginReq {
                            conn,
                            file,
                            reply: self.poll,
                        },
                        400,
                    ),
                )
            }
            PState::RetryDone { conn, file } => {
                self.finish(cx, conn);
                self.state = PState::Sent;
                Op::Send(
                    self.origin,
                    Msg::new(
                        OriginReq {
                            conn,
                            file,
                            reply: self.poll,
                        },
                        400,
                    ),
                )
            }
            PState::ReadReplyDone { conn, file, bytes } => {
                let ev = self.finish(cx, conn);
                let fresh_until = cx.now().saturating_add(self.fresh_ttl);
                self.shared
                    .borrow_mut()
                    .cache
                    .insert(file, bytes, fresh_until);
                self.dispatch(cx, ev, self.f_write);
                self.state = PState::WriteDone {
                    conn,
                    bytes,
                    kind: ServeKind::Content,
                };
                Op::Compute(WRITE_BASE + bytes * WRITE_PER_BYTE)
            }
            PState::WriteDone { conn, bytes, kind } => {
                self.finish(cx, conn);
                let reply = self.shared.borrow().conns[&conn].reply;
                {
                    let mut sh = self.shared.borrow_mut();
                    match kind {
                        ServeKind::Content => {
                            sh.served_bytes += bytes;
                            sh.served_reqs += 1;
                        }
                        ServeKind::Stale => {
                            sh.served_bytes += bytes;
                            sh.served_reqs += 1;
                            sh.stale_served += 1;
                        }
                        ServeKind::Error => sh.failed += 1,
                    }
                }
                self.state = PState::Sent;
                Op::Send(reply, Msg::new(bytes, bytes.max(40)))
            }
            PState::Sent => {
                self.state = PState::WaitMsg;
                self.wait_op(cx.now())
            }
        }
    }
}

/// Origin-server worker: returns file content with a small compute.
struct OriginWorker {
    in_chan: ChanId,
    sizes: Rc<Vec<u64>>,
    f_main: FrameId,
    state: OState,
}

enum OState {
    Init,
    WaitReq,
    Serve { req: Option<OriginReq> },
    Sent,
}

impl ThreadBody for OriginWorker {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match std::mem::replace(&mut self.state, OState::WaitReq) {
            OState::Init => {
                cx.push_frame(self.f_main);
                self.state = OState::WaitReq;
                Op::Recv(self.in_chan)
            }
            OState::WaitReq => {
                let Wake::Received(msg) = wake else {
                    unreachable!("origin waits for requests");
                };
                let req = msg.take::<OriginReq>();
                let bytes = self.sizes[req.file as usize];
                self.state = OState::Serve { req: Some(req) };
                Op::Compute(80_000 + bytes * 12)
            }
            OState::Serve { req } => {
                let r = req.expect("request present");
                let bytes = self.sizes[r.file as usize];
                self.state = OState::Sent;
                Op::Send(
                    r.reply,
                    Msg::new(
                        ProxyMsg::OriginData {
                            conn: r.conn,
                            file: r.file,
                            bytes,
                        },
                        bytes,
                    ),
                )
            }
            OState::Sent => {
                self.state = OState::WaitReq;
                Op::Recv(self.in_chan)
            }
        }
    }
}

/// A closed-loop proxy client: per connection, send the requests one
/// at a time, waiting for each response.
struct ProxyClient {
    trace: WebTrace,
    proxy: ChanId,
    reply: ChanId,
    conn_seq: u64,
    id: u64,
    state: ClState,
}

enum ClState {
    OpenConn,
    SendReq { left: Vec<u32>, conn: u64 },
    WaitResp { left: Vec<u32>, conn: u64 },
}

impl ProxyClient {
    fn new_conn_files(&mut self) -> Vec<u32> {
        let mut files = Vec::new();
        loop {
            let r = self.trace.next_request();
            files.push(r.file);
            if r.last_on_connection {
                break;
            }
        }
        files.reverse();
        files
    }
}

impl ThreadBody for ProxyClient {
    fn resume(&mut self, _cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        loop {
            match std::mem::replace(&mut self.state, ClState::OpenConn) {
                ClState::OpenConn => {
                    let files = self.new_conn_files();
                    self.conn_seq += 1;
                    let conn = (self.id << 32) | self.conn_seq;
                    self.state = ClState::SendReq { left: files, conn };
                    return Op::Send(
                        self.proxy,
                        Msg::new(
                            ProxyMsg::NewConn {
                                conn,
                                reply: self.reply,
                            },
                            300,
                        ),
                    );
                }
                ClState::SendReq { mut left, conn } => {
                    // Entered with Wake::Done from the previous send.
                    match left.pop() {
                        Some(file) => {
                            self.state = ClState::WaitResp { left, conn };
                            return Op::Send(
                                self.proxy,
                                Msg::new(ProxyMsg::Request { conn, file }, 350),
                            );
                        }
                        None => {
                            self.state = ClState::OpenConn;
                            continue;
                        }
                    }
                }
                ClState::WaitResp { left, conn } => match wake {
                    Wake::Done => {
                        self.state = ClState::WaitResp { left, conn };
                        return Op::Recv(self.reply);
                    }
                    Wake::Received(_) => {
                        self.state = ClState::SendReq { left, conn };
                        continue;
                    }
                    _ => unreachable!("client waits for responses"),
                },
            }
        }
    }
}

/// Proxy experiment configuration.
#[derive(Clone, Debug)]
pub struct ProxyConfig {
    /// Closed-loop clients.
    pub clients: u32,
    /// Cache capacity in bytes.
    pub cache_bytes: u64,
    /// Profiler installed in the proxy process.
    pub rt: RtKind,
    /// Virtual run duration.
    pub duration: Cycles,
    /// Trace parameters.
    pub trace: WebTraceConfig,
    /// Per-attempt origin-fetch timeout (doubles per resend).
    pub origin_timeout: Cycles,
    /// Origin-fetch resends before degrading to stale/error.
    pub origin_retries: u32,
    /// Freshness TTL of fetched entries; `Cycles::MAX` (the default)
    /// means entries never go stale.
    pub fresh_ttl: Cycles,
    /// Crash the origin process at this virtual time.
    pub origin_crash_at: Option<Cycles>,
    /// Probability an origin-bound request is dropped on the wire.
    pub origin_drop_p: f64,
    /// Seed of the fault plan's random stream.
    pub fault_seed: u64,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            clients: 24,
            cache_bytes: 24 * 1024 * 1024,
            rt: RtKind::Whodunit,
            duration: 20 * CPU_HZ,
            trace: WebTraceConfig {
                files: 5000,
                ..WebTraceConfig::default()
            },
            origin_timeout: ms_to_cycles(50.0),
            origin_retries: 3,
            fresh_ttl: Cycles::MAX,
            origin_crash_at: None,
            origin_drop_p: 0.0,
            fault_seed: 0x5eed,
        }
    }
}

/// Results of one proxy run.
pub struct ProxyReport {
    /// Client-facing throughput in Mb/s.
    pub throughput_mbps: f64,
    /// Requests served.
    pub reqs: u64,
    /// Request hit fraction.
    pub hit_rate: f64,
    /// Requests served from stale entries with the origin down.
    pub stale_served: u64,
    /// Origin fetches re-sent after a timeout.
    pub origin_retries: u64,
    /// Requests failed with an error page.
    pub failed: u64,
    /// Late origin replies discarded.
    pub late_replies: u64,
    /// The proxy process runtime.
    pub runtime: ProcRuntime,
    /// Virtual duration.
    pub duration: Cycles,
}

/// Runs the Squid-like proxy with an origin server behind it.
pub fn run_proxy(cfg: ProxyConfig) -> ProxyReport {
    let mut sim = Sim::new(SimConfig::default());
    let proxy_m = sim.add_machine(1);
    let origin_m = sim.add_machine(2);
    let client_m = sim.add_machine(8);

    let pr = make_runtime(cfg.rt, whodunit_core::ids::ProcId(0), "squid", sim.frames().clone());
    let proxy_proc = sim.add_process("squid", pr.rt.clone());
    let origin_proc = sim.add_unprofiled_process("origin");
    let client_proc = sim.add_unprofiled_process("clients");

    let poll = sim.add_channel(240_000, 20);
    let origin_chan = sim.add_channel(240_000, 20);

    let shared = Rc::new(RefCell::new(ProxyShared {
        conns: HashMap::new(),
        cache: ByteCache::new(cfg.cache_bytes),
        served_bytes: 0,
        served_reqs: 0,
        hits: 0,
        misses: 0,
        stale_served: 0,
        origin_retries: 0,
        failed: 0,
        late_replies: 0,
    }));

    let f_accept = sim.frame("httpAccept");
    let f_read = sim.frame("clientReadRequest");
    let f_connect = sim.frame("commConnectHandle");
    let f_read_reply = sim.frame("httpReadReply");
    let f_write = sim.frame("commHandleWrite");
    let f_retry = sim.frame("commRetryOrigin");
    let f_stale = sim.frame("httpServeStale");
    let f_error = sim.frame("httpRequestError");

    if cfg.origin_crash_at.is_some() || cfg.origin_drop_p > 0.0 {
        let mut plan = FaultPlan::new(cfg.fault_seed);
        if cfg.origin_drop_p > 0.0 {
            plan = plan.channel_faults(
                origin_chan,
                ChannelFaults {
                    drop_p: cfg.origin_drop_p,
                    ..ChannelFaults::default()
                },
            );
        }
        if let Some(at) = cfg.origin_crash_at {
            plan = plan.crash(origin_proc, at);
        }
        sim.set_fault_plan(plan);
    }

    sim.spawn(
        proxy_proc,
        proxy_m,
        "comm_poll",
        Box::new(EventLoop {
            shared: shared.clone(),
            poll,
            origin: origin_chan,
            f_accept,
            f_read,
            f_connect,
            f_read_reply,
            f_write,
            f_retry,
            f_stale,
            f_error,
            pending: HashMap::new(),
            timeout: cfg.origin_timeout,
            max_retries: cfg.origin_retries,
            fresh_ttl: cfg.fresh_ttl,
            state: PState::Init,
        }),
    );

    // The origin serves the shared file population.
    let master = WebTrace::new(cfg.trace.clone());
    let sizes: Rc<Vec<u64>> = Rc::new(
        (0..master.files())
            .map(|f| master.file_size(f as u32))
            .collect(),
    );
    let f_origin = sim.frame("origin_serve");
    for i in 0..4 {
        sim.spawn(
            origin_proc,
            origin_m,
            &format!("origin{i}"),
            Box::new(OriginWorker {
                in_chan: origin_chan,
                sizes: sizes.clone(),
                f_main: f_origin,
                state: OState::Init,
            }),
        );
    }

    for i in 0..cfg.clients {
        let reply = sim.add_channel(240_000, 20);
        let mut tc = cfg.trace.clone();
        tc.stream = i as u64 + 1;
        sim.spawn(
            client_proc,
            client_m,
            &format!("client{i}"),
            Box::new(ProxyClient {
                trace: WebTrace::new(tc),
                proxy: poll,
                reply,
                conn_seq: 0,
                id: i as u64,
                state: ClState::OpenConn,
            }),
        );
    }

    sim.run_until(cfg.duration);

    let sh = shared.borrow();
    let hit_rate = if sh.hits + sh.misses == 0 {
        0.0
    } else {
        sh.hits as f64 / (sh.hits + sh.misses) as f64
    };
    // Silence the unused-constant path for ms_to_cycles (kept for
    // future handler calibration).
    let _ = ms_to_cycles;
    ProxyReport {
        throughput_mbps: mbps(sh.served_bytes, cfg.duration),
        reqs: sh.served_reqs,
        hit_rate,
        stale_served: sh.stale_served,
        origin_retries: sh.origin_retries,
        failed: sh.failed,
        late_replies: sh.late_replies,
        runtime: pr,
        duration: cfg.duration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FOREVER: Cycles = Cycles::MAX;

    #[test]
    fn byte_cache_evicts_fifo_at_capacity() {
        let mut c = ByteCache::new(100);
        c.insert(1, 60, FOREVER);
        c.insert(2, 30, FOREVER);
        assert_eq!(c.lookup(1, 0), CacheLookup::Fresh(60));
        // Third insert overflows: the oldest entry goes.
        c.insert(3, 50, FOREVER);
        assert_eq!(c.lookup(1, 0), CacheLookup::Miss, "file 1 evicted");
        assert_eq!(c.lookup(2, 0), CacheLookup::Fresh(30));
        assert_eq!(c.lookup(3, 0), CacheLookup::Fresh(50));
        assert_eq!(c.hits, 3);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn byte_cache_reinsert_is_idempotent() {
        let mut c = ByteCache::new(100);
        c.insert(1, 40, FOREVER);
        c.insert(1, 40, FOREVER);
        assert_eq!(c.bytes, 40);
    }

    #[test]
    fn byte_cache_entries_go_stale_and_refresh() {
        let mut c = ByteCache::new(100);
        c.insert(1, 40, 1000);
        assert_eq!(c.lookup(1, 999), CacheLookup::Fresh(40));
        assert_eq!(c.lookup(1, 1000), CacheLookup::Stale(40), "TTL expired");
        assert_eq!(c.stale_copy(1), Some(40), "the copy is still there");
        // Revalidation refreshes the TTL in place.
        c.insert(1, 40, 2000);
        assert_eq!(c.lookup(1, 1500), CacheLookup::Fresh(40));
        assert_eq!(c.bytes, 40);
    }

    fn quick(rt: RtKind) -> ProxyReport {
        run_proxy(ProxyConfig {
            clients: 12,
            duration: 5 * CPU_HZ,
            rt,
            ..ProxyConfig::default()
        })
    }

    #[test]
    fn proxy_serves_and_caches() {
        let r = quick(RtKind::Whodunit);
        assert!(r.reqs > 200, "reqs {}", r.reqs);
        assert!(r.hit_rate > 0.3, "hit rate {}", r.hit_rate);
        assert!(r.hit_rate < 0.999);
    }

    #[test]
    fn write_handler_appears_in_two_contexts() {
        // Figure 9's headline: commHandleWrite under the hit context
        // [httpAccept, clientReadRequest, commHandleWrite] and the miss
        // context [... commConnectHandle, httpReadReply, commHandleWrite].
        let r = quick(RtKind::Whodunit);
        let w = r.runtime.whodunit.as_ref().unwrap().borrow();
        let ctxs: Vec<String> = w
            .profiled_contexts()
            .iter()
            .map(|&c| w.ctx_string(c))
            .collect();
        let hit = ctxs
            .iter()
            .any(|s| s == "httpAccept -> clientReadRequest -> commHandleWrite");
        let miss = ctxs.iter().any(|s| {
            s == "httpAccept -> clientReadRequest -> commConnectHandle -> httpReadReply -> commHandleWrite"
        });
        assert!(hit, "hit context missing: {ctxs:?}");
        assert!(miss, "miss context missing: {ctxs:?}");
    }

    #[test]
    fn persistent_connections_prune_loops() {
        // Later requests on a connection re-dispatch clientReadRequest
        // after commHandleWrite; pruning keeps every context's handler
        // list duplicate-free.
        let r = quick(RtKind::Whodunit);
        let w = r.runtime.whodunit.as_ref().unwrap().borrow();
        for &c in &w.profiled_contexts() {
            let s = w.ctx_string(c);
            let parts: Vec<&str> = s.split(" -> ").collect();
            let mut dedup = parts.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), parts.len(), "looping context {s}");
        }
    }

    #[test]
    fn crashed_origin_serves_stale_under_its_own_context() {
        // The origin dies mid-run. Entries go stale on a short TTL, so
        // revalidations start failing: after the retries burn out the
        // proxy serves the stale copy (stale-if-error) under the
        // httpServeStale handler — the degraded path is visible in the
        // profile — and uncached files fail with an error page.
        let r = run_proxy(ProxyConfig {
            clients: 12,
            duration: 10 * CPU_HZ,
            fresh_ttl: 2 * CPU_HZ,
            origin_timeout: ms_to_cycles(20.0),
            origin_crash_at: Some(5 * CPU_HZ),
            ..ProxyConfig::default()
        });
        assert!(r.origin_retries > 0, "dead origin forces retries");
        assert!(r.stale_served > 0, "stale entries keep being served");
        assert!(r.failed > 0, "cold files fail instead of hanging");
        assert!(r.reqs > 100, "the proxy keeps serving: {}", r.reqs);
        let w = r.runtime.whodunit.as_ref().unwrap().borrow();
        let ctxs: Vec<String> = w
            .profiled_contexts()
            .iter()
            .map(|&c| w.ctx_string(c))
            .collect();
        assert!(
            ctxs.iter().any(|s| s.contains("httpServeStale")),
            "degraded path has its own context: {ctxs:?}"
        );
        assert!(
            ctxs.iter().any(|s| s.contains("commRetryOrigin")),
            "retries appear in the profile: {ctxs:?}"
        );
    }

    #[test]
    fn dropped_origin_requests_recover_via_retry() {
        // A third of origin-bound fetches vanish; backoff resends keep
        // the miss path alive and nothing ends up stuck.
        let r = run_proxy(ProxyConfig {
            clients: 12,
            duration: 8 * CPU_HZ,
            origin_timeout: ms_to_cycles(20.0),
            origin_drop_p: 0.33,
            ..ProxyConfig::default()
        });
        assert!(r.origin_retries > 0, "drops surfaced as retries");
        assert!(r.reqs > 100, "served through the loss: {}", r.reqs);
        assert!(
            r.failed < r.reqs / 10,
            "few requests exhaust 3 retries: {} of {}",
            r.failed,
            r.reqs
        );
    }

    #[test]
    fn profiling_overhead_is_moderate() {
        let base = quick(RtKind::None);
        let prof = quick(RtKind::Whodunit);
        let oh = 1.0 - prof.throughput_mbps / base.throughput_mbps;
        assert!(oh < 0.15, "overhead {:.1}%", oh * 100.0);
        assert!(base.throughput_mbps > 0.0);
    }
}
