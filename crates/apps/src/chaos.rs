//! Chaos harness: materializing sampled scenarios onto the TPC-W stack.
//!
//! This module is the bridge between the pure-data chaos layer
//! ([`whodunit_core::repro`], [`whodunit_sim::explore`]) and the
//! concrete 3-tier assembly ([`crate::tpcw`]):
//!
//! - [`tpcw_space`] declares what a scenario may touch — the two
//!   faultable channels (`"db"`, `"front"`), the crashable `"mysql"`
//!   process, the slowable `"mysql"` machine;
//! - [`default_workload`] names the workload knobs a repro carries;
//! - [`config_of`] resolves a repro into a [`TpcwConfig`];
//! - [`run_scenario`] executes it, assembles the oracle
//!   [`Evidence`], and returns the violations plus a fingerprint of
//!   the run's complete observable state — two runs of the same repro
//!   must produce equal fingerprints, which is what makes a repro file
//!   a *repro* rather than a suggestion.

use crate::tpcw::{run_tpcw, TpcwConfig, TpcwFaults};
use whodunit_core::cost::CPU_HZ;
use whodunit_core::dumpjson;
use whodunit_core::hash::Fnv64;
use whodunit_core::oracle::{check_all, Evidence, ProgressState, Violation};
use whodunit_core::repro::{ChaosRepro, FaultEntry};
use whodunit_sim::{ChannelFaults, RunOutcome};
use whodunit_sim::explore::ChaosSpace;

/// Virtual horizon of a chaos run with the default workload.
pub const CHAOS_HORIZON: u64 = 60 * CPU_HZ;

/// The sampling space of the TPC-W assembly.
pub fn tpcw_space() -> ChaosSpace {
    ChaosSpace {
        channels: vec!["db".into(), "front".into()],
        crashable: vec!["mysql".into()],
        slowable: vec!["mysql".into()],
        horizon: CHAOS_HORIZON,
        // Up to 15% per fault class: stormy, but the site still serves.
        max_fault_ppm: 150_000,
        // Up to 20 ms of extra delivery delay.
        max_delay: CPU_HZ / 50,
    }
}

/// The workload knobs a TPC-W chaos repro carries. Times are cycles so
/// the file stays integer-exact; `livelock_pair` is 0/1.
pub fn default_workload() -> Vec<(String, u64)> {
    vec![
        // Enough concurrency for table-lock contention at MySQL —
        // contended unlocks are what puts ≥ 2 threads in the ready
        // queue at one instant, which is where the schedule policy
        // actually picks.
        ("clients".into(), 48),
        ("duration".into(), CHAOS_HORIZON),
        ("warmup".into(), 15 * CPU_HZ),
        ("db_timeout".into(), CPU_HZ / 2),
        ("images_per_page".into(), 2),
        ("search_terms".into(), 500),
        ("step_budget".into(), 2_000_000),
        ("livelock_pair".into(), 0),
    ]
}

/// The knobs [`whodunit_sim::explore::shrink`] may reduce.
pub const SHRINKABLE_KNOBS: &[&str] = &["clients"];

fn ppm_to_p(ppm: u64) -> f64 {
    ppm as f64 / 1_000_000.0
}

/// The faultable channel roles of the assembly.
fn chan_mut<'a>(faults: &'a mut TpcwFaults, name: &str) -> Option<&'a mut ChannelFaults> {
    match name {
        "db" => Some(&mut faults.db_chan),
        "front" => Some(&mut faults.front_chan),
        _ => None,
    }
}

/// Resolves a repro into a concrete [`TpcwConfig`]. Unknown channel,
/// process, and machine roles are ignored (a repro sampled from a
/// larger space still runs); later fault entries for the same role and
/// class overwrite earlier ones.
pub fn config_of(repro: &ChaosRepro) -> TpcwConfig {
    let mut faults = TpcwFaults {
        seed: repro.seed,
        ..TpcwFaults::default()
    };
    for f in &repro.faults {
        match f {
            FaultEntry::Drop { chan, ppm } => {
                if let Some(c) = chan_mut(&mut faults, chan) {
                    c.drop_p = ppm_to_p(*ppm);
                }
            }
            FaultEntry::Dup { chan, ppm } => {
                if let Some(c) = chan_mut(&mut faults, chan) {
                    c.dup_p = ppm_to_p(*ppm);
                }
            }
            FaultEntry::Delay { chan, ppm, cycles } => {
                if let Some(c) = chan_mut(&mut faults, chan) {
                    c.delay_p = ppm_to_p(*ppm);
                    c.delay_cycles = *cycles;
                }
            }
            FaultEntry::Crash { proc, at } => {
                if proc == "mysql" {
                    faults.db_crash_at = Some(*at);
                }
            }
            FaultEntry::Slowdown {
                machine,
                from,
                until,
                factor,
            } => {
                if machine == "mysql" {
                    faults.db_slowdown = Some((*from, *until, *factor));
                }
            }
        }
    }

    let knob = |name: &str, default: u64| repro.knob(name).unwrap_or(default);
    TpcwConfig {
        clients: knob("clients", 16) as u32,
        duration: knob("duration", CHAOS_HORIZON),
        warmup: knob("warmup", 15 * CPU_HZ),
        db_timeout: knob("db_timeout", CPU_HZ / 2),
        images_per_page: knob("images_per_page", 2) as u32,
        search_terms: knob("search_terms", 500),
        seed: repro.seed,
        sched: repro.policy.parse().unwrap_or_default(),
        step_budget: match knob("step_budget", 2_000_000) {
            0 => None,
            b => Some(b),
        },
        livelock_pair: knob("livelock_pair", 0) != 0,
        faults: Some(faults),
        ..TpcwConfig::default()
    }
}

/// Everything observable about one executed scenario.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// Oracle violations, in oracle order (empty = clean run).
    pub violations: Vec<Violation>,
    /// FNV-1a fingerprint over the dumps, counters, ground truth, and
    /// outcome — equal fingerprints mean bit-identical runs.
    pub fingerprint: u64,
    /// Human-readable run outcome.
    pub outcome: String,
    /// Messages dropped / duplicated / delayed on the wire.
    pub faults_seen: (u64, u64, u64),
}

impl ScenarioResult {
    /// Whether a violation of the given kind (see
    /// [`Violation::kind`]) occurred.
    pub fn has_violation(&self, kind: &str) -> bool {
        self.violations.iter().any(|v| v.kind() == kind)
    }
}

/// Executes a repro on the TPC-W stack and checks every oracle.
pub fn run_scenario(repro: &ChaosRepro) -> ScenarioResult {
    let r = run_tpcw(config_of(repro));

    let progress = match &r.outcome {
        RunOutcome::ReachedLimit | RunOutcome::Idle => ProgressState::Completed,
        RunOutcome::Deadlock(d) => ProgressState::Deadlock(d.to_string()),
        RunOutcome::Livelock(l) => ProgressState::Livelock(l.to_string()),
    };
    let has = |pred: &dyn Fn(&FaultEntry) -> bool| repro.faults.iter().any(pred);
    let ev = Evidence {
        compute_truth: r.compute_truth.clone(),
        drops_permitted: has(&|f| matches!(f, FaultEntry::Drop { ppm, .. } if *ppm > 0)),
        dups_permitted: has(&|f| matches!(f, FaultEntry::Dup { ppm, .. } if *ppm > 0)),
        delays_permitted: has(&|f| matches!(f, FaultEntry::Delay { ppm, .. } if *ppm > 0)),
        crash_permitted: has(&|f| matches!(f, FaultEntry::Crash { .. })),
        dropped: r.dropped_msgs,
        duplicated: r.duplicated_msgs,
        delayed: r.delayed_msgs,
        progress,
        dumps: r.dumps,
        federation: None,
    };
    let violations = check_all(&ev);

    let mut h = Fnv64::new();
    h.write(dumpjson::to_json(&ev.dumps).as_bytes());
    for n in [ev.dropped, ev.duplicated, ev.delayed] {
        h.write_u64(n);
    }
    for &t in &ev.compute_truth {
        h.write(&t.to_le_bytes());
    }
    let outcome = r.outcome.to_string();
    h.write(outcome.as_bytes());
    let h = h.finish();

    ScenarioResult {
        violations,
        fingerprint: h,
        outcome,
        faults_seen: (ev.dropped, ev.duplicated, ev.delayed),
    }
}

/// Shrinking predicate: does the candidate still trigger a violation of
/// `kind`? This re-executes the full scenario per candidate.
pub fn still_fails_with(candidate: &ChaosRepro, kind: &str) -> bool {
    run_scenario(candidate).has_violation(kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use whodunit_sim::SchedulePolicy;

    fn tiny_repro() -> ChaosRepro {
        let mut r = ChaosRepro {
            seed: 3,
            policy: "fifo".into(),
            workload: default_workload(),
            faults: Vec::new(),
            violation: None,
            window: None,
        };
        r.set_knob("clients", 6);
        r.set_knob("duration", 20 * CPU_HZ);
        r.set_knob("warmup", 5 * CPU_HZ);
        r.set_knob("images_per_page", 1);
        r
    }

    #[test]
    fn config_resolution_maps_roles_and_knobs() {
        let mut r = tiny_repro();
        r.policy = "random:99".into();
        r.faults = vec![
            FaultEntry::Drop {
                chan: "db".into(),
                ppm: 50_000,
            },
            FaultEntry::Delay {
                chan: "front".into(),
                ppm: 100_000,
                cycles: 777,
            },
            FaultEntry::Crash {
                proc: "mysql".into(),
                at: 12 * CPU_HZ,
            },
            FaultEntry::Slowdown {
                machine: "mysql".into(),
                from: 1,
                until: 2,
                factor: 3,
            },
            FaultEntry::Drop {
                chan: "unknown-role".into(),
                ppm: 999_999,
            },
        ];
        let cfg = config_of(&r);
        assert_eq!(cfg.clients, 6);
        assert_eq!(cfg.sched, SchedulePolicy::Random { seed: 99 });
        assert_eq!(cfg.step_budget, Some(2_000_000));
        let f = cfg.faults.unwrap();
        assert!((f.db_chan.drop_p - 0.05).abs() < 1e-12);
        assert!((f.front_chan.delay_p - 0.1).abs() < 1e-12);
        assert_eq!(f.front_chan.delay_cycles, 777);
        assert_eq!(f.db_crash_at, Some(12 * CPU_HZ));
        assert_eq!(f.db_slowdown, Some((1, 2, 3)));
        assert_eq!(f.front_chan.drop_p, 0.0, "unknown role ignored");
    }

    #[test]
    fn clean_scenario_passes_every_oracle_and_is_reproducible() {
        let r = tiny_repro();
        let a = run_scenario(&r);
        let b = run_scenario(&r);
        assert_eq!(a.violations, vec![], "clean run violates nothing");
        assert_eq!(a.fingerprint, b.fingerprint, "bit-identical replay");
    }

    #[test]
    fn different_policies_reach_different_executions() {
        // Needs real lock contention at MySQL (see default_workload);
        // below that, the ready queue never holds two threads at once
        // and every policy degenerates to the same execution.
        let mut fifo = tiny_repro();
        fifo.set_knob("clients", 60);
        fifo.set_knob("duration", 60 * CPU_HZ);
        fifo.set_knob("warmup", 10 * CPU_HZ);
        fifo.policy = "fifo".into();
        let mut lifo = fifo.clone();
        lifo.policy = "lifo".into();
        let a = run_scenario(&fifo);
        let b = run_scenario(&lifo);
        // Both legal, both clean — but genuinely distinct interleavings.
        assert_eq!(a.violations, vec![]);
        assert_eq!(b.violations, vec![]);
        assert_ne!(a.fingerprint, b.fingerprint, "policy changed the run");
    }

    #[test]
    fn planted_livelock_is_caught_by_the_progress_oracle() {
        let mut r = tiny_repro();
        r.set_knob("livelock_pair", 1);
        r.set_knob("step_budget", 10_000);
        let res = run_scenario(&r);
        assert!(res.has_violation("progress"), "got {:?}", res.violations);
        assert!(res.outcome.contains("livelock"), "outcome: {}", res.outcome);
        assert!(still_fails_with(&r, "progress"));
    }
}
