//! Chaos-explorer oracles over the topology zoo: every zoo member
//! must hold the same invariants the TPC-W assembly does — profile
//! mass conservation, honest fault accounting, bounded progress —
//! under clean runs, fault storms, backend crashes, and the planted
//! livelock defect.

use whodunit_apps::zoo::{run_zoo_scenario, zoo_space, zoo_workload, Topology, ZOO_HORIZON};
use whodunit_core::cost::CPU_HZ;
use whodunit_core::repro::{ChaosRepro, FaultEntry};

fn base_repro(seed: u64) -> ChaosRepro {
    let mut r = ChaosRepro {
        seed,
        policy: "fifo".into(),
        workload: zoo_workload(),
        faults: Vec::new(),
        violation: None,
        window: None,
    };
    r.set_knob("clients", 8);
    r.set_knob("duration", 15 * CPU_HZ);
    r.set_knob("warmup", 4 * CPU_HZ);
    r
}

#[test]
fn clean_scenarios_pass_every_oracle_on_all_topologies() {
    for t in Topology::ALL {
        let r = base_repro(3);
        let a = run_zoo_scenario(t, &r);
        assert_eq!(
            a.violations,
            vec![],
            "{}: clean run violates nothing",
            t.name()
        );
        let b = run_zoo_scenario(t, &r);
        assert_eq!(
            a.fingerprint,
            b.fingerprint,
            "{}: bit-identical replay",
            t.name()
        );
    }
}

#[test]
fn fault_storms_conserve_profile_mass_on_all_topologies() {
    for t in Topology::ALL {
        let mut r = base_repro(7);
        r.faults = vec![
            FaultEntry::Drop {
                chan: "front".into(),
                ppm: 20_000,
            },
            FaultEntry::Dup {
                chan: "backbone".into(),
                ppm: 30_000,
            },
            FaultEntry::Delay {
                chan: "backbone".into(),
                ppm: 80_000,
                cycles: CPU_HZ / 100,
            },
        ];
        let res = run_zoo_scenario(t, &r);
        assert_eq!(
            res.violations,
            vec![],
            "{}: mass conservation and fault accounting hold under storm",
            t.name()
        );
        let (dropped, duped, delayed) = res.faults_seen;
        assert!(
            dropped + duped + delayed > 0,
            "{}: the storm actually touched the wire",
            t.name()
        );
    }
}

#[test]
fn backend_crash_degrades_without_oracle_violations() {
    // The crashable backend dies mid-run; RPC timeouts turn the loss
    // into client-visible errors instead of a stalled simulation, and
    // every oracle still holds.
    for t in Topology::ALL {
        let mut r = base_repro(11);
        let role = match t {
            Topology::Fanout => "svc",
            Topology::PubSub => "sub",
            Topology::CacheWt => "store",
        };
        r.faults = vec![FaultEntry::Crash {
            proc: role.into(),
            at: 8 * CPU_HZ,
        }];
        let res = run_zoo_scenario(t, &r);
        assert_eq!(res.violations, vec![], "{}: crash run stays clean", t.name());
        assert!(
            !res.outcome.contains("deadlock"),
            "{}: timeouts prevent a stall, got {}",
            t.name(),
            res.outcome
        );
    }
}

#[test]
fn planted_livelock_is_caught_on_every_topology() {
    for t in Topology::ALL {
        let mut r = base_repro(5);
        r.set_knob("livelock_pair", 1);
        r.set_knob("step_budget", 10_000);
        let res = run_zoo_scenario(t, &r);
        assert!(
            res.has_violation("progress"),
            "{}: got {:?}",
            t.name(),
            res.violations
        );
        assert!(
            res.outcome.contains("livelock"),
            "{}: outcome {}",
            t.name(),
            res.outcome
        );
    }
}

#[test]
fn zoo_space_declares_the_faultable_surface() {
    for t in Topology::ALL {
        let s = zoo_space(t);
        assert_eq!(s.channels, vec!["front".to_string(), "backbone".into()]);
        assert_eq!(s.crashable.len(), 1);
        assert_eq!(s.slowable, s.crashable);
        assert_eq!(s.horizon, ZOO_HORIZON);
    }
}
