//! Baseline profilers compared against Whodunit in §9 / Table 2.
//!
//! - [`CsprofRuntime`]: the csprof call-path sampler Whodunit builds
//!   on (§7.1) — one Calling Context Tree for the whole process, a
//!   fixed cost per sample, *no* transaction tracking. Its overhead is
//!   flat regardless of call density.
//! - [`GprofRuntime`]: gprof-style instrumentation — an `mcount` cost
//!   on *every procedure entry* plus the same statistical sampling.
//!   Its overhead is proportional to the number of calls the program
//!   executes, which is why Table 2 shows ≈24% for gprof against ≈3%
//!   for csprof at the same sampling frequency.
//!
//! - [`TmonRuntime`]: Tmon-style lock-wait measurement (Ji–Felten–Li,
//!   §10) — per-*thread* waiting times with no transaction
//!   information. §6 argues this is strictly less useful than
//!   crosstalk: "we cannot infer what transaction is waiting, and what
//!   transaction is causing the wait".
//!
//! All implement [`whodunit_core::rt::Runtime`] and plug into the
//! simulator exactly like Whodunit, so the comparisons differ only in
//! the runtime installed.

#![warn(missing_docs)]

use std::collections::HashMap;
use whodunit_core::cct::{Cct, Metrics};
use whodunit_core::cost::CostModel;
use whodunit_core::frame::FrameId;
use whodunit_core::ids::ThreadId;
use whodunit_core::rt::Runtime;

/// The csprof baseline: sampling call-path profiler, no transactions.
#[derive(Debug)]
pub struct CsprofRuntime {
    cost: CostModel,
    cct: Cct,
    acc: HashMap<ThreadId, u64>,
    overhead: u64,
}

impl Default for CsprofRuntime {
    fn default() -> Self {
        Self::new(CostModel::csprof())
    }
}

impl CsprofRuntime {
    /// Creates a csprof runtime with the given cost model.
    pub fn new(cost: CostModel) -> Self {
        CsprofRuntime {
            cost,
            cct: Cct::new(),
            acc: HashMap::new(),
            overhead: 0,
        }
    }

    /// The single process-wide CCT.
    pub fn cct(&self) -> &Cct {
        &self.cct
    }
}

impl Runtime for CsprofRuntime {
    fn name(&self) -> &'static str {
        "csprof"
    }

    fn on_compute(&mut self, t: ThreadId, stack: &[FrameId], cycles: u64) -> u64 {
        let acc = self.acc.entry(t).or_insert(0);
        let samples = self.cost.samples_in(acc, cycles);
        self.cct.record(
            stack,
            Metrics {
                samples,
                cycles,
                calls: 0,
            },
        );
        let oh = samples * self.cost.per_sample_cycles;
        self.overhead += oh;
        oh
    }

    fn overhead_cycles(&self) -> u64 {
        self.overhead
    }
}

/// The gprof baseline: per-call `mcount` instrumentation + sampling.
#[derive(Debug)]
pub struct GprofRuntime {
    cost: CostModel,
    /// Flat profile: exclusive samples/cycles per leaf frame.
    flat: HashMap<FrameId, Metrics>,
    /// Call-graph arcs: (caller, callee) → call count. The caller is
    /// the frame below the callee on the stack at call time.
    arcs: HashMap<(Option<FrameId>, FrameId), u64>,
    stacks: HashMap<ThreadId, Vec<FrameId>>,
    acc: HashMap<ThreadId, u64>,
    calls: u64,
    overhead: u64,
}

impl Default for GprofRuntime {
    fn default() -> Self {
        Self::new(CostModel::gprof())
    }
}

impl GprofRuntime {
    /// Creates a gprof runtime with the given cost model.
    pub fn new(cost: CostModel) -> Self {
        GprofRuntime {
            cost,
            flat: HashMap::new(),
            arcs: HashMap::new(),
            stacks: HashMap::new(),
            acc: HashMap::new(),
            calls: 0,
            overhead: 0,
        }
    }

    /// Total procedure calls counted.
    pub fn call_count(&self) -> u64 {
        self.calls
    }

    /// The flat profile entry for `f`.
    pub fn flat(&self, f: FrameId) -> Metrics {
        self.flat.get(&f).copied().unwrap_or_default()
    }

    /// The call count of the arc `caller → callee` (`None` = spawned
    /// at top level).
    pub fn arc(&self, caller: Option<FrameId>, callee: FrameId) -> u64 {
        self.arcs.get(&(caller, callee)).copied().unwrap_or(0)
    }
}

impl Runtime for GprofRuntime {
    fn name(&self) -> &'static str {
        "gprof"
    }

    fn on_call(&mut self, t: ThreadId, f: FrameId) -> u64 {
        let stack = self.stacks.entry(t).or_default();
        let caller = stack.last().copied();
        stack.push(f);
        *self.arcs.entry((caller, f)).or_insert(0) += 1;
        self.calls += 1;
        self.overhead += self.cost.per_call_cycles;
        self.cost.per_call_cycles
    }

    fn on_return(&mut self, t: ThreadId) -> u64 {
        self.stacks.entry(t).or_default().pop();
        0
    }

    fn on_calls(&mut self, t: ThreadId, f: FrameId, n: u64) -> u64 {
        let caller = self.stacks.entry(t).or_default().last().copied();
        *self.arcs.entry((caller, f)).or_insert(0) += n;
        self.calls += n;
        let oh = n * self.cost.per_call_cycles;
        self.overhead += oh;
        oh
    }

    fn on_compute(&mut self, t: ThreadId, stack: &[FrameId], cycles: u64) -> u64 {
        let acc = self.acc.entry(t).or_insert(0);
        let samples = self.cost.samples_in(acc, cycles);
        if let Some(&leaf) = stack.last() {
            let m = self.flat.entry(leaf).or_default();
            m.samples += samples;
            m.cycles += cycles;
        }
        let oh = samples * self.cost.per_sample_cycles;
        self.overhead += oh;
        oh
    }

    fn on_exit(&mut self, t: ThreadId) {
        self.stacks.remove(&t);
        self.acc.remove(&t);
    }

    fn overhead_cycles(&self) -> u64 {
        self.overhead
    }
}

/// Tmon-style per-thread lock-wait profiler (no transaction contexts).
#[derive(Debug, Default)]
pub struct TmonRuntime {
    waits: HashMap<ThreadId, (u64, u64)>,
    per_lock: HashMap<whodunit_core::ids::LockId, (u64, u64)>,
}

impl TmonRuntime {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// `(count, total cycles)` of waits for `t`.
    pub fn thread_wait(&self, t: ThreadId) -> (u64, u64) {
        self.waits.get(&t).copied().unwrap_or((0, 0))
    }

    /// `(count, total cycles)` of waits on `lock`.
    pub fn lock_wait(&self, lock: whodunit_core::ids::LockId) -> (u64, u64) {
        self.per_lock.get(&lock).copied().unwrap_or((0, 0))
    }

    /// All per-thread rows, sorted by thread id.
    pub fn report(&self) -> Vec<(ThreadId, u64, u64)> {
        let mut v: Vec<_> = self.waits.iter().map(|(&t, &(c, w))| (t, c, w)).collect();
        v.sort_by_key(|&(t, _, _)| t);
        v
    }
}

impl Runtime for TmonRuntime {
    fn name(&self) -> &'static str {
        "tmon"
    }

    fn on_lock_acquired(
        &mut self,
        t: ThreadId,
        lock: whodunit_core::ids::LockId,
        _mode: whodunit_core::ids::LockMode,
        waited: u64,
        _holder: Option<whodunit_core::context::CtxId>,
    ) -> u64 {
        if waited > 0 {
            let e = self.waits.entry(t).or_insert((0, 0));
            e.0 += 1;
            e.1 += waited;
            let l = self.per_lock.entry(lock).or_insert((0, 0));
            l.0 += 1;
            l.1 += waited;
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: ThreadId = ThreadId(1);

    #[test]
    fn csprof_records_one_tree_no_contexts() {
        let mut r = CsprofRuntime::default();
        let f1 = FrameId(1);
        let f2 = FrameId(2);
        r.on_compute(T, &[f1], 1000);
        r.on_compute(T, &[f1, f2], 2000);
        assert_eq!(r.cct().total().cycles, 3000);
        assert_eq!(r.name(), "csprof");
    }

    #[test]
    fn csprof_overhead_scales_with_samples_not_calls() {
        let mut r = CsprofRuntime::default();
        for _ in 0..10_000 {
            r.on_call(T, FrameId(1));
            r.on_return(T);
        }
        assert_eq!(r.overhead_cycles(), 0, "calls are free for a sampler");
        let period = CostModel::csprof().sample_period;
        r.on_compute(T, &[FrameId(1)], period * 4);
        assert_eq!(
            r.overhead_cycles(),
            4 * CostModel::csprof().per_sample_cycles
        );
    }

    #[test]
    fn gprof_charges_every_call() {
        let mut r = GprofRuntime::default();
        let per = CostModel::gprof().per_call_cycles;
        for _ in 0..100 {
            let oh = r.on_call(T, FrameId(1));
            assert_eq!(oh, per);
            r.on_return(T);
        }
        assert_eq!(r.call_count(), 100);
        assert_eq!(r.overhead_cycles(), 100 * per);
    }

    #[test]
    fn gprof_builds_call_graph_arcs() {
        let mut r = GprofRuntime::default();
        let (main, foo, bar) = (FrameId(1), FrameId(2), FrameId(3));
        r.on_call(T, main);
        r.on_call(T, foo);
        r.on_return(T);
        r.on_call(T, bar);
        r.on_call(T, foo);
        r.on_return(T);
        r.on_return(T);
        r.on_return(T);
        assert_eq!(r.arc(None, main), 1);
        assert_eq!(r.arc(Some(main), foo), 1);
        assert_eq!(r.arc(Some(bar), foo), 1);
        assert_eq!(r.arc(Some(main), bar), 1);
    }

    #[test]
    fn gprof_flat_profile_attributes_to_leaf() {
        let mut r = GprofRuntime::default();
        let (a, b) = (FrameId(1), FrameId(2));
        r.on_compute(T, &[a, b], 5000);
        assert_eq!(r.flat(b).cycles, 5000);
        assert_eq!(r.flat(a).cycles, 0);
    }

    #[test]
    fn tmon_records_per_thread_waits_only() {
        use whodunit_core::ids::{LockId, LockMode};
        let mut r = TmonRuntime::new();
        r.on_lock_acquired(T, LockId(1), LockMode::Exclusive, 500, None);
        r.on_lock_acquired(T, LockId(1), LockMode::Exclusive, 0, None);
        r.on_lock_acquired(ThreadId(2), LockId(1), LockMode::Shared, 300, None);
        assert_eq!(r.thread_wait(T), (1, 500));
        assert_eq!(r.thread_wait(ThreadId(2)), (1, 300));
        assert_eq!(r.lock_wait(LockId(1)), (2, 800));
        assert_eq!(r.report().len(), 2);
        // No transaction information exists anywhere in the report —
        // that is §6's point.
    }

    #[test]
    fn overhead_regimes_match_table2_shape() {
        // A call-dense workload: gprof's overhead must exceed csprof's
        // by an order of magnitude.
        let mut cs = CsprofRuntime::default();
        let mut gp = GprofRuntime::default();
        let work_cycles = 50_000u64;
        for _ in 0..1000 {
            for r in [&mut cs as &mut dyn Runtime, &mut gp as &mut dyn Runtime] {
                // One call per ~500 cycles, typical of call-dense
                // server code.
                for _ in 0..100 {
                    r.on_call(T, FrameId(1));
                }
                r.on_compute(T, &[FrameId(1)], work_cycles);
                for _ in 0..100 {
                    r.on_return(T);
                }
            }
        }
        let total_work = 1000 * work_cycles;
        let cs_pct = cs.overhead_cycles() as f64 / total_work as f64;
        let gp_pct = gp.overhead_cycles() as f64 / total_work as f64;
        assert!(
            gp_pct > 5.0 * cs_pct,
            "gprof {gp_pct:.3} vs csprof {cs_pct:.3}"
        );
    }
}
