//! Golden-file test for the federation topology rendering: one fixed
//! TPC-W run's delta stream, split across a two-region federation with
//! a planted leaf crash, viewed mid-run and after finalize with
//! `report::render_fed_topology` and compared byte-for-byte against a
//! checked-in golden under `tests/golden/`.
//!
//! Everything in the chain — the simulation, the replica splitter, the
//! federation's virtual link fabric, the renderer — is deterministic,
//! so any byte difference is a real behavior or format change.
//!
//! # Updating the golden
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_federation
//! ```
//!
//! then review the diff of `tests/golden/federation_topology.txt` like
//! any other code change and commit it alongside the change that
//! caused it.

use std::path::PathBuf;
use whodunit::apps::federation::{fan_in_topology, fleet_epochs, leaf_stream, replica_header};
use whodunit::apps::tpcw::run_tpcw_streaming;
use whodunit_bench::matrix::federation_cfg;
use whodunit::collector::federation::{CleanLinks, FedNodeId, Federation, FederationConfig};
use whodunit::core::cost::CPU_HZ;
use whodunit::core::delta::RecordingSink;
use whodunit::report::render_fed_topology;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        eprintln!("updated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run UPDATE_GOLDEN=1 cargo test --test golden_federation",
            path.display()
        )
    });
    if got != want {
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            if g != w {
                panic!(
                    "golden mismatch {} at line {}:\n  got:  {g}\n  want: {w}\n\
                     (UPDATE_GOLDEN=1 regenerates after an intentional change)",
                    path.display(),
                    i + 1
                );
            }
        }
        panic!(
            "golden mismatch {}: lengths differ (got {} lines, want {})",
            path.display(),
            got.lines().count(),
            want.lines().count()
        );
    }
}

#[test]
fn golden_federation_topology() {
    let mut sink = RecordingSink::default();
    run_tpcw_streaming(federation_cfg(1), CPU_HZ, &mut sink);

    // Six replicas across two regions of two leaves each.
    let replicas = 6;
    let stagger = 2;
    let g = sink.header.stages.len();
    let global = replica_header(&sink.header, replicas);
    let (topo, ranges) = fan_in_topology(replicas, g, &[2, 2]);
    let total = fleet_epochs(sink.batches.len(), replicas, stagger);
    let streams: Vec<_> = ranges
        .iter()
        .map(|&(r0, r1)| leaf_stream(&sink.header, &sink.batches, r0, r1, stagger, total, CPU_HZ))
        .collect();

    let fed_cfg = FederationConfig {
        flush_every: 2,
        checkpoint_every: 4,
        ..FederationConfig::default()
    };
    let mut fed = Federation::new(&global, &topo, fed_cfg, Box::new(CleanLinks));
    // A mid-run leaf crash with recovery, so the view shows liveness
    // flip to DOWN and the final view shows the recovery counter.
    fed.crash(FedNodeId::Leaf(1), 9, Some(15));

    let mid = total / 2;
    let mut cursors = vec![0usize; streams.len()];
    let mut doc = String::new();
    for ge in 0..total {
        for (leaf, stream) in streams.iter().enumerate() {
            let cur = cursors[leaf];
            if cur < stream.len() && stream[cur].epoch == ge {
                fed.feed(leaf, &stream[cur]);
                cursors[leaf] = cur + 1;
            }
        }
        fed.tick();
        if ge + 1 == 11 {
            doc.push_str("-- during the leaf 1 outage --\n");
            doc.push_str(&render_fed_topology(&fed.topology_view()));
            doc.push('\n');
        }
        if ge + 1 == mid {
            doc.push_str("-- mid-run --\n");
            doc.push_str(&render_fed_topology(&fed.topology_view()));
            doc.push('\n');
        }
    }
    let out = fed.finalize();
    assert_eq!(out.coverage_ppm, 1_000_000, "recovery must lose no mass");
    doc.push_str("-- final --\n");
    doc.push_str(&render_fed_topology(&out.topology));
    check_golden("federation_topology.txt", &doc);
}
