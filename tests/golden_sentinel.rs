//! Golden-file test for the rendered incident report: one fixed
//! faultstorm scenario (mysql slowdown under the TPC-W matrix config)
//! is captured by the sentinel pipeline and rendered with
//! `report::render_incident` twice — once mid-violation (detection
//! only, capture still in flight) and once post-capture (shrink and
//! replay verification attached) — and compared byte-for-byte against
//! a checked-in golden under `tests/golden/`.
//!
//! Simulation, collector, sentinel, shrinking, and replay are all
//! deterministic, so any byte difference is a real behavior or format
//! change.
//!
//! # Updating the golden
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_sentinel
//! ```
//!
//! then review the diff of `tests/golden/sentinel_incident.txt` like
//! any other code change and commit it alongside the change that
//! caused it.

use std::path::PathBuf;
use whodunit::apps::chaos::default_workload;
use whodunit::apps::sentinel::{calibrate_budget, capture_incident};
use whodunit::core::cost::CPU_HZ;
use whodunit::core::repro::{ChaosRepro, FaultEntry};
use whodunit::report::render_incident;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        eprintln!("updated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run UPDATE_GOLDEN=1 cargo test --test golden_sentinel",
            path.display()
        )
    });
    if got != want {
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            if g != w {
                panic!(
                    "golden mismatch {} at line {}:\n  got:  {g}\n  want: {w}\n\
                     (UPDATE_GOLDEN=1 regenerates after an intentional change)",
                    path.display(),
                    i + 1
                );
            }
        }
        panic!(
            "golden mismatch {}: lengths differ (got {} lines, want {})",
            path.display(),
            got.lines().count(),
            want.lines().count()
        );
    }
}

fn matrix_repro(seed: u64) -> ChaosRepro {
    let mut r = ChaosRepro {
        seed,
        policy: "fifo".into(),
        workload: default_workload(),
        faults: Vec::new(),
        violation: None,
        window: None,
    };
    r.set_knob("clients", 12);
    r.set_knob("duration", 25 * CPU_HZ);
    r.set_knob("warmup", 5 * CPU_HZ);
    r
}

#[test]
fn incident_report_matches_golden() {
    let budget = calibrate_budget(&matrix_repro(1), CPU_HZ, 3, 2);
    let mut storm = matrix_repro(1);
    let onset = 10 * CPU_HZ;
    storm.faults = vec![FaultEntry::Slowdown {
        machine: "mysql".into(),
        from: onset,
        until: 25 * CPU_HZ,
        factor: 8,
    }];
    let inc = capture_incident(&storm, &budget, CPU_HZ).expect("faultstorm must trip");
    assert!(inc.oracle.is_empty(), "capture oracle: {:?}", inc.oracle);

    // Mid-violation view: the trip is known but shrink and replay have
    // not completed yet — exactly the card a live dashboard renders
    // while the capture pipeline is still running.
    let mut mid = inc.card.clone();
    mid.shrink = None;
    mid.replay = None;

    // Post-capture view: the full card, with detection latency against
    // the fault plan's onset epoch.
    let mut post = inc.card.clone();
    post.onset_epoch = Some(onset / CPU_HZ);

    let mut got = String::new();
    got.push_str("### mid-violation ###\n");
    got.push_str(&render_incident(&mid));
    got.push_str("\n### post-capture ###\n");
    got.push_str(&render_incident(&post));
    check_golden("sentinel_incident.txt", &got);
}
