//! Cross-crate integration tests: the full Whodunit pipeline from
//! simulated applications through profiling to post-mortem stitching.

use whodunit::apps::chaos::{default_workload, run_scenario};
use whodunit::apps::dbserver::Engine;
use whodunit::apps::httpd::{run_httpd, HttpdConfig};
use whodunit::apps::proxy::{run_proxy, ProxyConfig};
use whodunit::apps::rtconf::RtKind;
use whodunit::apps::sedasrv::{run_haboob, HaboobConfig};
use whodunit::apps::tpcw::{run_tpcw, TpcwConfig, TpcwFaults};
use whodunit::core::cost::CPU_HZ;
use whodunit::core::pipeline::{analyze, PipelineConfig};
use whodunit::core::repro::{repro_from_json, repro_to_json, ChaosRepro, FaultEntry};
use whodunit::core::rt::Runtime;
use whodunit::core::stitch::Stitched;
use whodunit::report::{json, render, tpcw};
use whodunit::sim::fault::ChannelFaults;
use whodunit::workload::Interaction;

fn label_of(frame: &str) -> Option<String> {
    Interaction::ALL
        .iter()
        .find(|i| i.servlet() == frame)
        .map(|i| i.name().to_owned())
}

#[test]
fn tpcw_profiles_stitch_and_label_interactions() {
    let r = run_tpcw(TpcwConfig {
        clients: 60,
        engine: Engine::MyIsam,
        caching: false,
        rt: RtKind::Whodunit,
        duration: 150 * CPU_HZ,
        warmup: 40 * CPU_HZ,
        ..TpcwConfig::default()
    });
    assert_eq!(r.dumps.len(), 3);

    // The dumps survive a JSON round trip (the on-disk format).
    let j = json::to_json(&r.dumps);
    let dumps = json::from_json(&j).expect("profiles parse back");
    let stitched = Stitched::new(dumps);

    // Table 1 labels resolve across tiers.
    let rows = tpcw::table1(&stitched, 2, &|n| label_of(n));
    assert!(rows.len() >= 6, "rows: {rows:?}");
    let total: f64 = rows.iter().map(|r| r.cpu_pct).sum();
    assert!(
        total > 95.0,
        "labeled contexts cover MySQL CPU: {total:.1}%"
    );

    // BestSellers dominates, matching the ground truth the simulator
    // tracked independently of the profiler.
    let bs_profile = rows
        .iter()
        .find(|r| r.interaction == "BestSellers")
        .map(|r| r.cpu_pct)
        .unwrap_or(0.0);
    let truth_total: u64 = r.db_cpu_truth.values().sum();
    let bs_truth = *r.db_cpu_truth.get(&Interaction::BestSellers).unwrap_or(&0) as f64 * 100.0
        / truth_total as f64;
    assert!(
        (bs_profile - bs_truth).abs() < 6.0,
        "profiler ({bs_profile:.1}%) matches ground truth ({bs_truth:.1}%)"
    );

    // Request edges connect the three tiers.
    let edges = stitched.request_edges();
    assert!(
        edges.iter().any(|e| e.from_stage == 0 && e.to_stage == 1),
        "squid -> tomcat edges"
    );
    assert!(
        edges.iter().any(|e| e.from_stage == 1 && e.to_stage == 2),
        "tomcat -> mysql edges"
    );
}

#[test]
fn innodb_reduces_admin_confirm_response_time() {
    let run = |engine| {
        run_tpcw(TpcwConfig {
            clients: 100,
            engine,
            caching: false,
            rt: RtKind::None,
            // AdminConfirm is 0.09% of the mix; a long window is needed
            // for it to occur (deterministic given the fixed seed).
            duration: 450 * CPU_HZ,
            warmup: 50 * CPU_HZ,
            ..TpcwConfig::default()
        })
    };
    let myisam = run(Engine::MyIsam);
    let innodb = run(Engine::InnoDb);
    let ac_m = myisam
        .rt_ms
        .get(&Interaction::AdminConfirm)
        .copied()
        .unwrap_or(0.0);
    let ac_i = innodb
        .rt_ms
        .get(&Interaction::AdminConfirm)
        .copied()
        .unwrap_or(0.0);
    assert!(
        ac_m > 0.0 && ac_i > 0.0,
        "AdminConfirm sampled in both runs"
    );
    assert!(
        ac_i < ac_m,
        "row locking reduces AdminConfirm RT: {ac_i:.0} vs {ac_m:.0} ms"
    );
}

#[test]
fn all_four_runtimes_drive_every_app() {
    for rt in [
        RtKind::None,
        RtKind::Csprof,
        RtKind::Whodunit,
        RtKind::Gprof,
    ] {
        let h = run_httpd(HttpdConfig {
            clients: 6,
            workers: 3,
            duration: 2 * CPU_HZ,
            rt,
            ..HttpdConfig::default()
        });
        assert!(h.reqs > 10, "{rt:?} httpd reqs {}", h.reqs);
        let p = run_proxy(ProxyConfig {
            clients: 6,
            duration: 2 * CPU_HZ,
            rt,
            ..ProxyConfig::default()
        });
        assert!(p.reqs > 10, "{rt:?} proxy reqs {}", p.reqs);
        let s = run_haboob(HaboobConfig {
            clients: 6,
            duration: 2 * CPU_HZ,
            rt,
            ..HaboobConfig::default()
        });
        assert!(s.reqs > 10, "{rt:?} haboob reqs {}", s.reqs);
    }
}

#[test]
fn profiler_overhead_ordering_matches_table2() {
    let tput = |rt| {
        run_tpcw(TpcwConfig {
            clients: 200,
            engine: Engine::MyIsam,
            caching: false,
            rt,
            duration: 120 * CPU_HZ,
            warmup: 40 * CPU_HZ,
            ..TpcwConfig::default()
        })
        .throughput_per_min
    };
    let none = tput(RtKind::None);
    let cs = tput(RtKind::Csprof);
    let who = tput(RtKind::Whodunit);
    let gp = tput(RtKind::Gprof);
    assert!(none >= cs * 0.995, "none {none:.0} >= csprof {cs:.0}");
    assert!(cs >= who * 0.98, "whodunit close to csprof");
    assert!(who > gp * 1.1, "gprof at least 10% behind whodunit");
}

#[test]
fn figure8_profile_renders_with_flow_context() {
    let r = run_httpd(HttpdConfig {
        clients: 8,
        workers: 4,
        duration: 3 * CPU_HZ,
        rt: RtKind::Whodunit,
        ..HttpdConfig::default()
    });
    let w = r.runtime.whodunit.as_ref().unwrap().borrow();
    let dump = w.dump().unwrap();
    let text = render::render_stage(&dump);
    assert!(text.contains("ap_process_connection"));
    assert!(text.contains("sendfile"));
    assert!(
        text.contains("ap_queue_push"),
        "flow context visible: {text}"
    );
    let dot = render::render_dot(&dump);
    assert!(dot.contains("digraph"));
}

#[test]
fn faulty_tpcw_still_stitches_end_to_end() {
    // A lossy wire between the tiers: the profile must stay
    // stitchable, the parallel analysis must stay byte-identical to
    // serial, and any missing sender shows up as an explicit
    // unresolved edge rather than silent shrinkage.
    let r = run_tpcw(TpcwConfig {
        clients: 24,
        duration: 60 * CPU_HZ,
        warmup: 15 * CPU_HZ,
        faults: Some(TpcwFaults {
            seed: 0xbad,
            db_chan: ChannelFaults {
                drop_p: 0.04,
                dup_p: 0.02,
                delay_p: 0.06,
                delay_cycles: CPU_HZ / 100,
            },
            front_chan: ChannelFaults {
                drop_p: 0.01,
                ..Default::default()
            },
            ..Default::default()
        }),
        step_budget: Some(5_000_000),
        ..TpcwConfig::default()
    });
    assert_eq!(r.dumps.len(), 3);
    assert!(
        r.dropped_msgs + r.duplicated_msgs + r.delayed_msgs > 0,
        "fault plan fired on the wire"
    );
    // The degraded stack still completes work.
    assert!(r.throughput_per_min > 0.0);

    let serial = analyze(r.dumps.clone(), PipelineConfig::with_workers(1));
    let par = analyze(r.dumps.clone(), PipelineConfig::with_workers(4));
    assert_eq!(serial.fingerprint(), par.fingerprint());
    assert_eq!(serial.stitched_text(), par.stitched_text());
    assert!(!serial.profiles.is_empty(), "faulty run still profiles");

    // Edges still connect squid -> tomcat -> mysql despite the faults.
    let stitched = Stitched::new(r.dumps);
    let edges = stitched.request_edges();
    assert!(edges.iter().any(|e| e.from_stage == 0 && e.to_stage == 1));
    assert!(edges.iter().any(|e| e.from_stage == 1 && e.to_stage == 2));
    assert_eq!(serial.edges, edges);
}

#[test]
fn chaos_repro_fixture_replays_bit_identically() {
    // A chaos-explorer style repro fixture (core/repro.rs), exercised
    // through its serialized form the way a replay from disk would be.
    let mut fixture = ChaosRepro {
        seed: 42,
        policy: "perturb:42:250000".to_owned(),
        workload: default_workload(),
        faults: vec![
            FaultEntry::Drop {
                chan: "db".into(),
                ppm: 30_000,
            },
            FaultEntry::Delay {
                chan: "db".into(),
                ppm: 50_000,
                cycles: CPU_HZ / 100,
            },
            FaultEntry::Dup {
                chan: "front".into(),
                ppm: 10_000,
            },
        ],
        ..ChaosRepro::default()
    };
    fixture.set_knob("clients", 16);
    fixture.set_knob("duration", 25 * CPU_HZ);
    fixture.set_knob("warmup", 5 * CPU_HZ);

    // Round-trip through the on-disk format, then replay twice.
    let parsed = repro_from_json(&repro_to_json(&fixture)).expect("fixture parses back");
    let a = run_scenario(&parsed);
    let b = run_scenario(&parsed);
    assert_eq!(
        a.fingerprint, b.fingerprint,
        "replay is bit-identical: {} vs {}",
        a.outcome, b.outcome
    );
    assert!(
        a.violations.is_empty(),
        "no oracle violations on the healthy stack: {:?}",
        a.violations
    );
    let (drops, dups, delays) = a.faults_seen;
    assert!(drops + dups + delays > 0, "repro's fault plan fired");
}

#[test]
fn whodunit_contexts_survive_persistent_connections() {
    // Squid under long-lived connections: loop pruning keeps the
    // context set small even after thousands of requests.
    let r = run_proxy(ProxyConfig {
        clients: 10,
        duration: 6 * CPU_HZ,
        rt: RtKind::Whodunit,
        ..ProxyConfig::default()
    });
    let w = r.runtime.whodunit.as_ref().unwrap().borrow();
    assert!(r.reqs > 1000);
    assert!(
        w.profiled_contexts().len() <= 8,
        "contexts stay bounded: {}",
        w.profiled_contexts().len()
    );
}
