//! Golden-file tests for `whodunit-report`: two fixed TPC-W runs (one
//! clean, one faulty) rendered to canonical text and compared
//! byte-for-byte against checked-in goldens under `tests/golden/`.
//!
//! The rendered document is `report::render::render_pipeline` (the
//! stitched transactions + crosstalk matrix from the parallel analysis
//! pipeline) followed by the Table-1 view. Both simulation and analysis
//! are fully deterministic, so any byte difference is a real behavior
//! or format change.
//!
//! # Updating the goldens
//!
//! When an intentional format or behavior change lands, regenerate
//! with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_report
//! ```
//!
//! then review the diff of `tests/golden/*.txt` like any other code
//! change and commit it alongside the change that caused it.

use std::path::PathBuf;
use whodunit::apps::tpcw::{run_tpcw, TpcwConfig, TpcwFaults};
use whodunit::core::cost::CPU_HZ;
use whodunit::core::pipeline::{analyze, PipelineConfig};
use whodunit::report::{render, table, tpcw};
use whodunit::sim::fault::ChannelFaults;
use whodunit::workload::Interaction;

fn label_of(frame: &str) -> Option<String> {
    Interaction::ALL
        .iter()
        .find(|i| i.servlet() == frame)
        .map(|i| i.name().to_owned())
}

/// Renders one TPC-W run to the canonical golden document.
fn canonical_doc(cfg: TpcwConfig) -> String {
    let r = run_tpcw(cfg);
    assert_eq!(r.dumps.len(), 3, "squid, tomcat, mysql all dump");
    // Analyze with a parallel worker count: the differential suite
    // proves this equals workers = 1, so the goldens also pin the
    // parallel path's output.
    let rep = analyze(r.dumps.clone(), PipelineConfig::with_workers(4));
    let mut doc = render::render_pipeline(&rep);
    doc.push_str("\n== table 1 ==\n");
    let stitched = whodunit::core::stitch::Stitched::new(r.dumps);
    let rows = tpcw::table1(&stitched, 2, &|n| label_of(n));
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.interaction.clone(),
                table::f(row.cpu_pct, 1),
                table::f(row.crosstalk_ms, 2),
            ]
        })
        .collect();
    doc.push_str(&table::render(
        &["interaction", "cpu %", "crosstalk ms"],
        &cells,
    ));
    doc
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        eprintln!("updated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run UPDATE_GOLDEN=1 cargo test --test golden_report",
            path.display()
        )
    });
    if got != want {
        // Point at the first diverging line rather than dumping both
        // documents whole.
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            if g != w {
                panic!(
                    "golden mismatch {} at line {}:\n  got:  {g}\n  want: {w}\n\
                     (UPDATE_GOLDEN=1 regenerates after an intentional change)",
                    path.display(),
                    i + 1
                );
            }
        }
        panic!(
            "golden mismatch {}: lengths differ (got {} lines, want {})",
            path.display(),
            got.lines().count(),
            want.lines().count()
        );
    }
}

fn clean_cfg() -> TpcwConfig {
    TpcwConfig {
        clients: 32,
        duration: 60 * CPU_HZ,
        warmup: 15 * CPU_HZ,
        seed: 1,
        ..TpcwConfig::default()
    }
}

fn faulty_cfg() -> TpcwConfig {
    TpcwConfig {
        clients: 24,
        duration: 45 * CPU_HZ,
        warmup: 10 * CPU_HZ,
        seed: 7,
        faults: Some(TpcwFaults {
            seed: 0xfeed,
            db_chan: ChannelFaults {
                drop_p: 0.03,
                dup_p: 0.01,
                delay_p: 0.05,
                delay_cycles: CPU_HZ / 100,
            },
            front_chan: ChannelFaults {
                drop_p: 0.01,
                ..Default::default()
            },
            ..Default::default()
        }),
        step_budget: Some(5_000_000),
        ..TpcwConfig::default()
    }
}

#[test]
fn golden_clean_tpcw_report() {
    check_golden("tpcw_clean.txt", &canonical_doc(clean_cfg()));
}

#[test]
fn golden_faulty_tpcw_report() {
    check_golden("tpcw_faulty.txt", &canonical_doc(faulty_cfg()));
}
