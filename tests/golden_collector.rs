//! Golden-file test for the live-query snapshot rendering of the
//! streaming collector: one fixed TPC-W run's delta stream, snapshotted
//! mid-run and at the final epoch, rendered with
//! `report::render_live_snapshot` and compared byte-for-byte against a
//! checked-in golden under `tests/golden/`.
//!
//! Both the simulation and the collector are fully deterministic, so
//! any byte difference is a real behavior or format change.
//!
//! # Updating the golden
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_collector
//! ```
//!
//! then review the diff of `tests/golden/collector_live.txt` like any
//! other code change and commit it alongside the change that caused it.

use std::path::PathBuf;
use whodunit::apps::tpcw::{run_tpcw_streaming, TpcwConfig};
use whodunit::collector::{Collector, CollectorConfig};
use whodunit::core::cost::CPU_HZ;
use whodunit::core::delta::RecordingSink;
use whodunit::report::render_live_snapshot;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        eprintln!("updated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run UPDATE_GOLDEN=1 cargo test --test golden_collector",
            path.display()
        )
    });
    if got != want {
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            if g != w {
                panic!(
                    "golden mismatch {} at line {}:\n  got:  {g}\n  want: {w}\n\
                     (UPDATE_GOLDEN=1 regenerates after an intentional change)",
                    path.display(),
                    i + 1
                );
            }
        }
        panic!(
            "golden mismatch {}: lengths differ (got {} lines, want {})",
            path.display(),
            got.lines().count(),
            want.lines().count()
        );
    }
}

#[test]
fn golden_live_snapshots() {
    let cfg = TpcwConfig {
        clients: 32,
        duration: 40 * CPU_HZ,
        warmup: 5 * CPU_HZ,
        seed: 1,
        ..TpcwConfig::default()
    };
    let mut sink = RecordingSink::default();
    run_tpcw_streaming(cfg, CPU_HZ, &mut sink);
    assert!(sink.batches.len() > 4, "stream too short to snapshot mid-run");

    let mut c = Collector::with_header(&sink.header, CollectorConfig::default());
    let mid = sink.batches.len() / 2;
    let mut doc = String::new();
    for (i, b) in sink.batches.iter().enumerate() {
        assert!(c.enqueue(b.clone()));
        c.drain();
        if i + 1 == mid {
            doc.push_str(&render_live_snapshot(&c.snapshot()));
            doc.push('\n');
        }
    }
    doc.push_str(&render_live_snapshot(&c.snapshot()));
    check_golden("collector_live.txt", &doc);
}
