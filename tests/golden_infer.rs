//! Golden-file test for the black-box inference report: a fixed
//! TPC-W run and the three zoo topologies, each stitched under the
//! full visibility ladder, rendered with
//! `report::infer::render_infer` and compared byte-for-byte against
//! `tests/golden/infer_report.txt`.
//!
//! Simulation, stitching, and the fixed-point rate formatting are all
//! integer-deterministic, so any byte difference is a real behavior
//! or format change.
//!
//! # Updating the golden
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_infer
//! ```
//!
//! then review the diff of `tests/golden/infer_report.txt` like any
//! other code change.

use std::path::PathBuf;
use whodunit::apps::tpcw::{run_tpcw, TpcwConfig, TpcwFaults};
use whodunit::apps::zoo::{run_zoo, Topology, ZooConfig};
use whodunit::core::blackbox::{CommLog, TierVisibility};
use whodunit::core::cost::CPU_HZ;
use whodunit::infer::{
    evidence, hybrid_stitch, infer_stitch, score_confident_pairs, score_origins, score_pairs,
    PairingConfig,
};
use whodunit::report::infer::{render_infer, InferRow};
use whodunit::sim::fault::ChannelFaults;

/// Scores one (scenario, visibility) cell into a report row.
fn row(scenario: &str, vis: &str, log: &CommLog) -> InferRow {
    let pc = PairingConfig::default();
    let procs = log.events.iter().map(|e| e.proc).max().unwrap_or(0) as usize + 1;
    let stitch = match vis {
        "blackbox" => infer_stitch(&log.events, &pc),
        "hybrid" => {
            let mut v = vec![TierVisibility::Cooperating; procs];
            v[1.min(procs - 1)] = TierVisibility::Opaque;
            hybrid_stitch(log, &v, &pc)
        }
        _ => hybrid_stitch(log, &vec![TierVisibility::Cooperating; procs], &pc),
    };
    // The golden pins presentation; the oracle still guards the data.
    assert!(
        whodunit::core::oracle::check_inference(&evidence(&stitch, log)).is_empty(),
        "{scenario}/{vis}: oracle violation"
    );
    InferRow {
        scenario: scenario.to_owned(),
        vis: vis.to_owned(),
        recvs: log.recv_count() as u64,
        pairs: score_pairs(&stitch, log),
        origins: score_origins(&stitch, log),
        confident: score_confident_pairs(&stitch, log),
    }
}

/// The canonical golden document: TPC-W clean + faulty, plus every
/// zoo topology, each under the three visibility configurations.
fn canonical_doc() -> String {
    let mut rows = Vec::new();

    let tpcw_cfg = |faults| TpcwConfig {
        clients: 8,
        duration: 12 * CPU_HZ,
        warmup: 3 * CPU_HZ,
        seed: 1,
        comm_log: true,
        faults,
        step_budget: Some(2_000_000),
        ..TpcwConfig::default()
    };
    let storm = TpcwFaults {
        seed: 0xfeed,
        db_chan: ChannelFaults {
            drop_p: 0.03,
            dup_p: 0.01,
            delay_p: 0.05,
            delay_cycles: CPU_HZ / 100,
        },
        ..Default::default()
    };
    for (label, faults) in [("tpcw/clean", None), ("tpcw/faulty", Some(storm))] {
        let log = run_tpcw(tpcw_cfg(faults)).comm.expect("comm log on");
        for vis in ["blackbox", "hybrid", "full"] {
            rows.push(row(label, vis, &log));
        }
    }

    for t in Topology::ALL {
        let cfg = ZooConfig {
            topology: t,
            seed: 3,
            clients: 8,
            duration: 12 * CPU_HZ,
            warmup: 3 * CPU_HZ,
            comm_log: true,
            ..ZooConfig::default()
        };
        let log = run_zoo(&cfg).comm.expect("comm log on");
        let label = format!("{}/clean", t.name());
        for vis in ["blackbox", "hybrid", "full"] {
            rows.push(row(&label, vis, &log));
        }
    }

    render_infer(&rows)
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/infer_report.txt")
}

#[test]
fn golden_infer_report() {
    let got = canonical_doc();
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        eprintln!("updated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run UPDATE_GOLDEN=1 cargo test --test golden_infer",
            path.display()
        )
    });
    if got != want {
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            if g != w {
                panic!(
                    "golden mismatch {} at line {}:\n  got:  {g}\n  want: {w}\n\
                     (UPDATE_GOLDEN=1 regenerates after an intentional change)",
                    path.display(),
                    i + 1
                );
            }
        }
        panic!(
            "golden mismatch {}: lengths differ (got {} lines, want {})",
            path.display(),
            got.lines().count(),
            want.lines().count()
        );
    }
}
