#!/usr/bin/env bash
# Repo CI gate: build, test, lint, pipeline + chaos smoke. Run from the
# repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release

# The full suite twice: default parallel test threads, then serialized.
# The analysis pipeline spawns its own worker pool inside tests; running
# both ways catches output that only stays deterministic under one
# threading regime.
cargo test --workspace -q
cargo test --workspace -q -- --test-threads=1

# The parallel-pipeline gates, explicitly (they also run as part of the
# workspace suite above; naming them keeps the gate obvious and fails
# fast if a refactor drops a suite from the workspace):
# - differential: serial vs parallel analysis byte-identity over
#   seeds x schedules x fault plans, cross-checked against the legacy
#   Stitched resolver;
# - golden: canonical rendered reports for two fixed TPC-W runs
#   (regenerate intentionally with UPDATE_GOLDEN=1).
cargo test -q -p whodunit-core --test parallel_diff
cargo test -q --test golden_report

# The streaming-collector gates:
# - differential: streaming collector vs batch pipeline byte-identity
#   over the same 36-scenario matrix (end-state lock);
# - golden: live-query snapshot rendering, mid-run + final epoch
#   (regenerate intentionally with UPDATE_GOLDEN=1).
cargo test -q -p whodunit-collector --test streaming_diff
cargo test -q --test golden_collector

cargo clippy --workspace -- -D warnings

# Pipeline smoke: sweep worker counts {1, 2, 4} over a small fleet and
# fail on any serial/parallel divergence.
cargo run --release -q -p whodunit-bench --bin pipeline -- --smoke --out target/BENCH_pipeline_smoke.json

# Collector smoke: ingest a staggered 12-replica delta stream at two
# retention windows; fail on any streaming/batch divergence, leaked
# pending state, or a resident peak that reaches the origin total.
cargo run --release -q -p whodunit-bench --bin collectord -- --smoke --out target/BENCH_collector_smoke.json

# Hot-path smoke: microbench self-checks (flow table, context intern,
# CCT fold, serializer byte-stability) plus a reduced streaming-ingest
# run; fail on any self-check miss or streaming/batch divergence.
cargo run --release -q -p whodunit-bench --bin hotpath -- --smoke --out target/BENCH_hotpath_smoke.json

# Chaos smoke: the explorer's own pipeline check (find -> shrink ->
# record -> replay on a planted defect), then a bounded fuzz sweep —
# 25 sampled (schedule, fault-plan) scenarios over the TPC-W stack,
# failing on any invariant-oracle violation.
cargo run --release -q -p whodunit-bench --bin chaos -- --selftest --out target/chaos-smoke
cargo run --release -q -p whodunit-bench --bin chaos -- --seeds 25 --out target/chaos-smoke
