#!/usr/bin/env bash
# Repo CI gate: build, test, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test --workspace -q
cargo clippy --workspace -- -D warnings
