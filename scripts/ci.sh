#!/usr/bin/env bash
# Repo CI gate: build, test, lint, pipeline + chaos smoke. Run from the
# repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release

# The full suite twice: default parallel test threads, then serialized.
# The analysis pipeline spawns its own worker pool inside tests; running
# both ways catches output that only stays deterministic under one
# threading regime.
cargo test --workspace -q
cargo test --workspace -q -- --test-threads=1

# The parallel-pipeline gates, explicitly (they also run as part of the
# workspace suite above; naming them keeps the gate obvious and fails
# fast if a refactor drops a suite from the workspace):
# - differential: serial vs parallel analysis byte-identity over
#   seeds x schedules x fault plans, cross-checked against the legacy
#   Stitched resolver;
# - golden: canonical rendered reports for two fixed TPC-W runs
#   (regenerate intentionally with UPDATE_GOLDEN=1).
cargo test -q -p whodunit-core --test parallel_diff
cargo test -q --test golden_report

# The thread-stress gates (DESIGN.md §14): every matrix scenario across
# worker counts {1,2,3,4,8} under seeded steal-order perturbation must
# stay byte-identical on both the pipeline and collector paths, and an
# injected worker panic must surface as a clean phase-labelled error
# (pipeline) or a counted, byte-correct fallback (collector folds) —
# never a deadlock, never a partial report.
cargo test -q -p whodunit-core --test thread_stress
cargo test -q -p whodunit-collector --test thread_stress

# The streaming-collector gates:
# - differential: streaming collector vs batch pipeline byte-identity
#   over the same 36-scenario matrix (end-state lock), plus the
#   self-healing ingest damage matrix (corrupt / truncated / duplicate
#   / reordered / lost frames, stall watchdog);
# - golden: live-query snapshot rendering, mid-run + final epoch, and
#   the rendered sentinel incident report mid-violation + post-capture
#   (regenerate intentionally with UPDATE_GOLDEN=1).
cargo test -q -p whodunit-collector --test streaming_diff
cargo test -q --test golden_collector
cargo test -q --test golden_sentinel

# The binary wire-format gates (DESIGN.md §16):
# - properties: decode(encode(delta)) == delta for arbitrary deltas,
#   batches, and summary frames, plus the golden frame hex dump
#   (regenerate intentionally with UPDATE_GOLDEN=1);
# - fuzz: randomized truncation / bit flips / reordering / garbage
#   injection over encoded streams — damaged frames are rejected by the
#   envelope and healed by the §12 quarantine machinery, never a panic,
#   never a silent divergence.
cargo test -q -p whodunit-core --test wire_props
cargo test -q -p whodunit-collector --test wire_fuzz

# The federation gates:
# - differential: leaf/regional/global federation vs flat batch
#   byte-identity over the 36-scenario matrix, plus fault scenarios
#   (lossy uplinks, partitions, leaf/regional crash recovery,
#   unrecoverable-leaf degraded finalize);
# - properties: the summary-delta merge algebra (grouping invariance,
#   associativity, mass conservation, sketch wire round-trip);
# - golden: rendered federation topology mid-outage + final
#   (regenerate intentionally with UPDATE_GOLDEN=1).
cargo test -q -p whodunit-collector --test federation_diff
cargo test -q -p whodunit-collector --test federation_props
cargo test -q --test golden_federation

# The black-box inference gates (DESIGN.md §15):
# - properties: inference is a pure function of the event set
#   (deterministic, permutation-invariant), the ambiguity-1 subset is
#   always correct and only shrinks as the modelled jitter window
#   widens, full visibility reproduces ground truth exactly;
# - scenarios: the TPC-W inference slice + topology zoo under the
#   blackbox/hybrid/full visibility ladder, with the comm log proven
#   observation-only;
# - golden: the rendered inference sweep table (regenerate
#   intentionally with UPDATE_GOLDEN=1).
cargo test -q -p whodunit-infer --test properties
cargo test -q -p whodunit-infer --test scenarios
cargo test -q --test golden_infer

cargo clippy --workspace -- -D warnings

# Pipeline smoke: sweep worker counts {1, 2, 4} over a small fleet and
# fail on any serial/parallel divergence.
cargo run --release -q -p whodunit-bench --bin pipeline -- --smoke --out target/BENCH_pipeline_smoke.json

# Parallel-execution smoke: the OS-thread sweep with steal-schedule
# stress; fails on any byte divergence, and on a sub-1.5x best wall
# speedup when the host has >= 4 cores.
cargo run --release -q -p whodunit-bench --bin parallel -- --smoke --out target/BENCH_parallel_smoke.json

# Collector smoke: ingest a staggered 12-replica delta stream at two
# retention windows; fail on any streaming/batch divergence, leaked
# pending state, or a resident peak that reaches the origin total. The
# wire scenario replays the stream as binary frames through
# enqueue_wire and holds the same byte-identity bar.
cargo run --release -q -p whodunit-bench --bin collectord -- --smoke --out target/BENCH_collector_smoke.json

# Hot-path smoke: microbench self-checks (flow table, context intern,
# CCT fold, serializer byte-stability) plus a reduced streaming-ingest
# run; fail on any self-check miss or streaming/batch divergence. The
# binary wire format rides two hard gates here: ingest-through-wire
# must clear 2x the recorded 6.2M ev/s struct-apply baseline, and
# frames must pack to <= 0.2x the JSON edge encoding per event.
cargo run --release -q -p whodunit-bench --bin hotpath -- --smoke --out target/BENCH_hotpath_smoke.json

# Federation smoke: a 24-replica fleet across 4 leaves in 2 regions
# through all four federation scenarios (clean, crash+recovery, lossy,
# unrecoverable-degraded); fail on any divergence, ledger mass loss,
# unbounded per-level residency, or a dishonest degraded finalize.
cargo run --release -q -p whodunit-bench --bin federation -- --smoke --out target/BENCH_federation_smoke.json

# Inference smoke: a reduced scenario corpus (TPC-W slice + zoo) under
# the three visibility configs; fail if any clean scenario's pairs or
# origins F1 drops below 0.95, on any accounting-oracle violation, on
# a non-exact full-visibility stitch, or if enabling the comm log
# perturbs the batch fingerprint.
cargo run --release -q -p whodunit-bench --bin infer -- --smoke --out target/BENCH_infer_smoke.json

# Chaos smoke: the explorer's own pipeline check (find -> shrink ->
# record -> replay on a planted defect), then a bounded fuzz sweep —
# 25 sampled (schedule, fault-plan) scenarios over the TPC-W stack,
# failing on any invariant-oracle violation.
cargo run --release -q -p whodunit-bench --bin chaos -- --selftest --out target/chaos-smoke
cargo run --release -q -p whodunit-bench --bin chaos -- --seeds 25 --out target/chaos-smoke

# Sentinel smoke: calibrate an SLO budget from a clean run, sweep a
# reduced clean matrix (any trip is a false repro and fails), capture
# one planted faultstorm with shrink + bit-identical replay, and hold
# the always-on ingest-overhead gate.
cargo run --release -q -p whodunit-bench --bin sentinel -- --smoke --out target/BENCH_sentinel_smoke.json

# The sentinel's repro bundle must be self-contained: chaos --replay
# reconstructs the tripped budget from the bundle's slo_* knobs alone
# and fails unless the same dimension re-trips at the recorded epoch.
cargo run --release -q -p whodunit-bench --bin chaos -- --replay target/BENCH_sentinel_smoke.repro.json

# Every published or smoke bench result must carry its gate fields: a
# bench that silently stops reporting a gate can never fail it, so a
# missing field is itself a CI failure. (`*.repro.json` is a repro
# bundle riding along with the sentinel bench, not a bench result.)
python3 - <<'EOF'
import glob, json, sys

GATE_FIELDS = {
    "collectord": ["sweep", "lag", "wire.identical_output"],
    "federation": [
        "byte_identical_clean",
        "mass_loss_clean",
        "recovery.latency_epochs",
        "peak_resident.per_level",
        "wire_links.leaf_wire_bytes",
        "wire_links.regional_wire_bytes",
        "wire_links.compression_vs_json",
    ],
    "hotpath": [
        "ok",
        "wire.bytes_per_event",
        "wire.encode_events_per_s",
        "wire.decode_events_per_s",
        "wire.compression_vs_json",
        "wire.ingest_events_per_s",
        "wire.speedup_vs_baseline",
    ],
    "infer": [
        "scenarios",
        "clean_min_f1_ppm",
        "batch.identical_output",
        "ok",
    ],
    "parallel": ["wall_speedup", "host_cores", "byte_identical"],
    "pipeline": ["sweep", "serial_fingerprint"],
    "sentinel": [
        "false_repros",
        "detection.latency_epochs",
        "capture.shrink_ratio",
        "replay.bit_identical",
        "replay.retripped",
        "overhead.within_gate",
    ],
}

bad = []
files = sorted(set(glob.glob("BENCH_*.json") + glob.glob("target/BENCH_*.json")))
for path in files:
    if path.endswith(".repro.json"):
        continue
    doc = json.load(open(path))
    bench = doc.get("bench")
    if bench not in GATE_FIELDS:
        bad.append(f"{path}: unknown bench {bench!r} (add its gate fields to ci.sh)")
        continue
    for field in GATE_FIELDS[bench]:
        node = doc
        for part in field.split("."):
            node = node.get(part) if isinstance(node, dict) else None
        if node is None:
            bad.append(f"{path}: missing gate field {field!r}")
if bad:
    print("\n".join(bad), file=sys.stderr)
    sys.exit(1)
print(f"bench gate fields present in {len(files)} result file(s)")
EOF
