#!/usr/bin/env bash
# Repo CI gate: build, test, lint, chaos smoke. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test --workspace -q
cargo clippy --workspace -- -D warnings

# Chaos smoke: the explorer's own pipeline check (find -> shrink ->
# record -> replay on a planted defect), then a bounded fuzz sweep —
# 25 sampled (schedule, fault-plan) scenarios over the TPC-W stack,
# failing on any invariant-oracle violation.
cargo run --release -q -p whodunit-bench --bin chaos -- --selftest --out target/chaos-smoke
cargo run --release -q -p whodunit-bench --bin chaos -- --seeds 25 --out target/chaos-smoke
