//! Whodunit: transactional profiling for multi-tier applications.
//!
//! A from-scratch Rust reproduction of *Whodunit: Transactional
//! Profiling for Multi-Tier Applications* (Chanda, Cox, Zwaenepoel —
//! EuroSys 2007). This facade crate re-exports the workspace crates:
//!
//! - [`core`] — the paper's contribution: transaction contexts, CCTs,
//!   shared-memory flow detection, event/SEDA tracking, synopsis IPC,
//!   crosstalk, and the Whodunit runtime.
//! - [`vm`] — the instruction-emulation substrate that stands in for
//!   the paper's QEMU-derived critical-section emulator.
//! - [`sim`] — the deterministic discrete-event multi-tier substrate
//!   (machines, threads, locks, channels, event loops, SEDA stages).
//! - [`workload`] — web-trace and TPC-W browsing-mix generators.
//! - [`apps`] — behavioural models of the paper's subject systems
//!   (Apache-like httpd, MySQL-like dbserver, Squid-like proxy,
//!   Haboob-like SEDA server, Tomcat-like appserver, TPC-W assembly).
//! - [`baselines`] — csprof-only and gprof-like comparator runtimes.
//! - [`report`] — rendering of transactional profiles and tables.
//! - [`collector`] — the online streaming collector tier: incremental
//!   stitching, bounded-memory aggregation, live queries. Ingest
//!   accepts either `StageDelta` structs or the binary wire frames of
//!   [`core::wire`] (DESIGN.md §16).
//! - [`infer`] — black-box inference stitching: recovering request
//!   origins from bare send/recv timing when tiers can't cooperate,
//!   scored against simulator ground truth.
//!
//! See `examples/quickstart.rs` for a first end-to-end run.

pub use whodunit_apps as apps;
pub use whodunit_baselines as baselines;
pub use whodunit_collector as collector;
pub use whodunit_core as core;
pub use whodunit_infer as infer;
pub use whodunit_report as report;
pub use whodunit_sim as sim;
pub use whodunit_vm as vm;
pub use whodunit_workload as workload;
