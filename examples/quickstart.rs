//! Quickstart: profile a two-stage RPC with Whodunit.
//!
//! Builds a tiny client → server simulation where two different caller
//! paths (`foo` and `bar`) issue RPCs to the same service routine, and
//! shows that Whodunit keeps the server's profile separate per caller
//! context (the paper's Figure 6/7 scenario).
//!
//! Run with: `cargo run --example quickstart`

use std::cell::RefCell;
use std::rc::Rc;
use whodunit::core::cost::ms_to_cycles;
use whodunit::core::ids::ProcId;
use whodunit::core::profiler::{Whodunit, WhodunitConfig};
use whodunit::core::rt::Runtime;
use whodunit::core::stitch::Stitched;
use whodunit::report::render;
use whodunit::sim::{Msg, Op, Sim, SimConfig, ThreadBody, ThreadCx, Wake};
use whodunit_core::frame::FrameId;
use whodunit_core::ids::ChanId;

/// The caller: alternates RPCs through `foo` and `bar`.
struct Caller {
    svc: ChanId,
    reply: ChanId,
    f_main: FrameId,
    f_foo: FrameId,
    f_bar: FrameId,
    f_rpc: FrameId,
    rounds: u32,
    state: u8,
}

impl ThreadBody for Caller {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match self.state {
            0 => {
                cx.push_frame(self.f_main);
                self.state = 1;
                // Compute a little under main before the first call.
                Op::Compute(ms_to_cycles(0.1))
            }
            1 => {
                if self.rounds == 0 {
                    return Op::Exit;
                }
                // Enter foo or bar, then the rpc_call frame, and send.
                let via = if self.rounds.is_multiple_of(2) {
                    self.f_foo
                } else {
                    self.f_bar
                };
                cx.push_frame(via);
                cx.push_frame(self.f_rpc);
                self.state = 2;
                Op::Send(self.svc, Msg::new(self.reply, 256))
            }
            2 => {
                self.state = 3;
                Op::Recv(self.reply)
            }
            3 => {
                let Wake::Received(_) = wake else {
                    unreachable!()
                };
                cx.pop_frame(); // rpc_call
                cx.pop_frame(); // foo/bar
                self.rounds -= 1;
                self.state = 1;
                Op::Compute(ms_to_cycles(0.2))
            }
            _ => Op::Exit,
        }
    }
}

/// The callee: one service routine, same code for every caller.
struct Callee {
    in_chan: ChanId,
    f_main: FrameId,
    f_svc: FrameId,
    state: u8,
    reply: Option<ChanId>,
}

impl ThreadBody for Callee {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match self.state {
            0 => {
                cx.push_frame(self.f_main);
                self.state = 1;
                Op::Recv(self.in_chan)
            }
            1 => {
                let Wake::Received(msg) = wake else {
                    unreachable!()
                };
                self.reply = Some(msg.take::<ChanId>());
                cx.push_frame(self.f_svc);
                self.state = 2;
                Op::Compute(ms_to_cycles(2.0))
            }
            2 => {
                cx.pop_frame();
                self.state = 3;
                Op::Send(self.reply.take().unwrap(), Msg::new((), 512))
            }
            3 => {
                self.state = 1;
                Op::Recv(self.in_chan)
            }
            _ => Op::Exit,
        }
    }
}

fn main() {
    let mut sim = Sim::new(SimConfig::default());
    let m = sim.add_machine(2);

    // One Whodunit instance per process, sharing the frame table.
    let caller_rt = Rc::new(RefCell::new(Whodunit::new(
        WhodunitConfig::new(ProcId(0), "caller"),
        sim.frames().clone(),
    )));
    let callee_rt = Rc::new(RefCell::new(Whodunit::new(
        WhodunitConfig::new(ProcId(1), "callee"),
        sim.frames().clone(),
    )));
    let p_caller = sim.add_process("caller", caller_rt.clone());
    let p_callee = sim.add_process("callee", callee_rt.clone());

    let svc = sim.add_channel(10_000, 2);
    let reply = sim.add_channel(10_000, 2);

    let caller = Caller {
        svc,
        reply,
        f_main: sim.frame("main_caller"),
        f_foo: sim.frame("foo"),
        f_bar: sim.frame("bar"),
        f_rpc: sim.frame("rpc_call"),
        rounds: 10,
        state: 0,
    };
    let callee = Callee {
        in_chan: svc,
        f_main: sim.frame("main_callee"),
        f_svc: sim.frame("callee_rpc_svc"),
        state: 0,
        reply: None,
    };
    sim.spawn(p_caller, m, "caller", Box::new(caller));
    sim.spawn(p_callee, m, "callee", Box::new(callee));
    sim.run_to_idle();

    // Post-mortem: dump both stages and stitch.
    let dumps = vec![
        caller_rt.borrow().dump().unwrap(),
        callee_rt.borrow().dump().unwrap(),
    ];
    for d in &dumps {
        println!("{}", render::render_stage(d));
    }
    let stitched = Stitched::new(dumps);
    println!("request edges (caller send point -> callee context):");
    for e in stitched.request_edges() {
        println!(
            "  {}:{} -> {}:{}",
            stitched.stages[e.from_stage].stage_name,
            stitched.stages[e.from_stage].ctx_string(e.from_ctx),
            stitched.stages[e.to_stage].stage_name,
            stitched.stages[e.to_stage].ctx_string(e.to_ctx),
        );
    }
    // The callee accumulated two separate contexts: one per caller path.
    let callee_dump = &stitched.stages[1];
    assert!(
        callee_dump.ccts.len() >= 2,
        "callee profile split by caller context"
    );
    println!("\nThe callee's profile is kept separately per caller path (foo vs bar).");
}
