//! Shared-memory transaction flow in an Apache-like server (Figure 8).
//!
//! Runs the httpd model: the listener pushes connections into a shared
//! fd queue whose push/pop critical sections execute on the instruction
//! emulator. Whodunit infers the listener → worker flow from the
//! emulated MOVs (§3) and excludes the memory-allocator pattern.
//!
//! Run with: `cargo run --release --example apache_shm`

use whodunit::apps::httpd::{run_httpd, HttpdConfig};
use whodunit::apps::rtconf::RtKind;
use whodunit::core::cost::CPU_HZ;
use whodunit::core::rt::Runtime;
use whodunit::core::shm::FlowEvent;
use whodunit::report::render;

fn main() {
    let r = run_httpd(HttpdConfig {
        clients: 16,
        workers: 6,
        duration: 8 * CPU_HZ,
        rt: RtKind::Whodunit,
        ..HttpdConfig::default()
    });
    let w = r.runtime.whodunit.as_ref().unwrap().borrow();
    println!("{}", render::render_stage(&w.dump().unwrap()));

    let consumed = w
        .flow_log()
        .iter()
        .filter(|e| matches!(e, FlowEvent::Consumed { lock, .. } if *lock == r.fdq_lock))
        .count();
    println!(
        "fd-queue flow: {} consume events — transaction contexts",
        consumed
    );
    println!("handed from the listener to workers through shared memory.");
    println!();
    println!(
        "fd queue flow enabled: {} (transaction flow detected and kept)",
        w.detector().flow_enabled(r.fdq_lock)
    );
    println!(
        "allocator flow enabled: {} (the Figure 3 pattern was excluded; its",
        w.detector().flow_enabled(r.alloc_lock)
    );
    println!("critical sections run natively from then on — the §7.2 bail-out)");
    println!();
    println!(
        "served {} requests on {} connections at {:.1} Mb/s",
        r.reqs, r.conns, r.throughput_mbps
    );
}
