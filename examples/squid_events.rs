//! Event-driven transactional profiling of a Squid-like proxy (Fig 9).
//!
//! Cache hits and misses execute different event-handler sequences, so
//! `commHandleWrite` shows up under two transaction contexts with
//! separate costs — a distinction no ordinary profiler makes.
//!
//! Run with: `cargo run --release --example squid_events`

use whodunit::apps::proxy::{run_proxy, ProxyConfig};
use whodunit::apps::rtconf::RtKind;
use whodunit::core::cost::CPU_HZ;
use whodunit::core::rt::Runtime;
use whodunit::report::render;

fn main() {
    let r = run_proxy(ProxyConfig {
        clients: 16,
        duration: 8 * CPU_HZ,
        rt: RtKind::Whodunit,
        ..ProxyConfig::default()
    });
    let w = r.runtime.whodunit.as_ref().unwrap().borrow();
    let dump = w.dump().unwrap();
    println!("Squid transactional profile (event-handler contexts):\n");
    for s in render::context_shares(&dump) {
        println!("{:6.2}%  {}", s.pct, s.ctx);
    }
    println!();
    println!(
        "hit rate {:.1}%, {:.1} Mb/s, {} requests",
        r.hit_rate * 100.0,
        r.throughput_mbps,
        r.reqs
    );
    println!();
    println!("commHandleWrite appears once under the cache-hit context and once");
    println!("under the cache-miss context — Whodunit separates the two costs.");
}
