//! The §3 shared-memory flow-detection algorithm on raw guest code.
//!
//! Runs each shared-memory access pattern from the paper through the
//! instruction emulator and the flow detector, printing the verdicts:
//!
//! - the Figure 1 fd queue      → transaction flow detected;
//! - a `sys/queue.h`-style list → flow detected, NULL checks excluded;
//! - the Figure 2 counter       → no flow (invalid context);
//! - the Figure 3 allocator     → flow disabled (producer∩consumer).
//!
//! Run with: `cargo run --example flow_detection`

use whodunit::core::context::CtxId;
use whodunit::core::ids::{LockId, ThreadId};
use whodunit::core::shm::{FlowDetector, FlowEvent};
use whodunit::vm::programs::{Allocator, FdQueue, SList, SharedCounter};
use whodunit::vm::{Cpu, CsEmulator, ExecMode, GuestMem, Program, TranslationCache};

struct Rig {
    det: FlowDetector,
    tc: TranslationCache,
    mem: GuestMem,
    log: Vec<FlowEvent>,
}

impl Rig {
    fn new(words: usize) -> Self {
        Rig {
            det: FlowDetector::default(),
            tc: TranslationCache::new(),
            mem: GuestMem::new(words),
            log: Vec::new(),
        }
    }

    fn run(&mut self, prog: &Program, t: ThreadId, ctx: CtxId, args: &[(usize, i64)]) {
        let mut cpu = Cpu::new(t);
        for &(r, v) in args {
            cpu.regs[r] = v;
        }
        let emu = CsEmulator::default();
        let det = &mut self.det;
        let log = &mut self.log;
        emu.run(
            prog,
            &mut cpu,
            &mut self.mem,
            ExecMode::Emulated {
                tcache: &mut self.tc,
            },
            &mut |e| {
                let mut out = Vec::new();
                det.on_event(t, ctx, e, &mut out);
                log.extend(out);
            },
        );
    }

    fn verdict(&self, lock: LockId) -> String {
        let consumed = self
            .log
            .iter()
            .filter(|e| matches!(e, FlowEvent::Consumed { lock: l, .. } if *l == lock))
            .count();
        let disabled = !self.det.flow_enabled(lock);
        match (consumed, disabled) {
            (_, true) => "flow DISABLED (producer/consumer lists intersected)".into(),
            (0, false) => "no transaction flow".into(),
            (n, false) => format!("transaction flow detected ({n} consume events)"),
        }
    }
}

fn main() {
    let prod = ThreadId(1);
    let cons = ThreadId(2);
    let (ctx_a, ctx_b) = (CtxId(10), CtxId(11));

    // Figure 1: the Apache fd queue.
    let q = FdQueue::new(1);
    let mut rig = Rig::new(64);
    FdQueue::init(&mut rig.mem, 8);
    rig.run(&q.push, prod, ctx_a, &[(1, 77), (2, 88)]);
    rig.run(&q.pop, cons, ctx_b, &[]);
    println!("fd queue (Figure 1):        {}", rig.verdict(LockId(1)));

    // sys/queue.h-style singly linked list with NULL sanity checks.
    let l = SList::new(2);
    let mut rig = Rig::new(64);
    rig.run(&l.insert_head, prod, ctx_a, &[(1, 16), (2, 500)]);
    rig.run(&l.remove_head, cons, ctx_b, &[]);
    rig.run(&l.remove_head, cons, ctx_b, &[]); // empty: head == NULL
    println!("linked list (sys/queue.h):  {}", rig.verdict(LockId(2)));

    // Figure 2: the shared counter.
    let c = SharedCounter::new(3, 0);
    let mut rig = Rig::new(8);
    for (t, ctx) in [(prod, ctx_a), (cons, ctx_b), (prod, ctx_a)] {
        rig.run(&c.inc, t, ctx, &[]);
        rig.run(&c.read, t, ctx, &[]);
    }
    println!("shared counter (Figure 2):  {}", rig.verdict(LockId(3)));

    // Figure 3: the memory allocator.
    let a = Allocator::new(4);
    let mut rig = Rig::new(64);
    rig.run(&a.free, prod, ctx_a, &[(1, 40)]);
    rig.run(&a.alloc, prod, ctx_a, &[]);
    println!("memory allocator (Fig 3):   {}", rig.verdict(LockId(4)));
}
