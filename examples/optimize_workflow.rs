//! The §8.4 performance-debugging workflow, end to end:
//!
//! 1. profile the bookstore with Whodunit,
//! 2. read the transactional profile (BestSellers/SearchResult dominate
//!    MySQL; AdminConfirm suffers the worst crosstalk),
//! 3. apply the paper's optimizations (servlet result caching),
//! 4. re-profile and *diff* the MySQL profiles.
//!
//! Run with: `cargo run --release --example optimize_workflow`

use whodunit::apps::dbserver::Engine;
use whodunit::apps::rtconf::RtKind;
use whodunit::apps::tpcw::{run_tpcw, TpcwConfig, TpcwReport};
use whodunit::core::cost::CPU_HZ;
use whodunit::core::stitch::Stitched;
use whodunit::report::diff::{render_diff, DiffRow};
use whodunit::report::tpcw::table1;
use whodunit::workload::Interaction;

fn label_of(frame: &str) -> Option<String> {
    Interaction::ALL
        .iter()
        .find(|i| i.servlet() == frame)
        .map(|i| i.name().to_owned())
}

fn run(caching: bool) -> TpcwReport {
    run_tpcw(TpcwConfig {
        clients: 150,
        engine: Engine::MyIsam,
        caching,
        rt: RtKind::Whodunit,
        duration: 150 * CPU_HZ,
        warmup: 40 * CPU_HZ,
        ..TpcwConfig::default()
    })
}

fn main() {
    println!("profiling the original configuration…");
    let before = run(false);
    println!(
        "  throughput {:.0}/min; profiling the cached configuration…",
        before.throughput_per_min
    );
    let after = run(true);
    println!("  throughput {:.0}/min\n", after.throughput_per_min);

    // MySQL is stage index 2 in the dumps. Synopsis chains differ
    // between runs, so diff by the stitched interaction labels.
    println!("MySQL profile diff (share of MySQL CPU by interaction):\n");
    let shares = |r: &TpcwReport| {
        let st = Stitched::new(r.dumps.clone());
        table1(&st, 2, &|n| label_of(n))
            .into_iter()
            .map(|row| (row.interaction, row.cpu_pct))
            .collect::<std::collections::HashMap<_, _>>()
    };
    let b = shares(&before);
    let a = shares(&after);
    let mut labels: Vec<String> = b.keys().chain(a.keys()).cloned().collect();
    labels.sort();
    labels.dedup();
    let mut rows: Vec<DiffRow> = labels
        .into_iter()
        .map(|ctx| DiffRow {
            before_pct: b.get(&ctx).copied().unwrap_or(0.0),
            after_pct: a.get(&ctx).copied().unwrap_or(0.0),
            ctx,
        })
        .collect();
    rows.sort_by(|x, y| y.delta().abs().partial_cmp(&x.delta().abs()).unwrap());
    print!("{}", render_diff(&rows[..rows.len().min(8)]));

    let speedup = after.throughput_per_min / before.throughput_per_min;
    println!("\nthroughput change at 150 clients: {speedup:.2}x");
    println!("(the heavy read-query contexts shrink; the small queries' shares grow");
    println!(" because the total pie collapsed — exactly Figure 12's mechanism)");
}
