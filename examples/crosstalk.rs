//! Transaction crosstalk (§6): which transaction made mine wait?
//!
//! Two transaction types contend on one lock: a long-running writer
//! (think AdminConfirm) and many short readers. Whodunit attributes
//! each wait to the context holding the lock.
//!
//! Run with: `cargo run --example crosstalk`

use std::cell::RefCell;
use std::rc::Rc;
use whodunit::core::cost::{cycles_to_ms, ms_to_cycles};
use whodunit::core::ids::{LockMode, ProcId};
use whodunit::core::profiler::{Whodunit, WhodunitConfig};
use whodunit::sim::{Op, Sim, SimConfig, ThreadBody, ThreadCx, Wake};
use whodunit_core::events::EventCtx;
use whodunit_core::frame::FrameId;
use whodunit_core::ids::LockId;

/// A looping transaction: dispatch (sets its context), lock, hold,
/// unlock, idle.
struct Txn {
    handler: FrameId,
    lock: LockId,
    mode: LockMode,
    hold: u64,
    idle: u64,
    rounds: u32,
    state: u8,
}

impl ThreadBody for Txn {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, _wake: Wake) -> Op {
        match self.state {
            0 => {
                if self.rounds == 0 {
                    return Op::Exit;
                }
                self.rounds -= 1;
                // Each round is one transaction instance of this type.
                let rt = cx.runtime();
                rt.borrow_mut()
                    .on_event_dispatch(cx.me(), EventCtx::default(), self.handler);
                cx.set_stack(&[self.handler]);
                self.state = 1;
                Op::Lock(self.lock, self.mode)
            }
            1 => {
                self.state = 2;
                Op::Compute(self.hold)
            }
            2 => {
                self.state = 3;
                Op::Unlock(self.lock)
            }
            3 => {
                self.state = 0;
                Op::Sleep(self.idle)
            }
            _ => Op::Exit,
        }
    }
}

fn main() {
    let mut sim = Sim::new(SimConfig::default());
    let m = sim.add_machine(4);
    let w = Rc::new(RefCell::new(Whodunit::new(
        WhodunitConfig::new(ProcId(0), "db"),
        sim.frames().clone(),
    )));
    let p = sim.add_process("db", w.clone());
    let lock = sim.add_lock();

    let admin = sim.frame("AdminConfirm");
    let reader = sim.frame("BestSellers");
    sim.spawn(
        p,
        m,
        "admin",
        Box::new(Txn {
            handler: admin,
            lock,
            mode: LockMode::Exclusive,
            hold: ms_to_cycles(40.0),
            idle: ms_to_cycles(17.5),
            rounds: 40,
            state: 0,
        }),
    );
    for i in 0..3 {
        sim.spawn(
            p,
            m,
            &format!("reader{i}"),
            Box::new(Txn {
                handler: reader,
                lock,
                mode: LockMode::Shared,
                hold: ms_to_cycles(8.0),
                idle: ms_to_cycles(5.0),
                rounds: 200,
                state: 0,
            }),
        );
    }
    sim.run_to_idle();

    let w = w.borrow();
    println!("crosstalk report (who waits for whom):\n");
    let rep = w.crosstalk().report();
    for (waiter, holder, stats) in &rep.pairs {
        println!(
            "  {:<14} waited for {:<14} {:>8.2} ms mean  x{}",
            w.ctx_string(*waiter),
            w.ctx_string(*holder),
            cycles_to_ms(stats.total_wait / stats.count.max(1)),
            stats.count
        );
    }
    println!("\nper-transaction mean wait over ALL lock acquires:");
    for (waiter, stats) in &rep.waiters {
        println!(
            "  {:<14} {:>8.2} ms over {} acquires",
            w.ctx_string(*waiter),
            cycles_to_ms(stats.mean() as u64),
            stats.count
        );
    }
}
