//! SEDA-stage transactional profiling of a Haboob-like server (Fig 10).
//!
//! Requests traverse ListenStage → … → CacheStage and then either go
//! straight to WriteStage (hit) or detour through MissStage and the
//! File I/O Stage. Stage-queue elements carry transaction contexts, so
//! WriteStage's cost is reported per path.
//!
//! Run with: `cargo run --release --example haboob_seda`

use whodunit::apps::rtconf::RtKind;
use whodunit::apps::sedasrv::{run_haboob, HaboobConfig};
use whodunit::core::cost::CPU_HZ;
use whodunit::core::rt::Runtime;
use whodunit::report::render;

fn main() {
    let r = run_haboob(HaboobConfig {
        clients: 16,
        duration: 8 * CPU_HZ,
        rt: RtKind::Whodunit,
        ..HaboobConfig::default()
    });
    let w = r.runtime.whodunit.as_ref().unwrap().borrow();
    let dump = w.dump().unwrap();
    println!("Haboob transactional profile (stage-path contexts):\n");
    for s in render::context_shares(&dump) {
        println!("{:6.2}%  {}", s.pct, s.ctx);
    }
    println!();
    println!(
        "hit rate {:.1}%, {:.1} Mb/s, {} requests",
        r.hit_rate * 100.0,
        r.throughput_mbps,
        r.reqs
    );
}
