//! The §4.1 DNS example: hit and miss transactions in an event-driven
//! DNS cache server.
//!
//! "Two different transactions are possible in this application: one
//! corresponding to a cache hit and the other corresponding to a cache
//! miss … two different transaction contexts will be established."
//!
//! Run with: `cargo run --example dns_cache`

use whodunit::apps::dnsd::{run_dnsd, DnsConfig};
use whodunit::apps::rtconf::RtKind;
use whodunit::core::cost::cycles_to_ms;
use whodunit::core::rt::Runtime;
use whodunit::report::render;

fn main() {
    let r = run_dnsd(DnsConfig {
        clients: 8,
        names: 300,
        rt: RtKind::Whodunit,
        ..DnsConfig::default()
    });
    let w = r.runtime.whodunit.as_ref().unwrap().borrow();
    println!("DNS server transactional profile:\n");
    for s in render::context_shares(&w.dump().unwrap()) {
        println!("{:6.2}%  {}", s.pct, s.ctx);
    }
    println!();
    println!(
        "{} answers ({} hits / {} misses), mean latency {:.2} ms",
        r.answers,
        r.hits,
        r.misses,
        cycles_to_ms(r.mean_rt as u64)
    );
    println!();
    println!("The miss path's upstream_reply handler runs under the continuation");
    println!("created by forward_query — a second, distinct transaction context.");
}
