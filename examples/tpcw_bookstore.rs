//! End-to-end TPC-W bookstore profiling (§8.4, Table 1).
//!
//! Runs the squid → tomcat → mysql assembly under the browsing mix,
//! dumps all three stage profiles, stitches them, and prints MySQL's
//! CPU and crosstalk per TPC-W interaction — resolved across tiers by
//! synopsis chains.
//!
//! Run with: `cargo run --release --example tpcw_bookstore`

use whodunit::apps::dbserver::Engine;
use whodunit::apps::rtconf::RtKind;
use whodunit::apps::tpcw::{run_tpcw, TpcwConfig};
use whodunit::core::cost::CPU_HZ;
use whodunit::core::stitch::Stitched;
use whodunit::report::tpcw::{crosstalk_pairs, table1};
use whodunit::workload::Interaction;

fn label_of(frame: &str) -> Option<String> {
    Interaction::ALL
        .iter()
        .find(|i| i.servlet() == frame)
        .map(|i| i.name().to_owned())
}

fn main() {
    let r = run_tpcw(TpcwConfig {
        clients: 80,
        engine: Engine::MyIsam,
        caching: false,
        rt: RtKind::Whodunit,
        duration: 200 * CPU_HZ,
        warmup: 50 * CPU_HZ,
        ..TpcwConfig::default()
    });
    let stitched = Stitched::new(r.dumps.clone());

    println!("MySQL profile by TPC-W interaction (via stitched synopsis chains):\n");
    let mut rows = table1(&stitched, 2, &|n| label_of(n));
    rows.sort_by(|a, b| b.cpu_pct.partial_cmp(&a.cpu_pct).unwrap());
    for row in &rows {
        println!(
            "  {:<22} {:6.2}% CPU   {:8.2} ms mean crosstalk wait",
            row.interaction, row.cpu_pct, row.crosstalk_ms
        );
    }

    println!("\nWho waits for whom (top crosstalk pairs):");
    for (waiter, holder, ms, n) in crosstalk_pairs(&stitched, 2, &|n| label_of(n))
        .iter()
        .take(6)
    {
        println!("  {waiter:<22} waits for {holder:<22} {ms:8.2} ms mean x{n}");
    }
    println!(
        "\nthroughput {:.0} interactions/min over the measurement window",
        r.throughput_per_min
    );

    // Write the stage dumps for the standalone viewer (§7.1's on-disk
    // profiles): `whodunit-view --shares target/tpcw_profile.json`.
    let path = "target/tpcw_profile.json";
    if std::fs::write(path, whodunit::report::json::to_json(&r.dumps)).is_ok() {
        println!("stage profiles written to {path} (render with whodunit-view)");
    }
}
