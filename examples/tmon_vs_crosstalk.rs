//! Why crosstalk beats plain lock-wait measurement (§6, §10).
//!
//! Runs the same TPC-W database workload twice: once under a
//! Tmon-style profiler (per-thread lock waiting times, as in Ji,
//! Felten & Li) and once under Whodunit. Tmon's report shows only that
//! some executor threads waited — every thread in the pool looks alike
//! and nothing says *what* waited or *why*. Whodunit's crosstalk names
//! the transactions on both sides.
//!
//! Run with: `cargo run --release --example tmon_vs_crosstalk`

use whodunit::apps::dbserver::Engine;
use whodunit::apps::rtconf::RtKind;
use whodunit::apps::tpcw::{run_tpcw, TpcwConfig};
use whodunit::core::cost::{cycles_to_ms, CPU_HZ};
use whodunit::core::stitch::Stitched;
use whodunit::report::tpcw::crosstalk_pairs;
use whodunit::workload::Interaction;

fn cfg(rt: RtKind) -> TpcwConfig {
    TpcwConfig {
        clients: 100,
        engine: Engine::MyIsam,
        caching: false,
        rt,
        duration: 150 * CPU_HZ,
        warmup: 30 * CPU_HZ,
        ..TpcwConfig::default()
    }
}

fn label_of(frame: &str) -> Option<String> {
    Interaction::ALL
        .iter()
        .find(|i| i.servlet() == frame)
        .map(|i| i.name().to_owned())
}

fn main() {
    // --- Tmon view: a database-like contention scene with one writer
    // and two readers sharing a lock. Tmon's entire output is the
    // per-thread wait table below. ---
    println!("Tmon view (per-thread lock waits):");
    println!("  (thread)            waits      total wait");
    {
        use std::cell::RefCell;
        use std::rc::Rc;
        use whodunit::baselines::TmonRuntime;
        use whodunit::sim::{Op, Sim, ThreadBody, ThreadCx, Wake};
        use whodunit_core::ids::LockMode;

        // A focused two-transaction demo with known thread roles.
        struct Txn {
            lock: whodunit_core::ids::LockId,
            mode: LockMode,
            hold: u64,
            idle: u64,
            rounds: u32,
            state: u8,
        }
        impl ThreadBody for Txn {
            fn resume(&mut self, _cx: &mut ThreadCx<'_>, _w: Wake) -> Op {
                match self.state {
                    0 => {
                        if self.rounds == 0 {
                            return Op::Exit;
                        }
                        self.rounds -= 1;
                        self.state = 1;
                        Op::Lock(self.lock, self.mode)
                    }
                    1 => {
                        self.state = 2;
                        Op::Compute(self.hold)
                    }
                    2 => {
                        self.state = 3;
                        Op::Unlock(self.lock)
                    }
                    _ => {
                        self.state = 0;
                        Op::Sleep(self.idle)
                    }
                }
            }
        }
        let mut sim = Sim::default();
        let m = sim.add_machine(4);
        let tmon = Rc::new(RefCell::new(TmonRuntime::new()));
        let p = sim.add_process("db", tmon.clone());
        let lock = sim.add_lock();
        for (i, (mode, hold, idle)) in [
            (LockMode::Exclusive, 96_000_000u64, 42_000_000u64),
            (LockMode::Shared, 19_200_000, 12_000_000),
            (LockMode::Shared, 19_200_000, 12_000_000),
        ]
        .iter()
        .enumerate()
        {
            sim.spawn(
                p,
                m,
                &format!("exec{i}"),
                Box::new(Txn {
                    lock,
                    mode: *mode,
                    hold: *hold,
                    idle: *idle,
                    rounds: 60,
                    state: 0,
                }),
            );
        }
        sim.run_to_idle();
        for (t, count, total) in tmon.borrow().report() {
            println!(
                "  {:<18} {:>6}   {:>9.1} ms",
                format!("{t}"),
                count,
                cycles_to_ms(total)
            );
        }
    }
    println!("  → threads waited, but on behalf of WHAT? Tmon cannot say.\n");

    // --- Whodunit view ---
    let r = run_tpcw(cfg(RtKind::Whodunit));
    let stitched = Stitched::new(r.dumps.clone());
    println!("Whodunit crosstalk view (TPC-W browsing mix, 100 clients):");
    for (waiter, holder, ms, n) in crosstalk_pairs(&stitched, 2, &|n| label_of(n))
        .iter()
        .take(5)
    {
        println!("  {waiter:<22} waits for {holder:<22} {ms:8.2} ms mean x{n}");
    }
    println!("  → the interference is attributed to transaction types across tiers.");
}
