//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace
//! carries a minimal benchmark harness with the same calling surface
//! the microbenches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! It reports a simple mean ns/iter on stdout instead of criterion's
//! statistical analysis — enough to compare hot paths across commits
//! without the dependency.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measures one closure: warm-up, then timed batches.
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            budget,
            iters: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// Runs `f` repeatedly until the time budget is spent and records
    /// the mean cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.budget || iters >= 1_000_000 {
                self.iters = iters;
                self.elapsed = elapsed;
                return;
            }
        }
    }

    fn report(&self, name: &str) {
        let per_iter = if self.iters == 0 {
            0
        } else {
            self.elapsed.as_nanos() / self.iters as u128
        };
        println!("bench {name:<40} {per_iter:>12} ns/iter ({} iters)", self.iters);
    }
}

/// The benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Runs a named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_owned(),
        }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; this harness is time-budgeted, not
    /// sample-counted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        self.c.bench_function(&full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        let mut c = Criterion {
            budget: Duration::from_millis(1),
        };
        let mut count = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
                black_box(count)
            })
        });
        assert!(count > 0);
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
