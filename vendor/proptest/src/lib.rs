//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace
//! carries a minimal property-testing harness with the same surface the
//! test suites use: the [`proptest!`] macro (with optional
//! `#![proptest_config(..)]` header), [`strategy::Strategy`] with
//! `prop_map`, [`strategy::Just`], [`strategy::any`], range and tuple
//! strategies, [`collection::vec`], [`prop_oneof!`], and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! - no shrinking — a failing case reports its seed index but is not
//!   minimized;
//! - case generation is derived from a fixed per-case seed, so runs are
//!   fully deterministic (no `PROPTEST_` env knobs);
//! - `prop_assert*` are plain `assert*` (panic instead of rejection).

/// Per-run configuration.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Subset of proptest's `Config`: only the case count matters here.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// The generator driving strategies; one fresh stream per case.
    pub type TestRng = SmallRng;

    /// Builds the deterministic generator for case `case`.
    pub fn rng_for_case(case: u32) -> TestRng {
        TestRng::seed_from_u64(0xC0FF_EE00_D15E_A5E5 ^ ((case as u64) << 1 | 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of an associated type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Object-safe mirror of [`Strategy`].
    pub trait DynStrategy<V> {
        /// Generates one value.
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn DynStrategy<V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.as_ref().generate_dyn(rng)
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between type-erased alternatives.
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union over `arms` (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate_dyn(rng)
        }
    }

    /// Types with a canonical full-domain strategy ([`any`]).
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<u64>() as u8
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<u64>() as u32
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<u64>()
        }
    }

    /// Marker strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`'s full domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s of `elem` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Generates vectors whose length is uniform in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions that run a property over generated cases.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($binder:ident in $strat:expr) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                let strat = $strat;
                for case in 0..cfg.cases {
                    let mut rng = $crate::test_runner::rng_for_case(case);
                    let $binder = $crate::strategy::Strategy::generate(&strat, &mut rng);
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

/// Property assertion (plain `assert!` in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion (plain `assert_eq!` in this stand-in).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property inequality assertion (plain `assert_ne!` in this stand-in).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::rng_for_case;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = rng_for_case(0);
        let s = crate::collection::vec((0u32..4, 0u64..3), 1..60);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 60);
            for (a, b) in v {
                assert!(a < 4 && b < 3);
            }
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = prop_oneof![Just(0u8), Just(1u8), (2u8..4).prop_map(|v| v)];
        let mut rng = rng_for_case(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself compiles and runs with a config header.
        #[test]
        fn macro_with_config(xs in crate::collection::vec(0u64..10, 0..5)) {
            prop_assert!(xs.len() < 5);
            prop_assert_eq!(xs.iter().filter(|&&x| x >= 10).count(), 0);
        }
    }

    proptest! {
        /// And without one.
        #[test]
        fn macro_without_config(x in 0i64..100) {
            prop_assert!((0..100).contains(&x));
        }
    }
}
