//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored crates.io
//! registry, so the workspace carries a minimal, deterministic
//! implementation of exactly the `rand 0.8` API surface it uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng::gen`] / [`Rng::gen_range`] sampling methods for the primitive
//! types the workload generators draw.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — the same
//! algorithm family the real `SmallRng` uses on 64-bit targets. Streams
//! are stable across runs and platforms, which is all the simulator's
//! determinism guarantee requires (it never depended on matching the
//! upstream crate's exact streams, only on seeded reproducibility).

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampled uniformly over their full domain by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types uniformly sampleable from a half-open `lo..hi` range.
pub trait SampleUniform: Sized {
    /// Draws one value in `range` (panics on an empty range).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i64).wrapping_sub(range.start as i64) as u64;
                range.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let u = f64::sample(rng);
        let v = range.start + u * (range.end - range.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let u = f32::sample(rng);
        let v = range.start + u * (range.end - range.start);
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

/// User-facing sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value over `T`'s full domain
    /// (`f64` is uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from the half-open range `lo..hi`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// SplitMix64 step, used for seed expansion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let s = [
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let r = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            r
        }
    }

    /// Alias: the workspace only needs seeded determinism, so the
    /// "standard" generator is the same engine.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f64 = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(g > 0.0 && g < 1.0);
        }
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }
}
